"""Figure 10 — CDF of the time to process a single BGP update.

Measures the end-to-end fast path per update: route-server ingestion,
ephemeral VNH assignment, per-prefix recompilation, shadow-rule
installation, and re-advertisement. The paper reports sub-100 ms most of
the time and sub-second for the vast majority; the same must hold here,
and times must grow with participant count.

A second benchmark times one single update precisely through
pytest-benchmark's statistics machinery.
"""

from conftest import publish, publish_json, scaled

from repro.experiments.harness import (
    _loaded_controller,
    _perturb_prefix,
    run_fig10,
    run_fig10_delta,
)
from repro.experiments.metrics import render_table
from repro.telemetry.registry import Histogram

PARTICIPANTS = (100, 200, 300)
UPDATES = 150


def _run():
    return run_fig10(updates=UPDATES, participant_counts=PARTICIPANTS,
                     prefixes=scaled(2_000))


def test_fig10_update_cdf(benchmark):
    cdfs = benchmark.pedantic(_run, rounds=1, iterations=1)

    rows = []
    for count in PARTICIPANTS:
        cdf = cdfs[count]
        rows.append([
            count,
            f"{cdf.median * 1000:.1f}",
            f"{cdf.quantile(0.9) * 1000:.1f}",
            f"{cdf.quantile(0.99) * 1000:.1f}",
            f"{cdf.fraction_below(0.1):.2f}",
            f"{cdf.fraction_below(1.0):.2f}",
        ])
    publish("fig10_update_cdf", render_table(
        ["participants", "median ms", "p90 ms", "p99 ms",
         "P(<=100ms)", "P(<=1s)"], rows))
    publish_json("fig10_update_cdf", [
        {
            "participants": count,
            "updates": UPDATES,
            "median_ms": cdfs[count].median * 1000,
            "p90_ms": cdfs[count].quantile(0.9) * 1000,
            "p99_ms": cdfs[count].quantile(0.99) * 1000,
            "fraction_below_100ms": cdfs[count].fraction_below(0.1),
            "fraction_below_1s": cdfs[count].fraction_below(1.0),
        }
        for count in PARTICIPANTS
    ])

    # Per-update latency percentiles through the runtime telemetry
    # histogram — the same implementation `repro stats` reports from.
    percentile_rows = []
    for count in PARTICIPANTS:
        cdf = cdfs[count]
        histogram = Histogram.from_samples(
            "bench_fig10_update_seconds", cdf.samples)
        quantiles = histogram.percentiles()
        percentile_rows.append([
            count,
            f"{quantiles['p50'] * 1000:.1f}",
            f"{quantiles['p99'] * 1000:.1f}",
            f"{quantiles['max'] * 1000:.1f}",
        ])
        # Exact endpoints; interior quantiles carry one log bucket of
        # relative error (~5%) plus at most one rank of disagreement
        # with the Cdf's rounding, so allow a loose band.
        assert quantiles["max"] == cdf.quantile(1.0)
        assert histogram.quantile(0.0) == cdf.quantile(0.0)
        assert quantiles["p50"] <= cdf.quantile(0.55) * 1.1
        assert quantiles["p50"] >= cdf.quantile(0.45) * 0.9
    publish("fig10_update_percentiles", render_table(
        ["participants", "p50 ms", "p99 ms", "max ms"], percentile_rows))

    for count in PARTICIPANTS:
        cdf = cdfs[count]
        # Sub-second for the vast majority (paper: "sub-second
        # recompilation is achievable for the majority of the updates").
        assert cdf.fraction_below(1.0) >= 0.95
        # Under 100 ms most of the time (paper Figure 10).
        assert cdf.fraction_below(0.1) >= 0.5
    # Processing time grows with participant count.
    medians = [cdfs[count].median for count in PARTICIPANTS]
    assert medians == sorted(medians)


def test_fig10_delta_engine(benchmark):
    """Delta-engine mode: FlowMods per update and southbound batch
    behaviour under the Figure 10 update stream."""
    cdfs = benchmark.pedantic(
        lambda: run_fig10_delta(updates=UPDATES, participants=100,
                                prefixes=scaled(2_000)),
        rounds=1, iterations=1)

    mods = cdfs["mods_per_update"]
    batches = cdfs["batch_sizes"]
    apply_seconds = cdfs["apply_seconds"]
    publish("fig10_delta_flowmods", render_table(
        ["metric", "median", "p90", "max"],
        [["flowmods per update", f"{mods.median:.0f}",
          f"{mods.quantile(0.9):.0f}", f"{mods.quantile(1.0):.0f}"],
         ["batch size", f"{batches.median:.0f}",
          f"{batches.quantile(0.9):.0f}", f"{batches.quantile(1.0):.0f}"],
         ["apply ms", f"{apply_seconds.median * 1000:.2f}",
          f"{apply_seconds.quantile(0.9) * 1000:.2f}",
          f"{apply_seconds.quantile(1.0) * 1000:.2f}"]]))

    # Updates push real work through the engine, in bounded batches.
    assert mods.quantile(1.0) > 0
    assert batches.quantile(1.0) <= 128  # SouthboundConfig default
    assert apply_seconds.quantile(1.0) < 1.0


def test_single_update_fast_path(benchmark):
    """Microbenchmark: one best-path-changing update, 300 participants."""
    controller, ixp = _loaded_controller(300, 2_000, seed=0)
    import random
    rng = random.Random(42)
    universe = ixp.all_prefixes()

    def one_update():
        _perturb_prefix(controller, ixp, rng.choice(universe), rng)

    benchmark(one_update)
