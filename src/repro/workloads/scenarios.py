"""Canned traffic scenarios for the monitoring loop.

Two families, both built for :class:`repro.monitoring.driver
.MonitoredTrafficDriver`:

* **shifting** — an eyeball AS with two ports receives traffic from
  eight source slices whose per-slice rates change at ``shift_time``:
  balanced under the balancer's initial round-robin split before it,
  concentrated onto one port's slices after it. The shift is exactly
  the condition the reactive inbound balancer must detect and correct
  (a counter-driven generalisation of the paper's fig5b inbound TE).
* **skewed** — one sender pushes Zipf-skewed traffic toward several
  announced prefixes, with a clear heavy hitter emerging mid-run; the
  heavy-hitter steering app offloads it to an alternate transit.

Everything is deterministic given ``seed`` (rates are fixed; the seed
only jitters source host addresses within their slices).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.workloads.seeding import SeedLike, make_rng

#: The eyeball AS's block in the shifting scenario.
EYEBALL_PREFIX = IPv4Prefix("70.0.0.0/8")

#: Source-address slices: eight /3 blocks covering the IPv4 space —
#: the same carve the reactive balancer defaults to.
SLICE_COUNT = 8

#: Per-slice rates (Mbps) before and after the shift, designed around
#: the balancer's initial round-robin split (even slices → port A, odd
#: → port B for a two-port member): BEFORE is balanced under it (A=40,
#: B=36 — inside the hysteresis band, so the watch stays quiet), while
#: AFTER piles every heavy slice onto the even positions (A=68, B=8 —
#: imbalance 1.8, well past the raising threshold). The heavy rates are
#: distinct, so an LPT re-pack can spread them back to a near-even
#: split.
SHIFT_RATES_BEFORE = (20.0, 2.0, 2.0, 18.0, 16.0, 2.0, 2.0, 14.0)
SHIFT_RATES_AFTER = (20.0, 2.0, 16.0, 2.0, 18.0, 2.0, 14.0, 2.0)

#: Prefixes announced in the skewed (heavy-hitter) scenario.
SKEWED_PREFIXES = tuple(
    IPv4Prefix(f"{60 + index}.0.0.0/8") for index in range(5))

#: Per-prefix rates (Mbps) in the skewed scenario's two phases: flat at
#: first, then one prefix surges into an unmistakable heavy hitter. The
#: surger is deliberately *not* the group's representative (smallest)
#: prefix, so FEC-level detection alone cannot name it — the steering
#: app's per-rule drill-down has to.
SKEWED_SURGE_INDEX = 2
SKEWED_RATES_BEFORE = (8.0, 6.0, 5.0, 4.0, 3.0)
SKEWED_RATES_AFTER = (8.0, 6.0, 120.0, 4.0, 3.0)


@dataclass(frozen=True)
class ScenarioFlow:
    """One constant-rate flow over a time window of the scenario."""

    name: str
    source: str
    packet: Packet
    dst_prefix: IPv4Prefix
    rate_mbps: float
    start: float
    end: float

    def active_at(self, when: float) -> bool:
        """True while the flow is sending (start inclusive, end exclusive)."""
        return self.start <= when < self.end


def source_slices(count: int = SLICE_COUNT) -> Tuple[IPv4Prefix, ...]:
    """``count`` equal-width prefixes covering the IPv4 address space.

    ``count`` must be a power of two. This is the shared definition of
    "slice" between the scenarios and the reactive inbound balancer.
    """
    if count < 1 or count & (count - 1):
        raise ValueError(f"slice count must be a power of two, got {count}")
    length = count.bit_length() - 1
    step = (1 << 32) >> length if length else 0
    return tuple(
        IPv4Prefix(network=index * step, length=length)
        for index in range(count))


def build_shifting_controller(*, statics_mode: str = "off") -> SdxController:
    """The shifting scenario's exchange: two senders, one two-port eyeball.

    ``Eyeball`` (two ports) announces :data:`EYEBALL_PREFIX`; ``CDN``
    and ``Transit`` send toward it. Returns the started controller.
    """
    sdx = SdxController(statics_mode=statics_mode)
    sdx.add_participant("Eyeball", 65010, ports=2)
    sdx.add_participant("CDN", 65020)
    sdx.add_participant("Transit", 65030)
    sdx.announce_route("Eyeball", EYEBALL_PREFIX, AsPath([65010]))
    sdx.start()
    return sdx


def shifting_flows(*, shift_time: float, duration: float,
                   seed: SeedLike = 0,
                   rate_scale: float = 1.0) -> List[ScenarioFlow]:
    """Per-slice flows whose rates flip at ``shift_time``.

    One flow per source slice and phase; slice ``i`` carries
    ``SHIFT_RATES_BEFORE[i]`` Mbps until the shift and
    ``SHIFT_RATES_AFTER[i]`` after. Sources alternate CDN/Transit.
    """
    rng = make_rng(seed, salt=0x51C3)
    slices = source_slices()
    flows: List[ScenarioFlow] = []
    for index, block in enumerate(slices):
        srcip = block.first_address + rng.randrange(1, 1000)
        source = "CDN" if index % 2 == 0 else "Transit"
        packet = Packet(dstip=EYEBALL_PREFIX.first_address + 10 + index,
                        srcip=srcip, dstport=443,
                        srcport=10_000 + index, protocol=6)
        for phase, (start, end, rates) in enumerate((
                (0.0, shift_time, SHIFT_RATES_BEFORE),
                (shift_time, duration, SHIFT_RATES_AFTER))):
            rate = rates[index] * rate_scale
            if rate <= 0:
                continue
            flows.append(ScenarioFlow(
                name=f"slice{index}-p{phase}", source=source, packet=packet,
                dst_prefix=EYEBALL_PREFIX, rate_mbps=rate,
                start=start, end=end))
    return flows


def build_skewed_controller(*, statics_mode: str = "off") -> SdxController:
    """The skewed scenario's exchange: one sender, two transits.

    ``Primary`` and ``Alternate`` both announce every skewed prefix;
    ``Primary`` wins best-route selection on AS-path length, so all
    traffic uses it until a steering policy says otherwise. Returns the
    started controller.
    """
    sdx = SdxController(statics_mode=statics_mode)
    sdx.add_participant("Sender", 65040)
    sdx.add_participant("Primary", 65050)
    sdx.add_participant("Alternate", 65060)
    for index, prefix in enumerate(SKEWED_PREFIXES):
        origin = 64_900 + index
        sdx.announce_route("Primary", prefix, AsPath([65050, origin]))
        sdx.announce_route("Alternate", prefix, AsPath([65060, 65061, origin]))
    sdx.start()
    return sdx


def skewed_flows(*, surge_time: float, duration: float,
                 seed: SeedLike = 0,
                 rate_scale: float = 1.0) -> List[ScenarioFlow]:
    """Per-prefix flows from ``Sender``; one prefix surges at ``surge_time``
    (index :data:`SKEWED_SURGE_INDEX`)."""
    rng = make_rng(seed, salt=0x5EED)
    flows: List[ScenarioFlow] = []
    for index, prefix in enumerate(SKEWED_PREFIXES):
        packet = Packet(dstip=prefix.first_address + 1 + rng.randrange(200),
                        srcip=IPv4Prefix("8.0.0.0/8").first_address + index,
                        dstport=80, srcport=20_000 + index, protocol=6)
        for phase, (start, end, rates) in enumerate((
                (0.0, surge_time, SKEWED_RATES_BEFORE),
                (surge_time, duration, SKEWED_RATES_AFTER))):
            rate = rates[index] * rate_scale
            if rate <= 0:
                continue
            flows.append(ScenarioFlow(
                name=f"prefix{index}-p{phase}", source="Sender", packet=packet,
                dst_prefix=prefix, rate_mbps=rate, start=start, end=end))
    return flows


def phase_rates_by_slice(after: bool) -> Dict[int, float]:
    """Nominal per-slice rates of a shifting phase (test convenience)."""
    rates = SHIFT_RATES_AFTER if after else SHIFT_RATES_BEFORE
    return {index: rate for index, rate in enumerate(rates)}
