"""Scenario generation: determinism, serialisation, topology alignment."""

import pytest

from repro.verification.corpus import generate_corpus, senders_for
from repro.verification.reference import ReferenceInterpreter
from repro.verification.scenario import Scenario, generate_scenario


class TestGeneration:
    def test_same_seed_same_scenario(self):
        assert generate_scenario(7, steps=10) == generate_scenario(7, steps=10)

    def test_different_seeds_differ(self):
        assert generate_scenario(7, steps=10) != generate_scenario(8, steps=10)

    def test_requested_shape(self):
        scenario = generate_scenario(
            1, participants=5, prefixes=3, policies=4, steps=9)
        assert len(scenario.participants) == 5
        assert len(scenario.prefixes) == 3
        assert len(scenario.policies) == 4
        assert len(scenario.trace) == 9

    def test_every_prefix_has_an_owner(self):
        scenario = generate_scenario(2, steps=5)
        announced = {announcement.prefix
                     for announcement in scenario.announcements}
        assert announced == set(scenario.prefixes)

    def test_trace_touches_only_known_announcers(self):
        scenario = generate_scenario(3, steps=15)
        announcers = {(a.participant, a.prefix)
                      for a in scenario.announcements}
        for step in scenario.trace:
            assert (step.participant, step.prefix) in announcers

    def test_rejects_degenerate_exchange(self):
        with pytest.raises(ValueError):
            generate_scenario(0, participants=1)


class TestSerialisation:
    def test_json_round_trip_exact(self):
        scenario = generate_scenario(11, steps=12)
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_json_is_deterministic(self):
        assert (generate_scenario(11, steps=12).to_json()
                == generate_scenario(11, steps=12).to_json())

    def test_version_checked(self):
        payload = generate_scenario(0, steps=2).to_dict()
        payload["version"] = 999
        with pytest.raises(ValueError):
            Scenario.from_dict(payload)


class TestTopologyAlignment:
    def test_derived_facts_match_real_controller(self):
        """The scenario's independently derived ports and peering-LAN IPs
        must agree with what SdxController actually allocates — this is
        what entitles the reference interpreter to skip the controller."""
        scenario = generate_scenario(4, participants=5, steps=4)
        controller = scenario.build_controller()
        assert ReferenceInterpreter(scenario).verify_alignment(
            controller) is None

    def test_step_updates_are_value_identical(self):
        scenario = generate_scenario(5, steps=8)
        for step in scenario.trace:
            assert scenario.step_update(step) == scenario.step_update(step)


class TestCorpus:
    def test_corpus_deterministic(self):
        scenario = generate_scenario(6, steps=4)
        first = [repr(packet) for packet in generate_corpus(scenario)]
        second = [repr(packet) for packet in generate_corpus(scenario)]
        assert first == second

    def test_corpus_covers_every_prefix(self):
        scenario = generate_scenario(6, steps=4)
        from repro.net.addresses import IPv4Prefix
        for text in scenario.prefixes:
            prefix = IPv4Prefix(text)
            assert any(prefix.contains_address(packet["dstip"])
                       for packet in generate_corpus(scenario))

    def test_senders_are_the_members(self):
        scenario = generate_scenario(6, steps=4)
        assert senders_for(scenario) == scenario.participant_names()
