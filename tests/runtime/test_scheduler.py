"""Watermark, idle-gap, and rate-limit decisions of the scheduler."""

from repro.core.incremental import RecompilePressure
from repro.runtime.clock import ManualClock
from repro.runtime.scheduler import RecompilationScheduler, SchedulerConfig


class StubEngine:
    """Just enough of IncrementalEngine for scheduling decisions."""

    def __init__(self, *, dirty=True, rules=0, vnhs=0):
        self.dirty = dirty
        self.rules = rules
        self.vnhs = vnhs

    def pressure(self):
        return RecompilePressure(fast_path_rules=self.rules,
                                 ephemeral_vnhs=self.vnhs, dirty=self.dirty)


def scheduler(engine, clock, **overrides):
    defaults = dict(max_fast_path_rules=10, max_ephemeral_vnhs=5,
                    idle_seconds=2.0, min_interval_seconds=0.0)
    defaults.update(overrides)
    return RecompilationScheduler(engine, SchedulerConfig(**defaults), clock)


class TestDue:
    def test_clean_engine_never_due(self):
        sched = scheduler(StubEngine(dirty=False, rules=99, vnhs=99),
                          ManualClock())
        assert sched.due(queue_empty=True) is None

    def test_rules_watermark(self):
        sched = scheduler(StubEngine(rules=10), ManualClock())
        assert sched.due(queue_empty=False) == "rules"

    def test_vnh_watermark(self):
        sched = scheduler(StubEngine(vnhs=5), ManualClock())
        assert sched.due(queue_empty=False) == "vnh"

    def test_rules_outrank_vnh(self):
        sched = scheduler(StubEngine(rules=10, vnhs=5), ManualClock())
        assert sched.due(queue_empty=False) == "rules"

    def test_below_watermarks_not_due(self):
        sched = scheduler(StubEngine(rules=9, vnhs=4), ManualClock())
        assert sched.due(queue_empty=True) is None


class TestIdleGap:
    def test_idle_fires_after_gap_with_empty_queue(self):
        clock = ManualClock()
        sched = scheduler(StubEngine(), clock)
        sched.note_event()
        clock.advance(2.0)
        assert sched.due(queue_empty=True) == "idle"

    def test_idle_needs_empty_queue(self):
        clock = ManualClock()
        sched = scheduler(StubEngine(), clock)
        sched.note_event()
        clock.advance(2.0)
        assert sched.due(queue_empty=False) is None

    def test_new_event_resets_gap(self):
        clock = ManualClock()
        sched = scheduler(StubEngine(), clock)
        sched.note_event()
        clock.advance(1.5)
        sched.note_event()
        clock.advance(1.5)
        assert sched.due(queue_empty=True) is None
        clock.advance(0.5)
        assert sched.due(queue_empty=True) == "idle"

    def test_no_events_means_no_idle_trigger(self):
        clock = ManualClock()
        sched = scheduler(StubEngine(), clock)
        clock.advance(100.0)
        assert sched.due(queue_empty=True) is None


class TestMinInterval:
    def test_recent_recompile_suppresses_watermark(self):
        clock = ManualClock()
        sched = scheduler(StubEngine(rules=10), clock,
                          min_interval_seconds=5.0)
        sched.note_recompiled()
        clock.advance(4.0)
        assert sched.due(queue_empty=False) is None
        clock.advance(1.0)
        assert sched.due(queue_empty=False) == "rules"
