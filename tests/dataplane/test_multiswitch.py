"""Tests for the multi-switch topology abstraction (paper Section 4.1).

The key property: partitioning the big-switch classifier over any
connected multi-switch topology preserves end-to-end forwarding exactly.
"""

import pytest

from repro.dataplane.multiswitch import (
    MultiSwitchDataPlane,
    SdxTopology,
    partition_classifier,
)
from repro.exceptions import FabricError
from repro.net.packet import Packet

from tests.core.scenarios import figure1_controller, packet


def make_topology(ports, layout):
    """Build an SdxTopology placing ``ports`` per ``layout`` (port->switch)."""
    topology = SdxTopology()
    for name in sorted(set(layout.values())):
        topology.add_switch(name)
    for port in ports:
        topology.assign_port(port, layout[port])
    return topology


class TestSdxTopology:
    def test_assignment_and_lookup(self):
        topology = make_topology([1, 2], {1: "s1", 2: "s2"})
        topology.add_link("s1", 100, "s2", 100)
        assert topology.switch_of(1) == "s1"
        assert topology.edge_ports("s1") == (1,)
        assert topology.trunk_ports("s1") == (100,)
        assert topology.switches == ("s1", "s2")

    def test_duplicate_switch_rejected(self):
        topology = SdxTopology()
        topology.add_switch("s1")
        with pytest.raises(FabricError):
            topology.add_switch("s1")

    def test_duplicate_port_rejected(self):
        topology = make_topology([1], {1: "s1"})
        with pytest.raises(FabricError):
            topology.assign_port(1, "s1")

    def test_unknown_switch_rejected(self):
        topology = SdxTopology()
        with pytest.raises(FabricError):
            topology.assign_port(1, "ghost")
        topology.add_switch("s1")
        with pytest.raises(FabricError):
            topology.add_link("s1", 100, "ghost", 100)

    def test_self_link_rejected(self):
        topology = SdxTopology()
        topology.add_switch("s1")
        with pytest.raises(FabricError):
            topology.add_link("s1", 100, "s1", 101)

    def test_trunk_edge_collision_rejected(self):
        topology = make_topology([1], {1: "s1"})
        topology.add_switch("s2")
        with pytest.raises(FabricError):
            topology.add_link("s1", 1, "s2", 100)

    def test_next_hops_line_topology(self):
        topology = SdxTopology()
        for name in ("s1", "s2", "s3"):
            topology.add_switch(name)
        topology.add_link("s1", 100, "s2", 101)
        topology.add_link("s2", 102, "s3", 103)
        hops = topology.next_hops()
        assert hops[("s1", "s2")] == ("s2", 100)
        assert hops[("s1", "s3")] == ("s2", 100)   # via s2
        assert hops[("s3", "s1")] == ("s2", 103)

    def test_disconnected_rejected(self):
        topology = SdxTopology()
        topology.add_switch("s1")
        topology.add_switch("s2")
        with pytest.raises(FabricError):
            topology.next_hops()

    def test_unassigned_port_lookup_rejected(self):
        with pytest.raises(FabricError):
            SdxTopology().switch_of(7)


class TestPartitioning:
    def partitioned_plane(self, layout, links):
        sdx, *_ = figure1_controller()
        result = sdx.start()
        ports = sdx.topology.physical_ports()
        topology = make_topology(ports, layout)
        for link in links:
            topology.add_link(*link)
        tables = partition_classifier(result.classifier, topology)
        plane = MultiSwitchDataPlane(topology, tables)
        return sdx, result.classifier, plane

    def probes(self):
        for dstip in ("11.0.0.1", "12.0.0.1", "13.0.0.1", "14.0.0.1",
                      "15.0.0.1", "99.0.0.1"):
            for dstport in (80, 443, 22):
                for srcip in ("10.0.0.1", "200.0.0.1"):
                    yield packet(dstip, dstport=dstport, srcip=srcip)

    def big_switch_deliveries(self, sdx, classifier, probe):
        out = set()
        for result in classifier.eval(probe):
            if result.port is not None:
                out.add((result.port, result))
        return out

    @pytest.mark.parametrize("layout,links", [
        # Two switches: A+B on s1; C+E on s2.
        ({1: "s1", 2: "s1", 3: "s1", 4: "s2", 5: "s2"},
         [("s1", 100, "s2", 101)]),
        # Three switches in a line.
        ({1: "s1", 2: "s2", 3: "s2", 4: "s3", 5: "s3"},
         [("s1", 100, "s2", 101), ("s2", 102, "s3", 103)]),
    ])
    def test_partition_preserves_forwarding(self, layout, links):
        sdx, classifier, plane = self.partitioned_plane(layout, links)
        for source in ("A", "B", "C", "E"):
            router = sdx.fabric.router(source)
            for probe in self.probes():
                framed = router.emit(probe)
                if framed is None:
                    continue
                expected = self.big_switch_deliveries(sdx, classifier, framed)
                actual = set(
                    (port, pkt) for port, pkt in plane.process(framed))
                assert actual == expected, (
                    f"{source} -> {probe!r}: multi-switch {actual} != "
                    f"big-switch {expected}")

    def test_single_switch_degenerates(self):
        layout = {port: "s1" for port in (1, 2, 3, 4, 5)}
        sdx, classifier, plane = self.partitioned_plane(layout, [])
        framed = sdx.fabric.router("A").emit(packet("13.0.0.1"))
        assert plane.process(framed) == [
            (port, pkt) for port, pkt in
            sorted(self.big_switch_deliveries(sdx, classifier, framed))]

    def test_packet_without_port_rejected(self):
        layout = {port: "s1" for port in (1, 2, 3, 4, 5)}
        _sdx, _classifier, plane = self.partitioned_plane(layout, [])
        with pytest.raises(FabricError):
            plane.process(Packet(dstip="11.0.0.1"))


class TestLoopGuard:
    def test_forwarding_loop_across_switches_detected(self):
        """A corrupt table bouncing a frame between trunks must raise
        rather than spin forever."""
        from repro.net.mac import MacAddress
        from repro.policy.classifier import Action, Classifier, Rule
        from repro.policy.headerspace import WILDCARD

        topology = SdxTopology()
        topology.add_switch("s1")
        topology.add_switch("s2")
        topology.assign_port(1, "s1")
        topology.add_link("s1", 100, "s2", 101)
        bounce_1 = Classifier([Rule(WILDCARD, (Action(port=100),))])
        bounce_2 = Classifier([Rule(WILDCARD, (Action(port=101),))])
        plane = MultiSwitchDataPlane(
            topology, {"s1": bounce_1, "s2": bounce_2}, max_hops=4)
        with pytest.raises(FabricError):
            plane.process(Packet(port=1, dstmac=MacAddress(5)))

    def test_trunk_link_other_end_validation(self):
        from repro.dataplane.multiswitch import TrunkLink
        link = TrunkLink("s1", 100, "s2", 101)
        assert link.other_end("s1") == ("s2", 101)
        assert link.other_end("s2") == ("s1", 100)
        assert link.endpoint("s3") is None
        with pytest.raises(FabricError):
            link.other_end("s3")


class TestRandomLayouts:
    """Property: ANY connected placement of ports onto 1-3 chained
    switches preserves big-switch forwarding."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    layouts = st.lists(st.integers(min_value=0, max_value=2),
                       min_size=5, max_size=5)

    @settings(max_examples=15, deadline=None)
    @given(layouts, st.integers(min_value=0, max_value=3))
    def test_any_layout_preserves_forwarding_property(self, assignment, which):
        sdx, *_ = figure1_controller()
        result = sdx.start()
        ports = sdx.topology.physical_ports()
        used = sorted(set(assignment))
        layout = {port: f"s{assignment[index] + 1}"
                  for index, port in enumerate(ports)}
        topology = make_topology(ports, layout)
        names = sorted({f"s{i + 1}" for i in assignment})
        for left, right in zip(names, names[1:]):
            offset = 100 + 2 * names.index(left)
            topology.add_link(left, offset, right, offset + 1)
        tables = partition_classifier(result.classifier, topology)
        plane = MultiSwitchDataPlane(topology, tables)

        source = ["A", "B", "C", "E"][which]
        router = sdx.fabric.router(source)
        for dstip in ("11.0.0.1", "13.0.0.1", "15.0.0.1"):
            for dstport in (80, 22):
                framed = router.emit(packet(dstip, dstport=dstport))
                if framed is None:
                    continue
                expected = {
                    (out.port, out) for out in result.classifier.eval(framed)
                    if out.port is not None
                }
                actual = set(plane.process(framed))
                assert actual == expected


class TestCrossFabricPortMapping:
    """Edge cases where two federated fabrics reuse the same port numbers.

    Switch ports are fabric-local integers: both exchanges number their
    ports from 1, so the federated driver must resolve (exchange,
    participant) pairs, never bare port numbers, when a packet crosses
    fabrics.
    """

    def federation(self):
        from tests.federation.scenarios import clean_scenario

        return clean_scenario().build_controller()

    def test_port_numbers_collide_across_fabrics(self):
        federation = self.federation()
        ports_a = federation.exchange("IXP-A").fabric.switch.ports
        ports_b = federation.exchange("IXP-B").fabric.switch.ports
        # The premise of the edge case: overlapping numeric port spaces.
        assert set(ports_a) & set(ports_b)

    def test_reentry_resolves_ports_in_the_new_fabric(self):
        from repro.net.packet import Packet

        federation = self.federation()
        outcome = federation.forward(
            "IXP-B", "Eyeball", Packet(dstip="198.51.100.9", dstport=80))
        assert outcome.is_delivered
        content = federation.handle("IXP-A", "Content")
        delivery = outcome.deliveries[0]
        assert delivery.participant == "Content"
        assert delivery.switch_port == content.port(0)
        # The same number exists at IXP-B but belongs to someone else;
        # attribution is by fabric, not by bare number.
        owner_b = next(
            name
            for name in federation.exchange("IXP-B").topology.names()
            if federation.handle("IXP-B", name).port(0)
            == delivery.switch_port)
        assert owner_b != "Content"

    def test_shared_participant_has_one_port_entry_per_fabric(self):
        federation = self.federation()
        transit_a = federation.handle("IXP-A", "Transit")
        transit_b = federation.handle("IXP-B", "Transit")
        switch_a = federation.exchange("IXP-A").fabric.switch
        switch_b = federation.exchange("IXP-B").fabric.switch
        assert transit_a.port(0) in switch_a.ports
        assert transit_b.port(0) in switch_b.ports
        # Each incarnation's counters start independent.
        assert switch_a.stats(transit_a.port(0)).rx_packets == 0
        assert switch_b.stats(transit_b.port(0)).rx_packets == 0
