"""Tests for the prefix trie and RIB structures, including a brute-force
longest-prefix-match comparison driven by hypothesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.bgp.rib import AdjRibIn, PrefixTrie, RibView, RouteEntry
from repro.exceptions import BgpError
from repro.net.addresses import IPv4Address, IPv4Prefix

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
prefix_strategy = st.builds(
    lambda n, l: IPv4Prefix(network=n, length=l),
    addresses,
    st.integers(min_value=0, max_value=32),
)


def entry_for(prefix_text, learned_from="A", path=(65001,), next_hop="172.0.0.1", **kw):
    return RouteEntry(
        prefix=IPv4Prefix(prefix_text),
        attributes=RouteAttributes(next_hop=IPv4Address(next_hop),
                                   as_path=AsPath(path), **kw),
        learned_from=learned_from)


class TestPrefixTrie:
    def test_insert_and_exact(self):
        trie = PrefixTrie()
        trie.insert(IPv4Prefix("10.0.0.0/8"), "a")
        assert trie.exact(IPv4Prefix("10.0.0.0/8")) == "a"
        assert trie.exact(IPv4Prefix("10.0.0.0/16")) is None
        assert IPv4Prefix("10.0.0.0/8") in trie

    def test_insert_replaces(self):
        trie = PrefixTrie()
        trie.insert(IPv4Prefix("10.0.0.0/8"), "a")
        trie.insert(IPv4Prefix("10.0.0.0/8"), "b")
        assert trie.exact(IPv4Prefix("10.0.0.0/8")) == "b"
        assert len(trie) == 1

    def test_remove(self):
        trie = PrefixTrie()
        trie.insert(IPv4Prefix("10.0.0.0/8"), "a")
        assert trie.remove(IPv4Prefix("10.0.0.0/8")) == "a"
        assert trie.remove(IPv4Prefix("10.0.0.0/8")) is None
        assert len(trie) == 0

    def test_longest_match_prefers_specific(self):
        trie = PrefixTrie()
        trie.insert(IPv4Prefix("10.0.0.0/8"), "short")
        trie.insert(IPv4Prefix("10.1.0.0/16"), "long")
        assert trie.longest_match("10.1.2.3") == (IPv4Prefix("10.1.0.0/16"), "long")
        assert trie.longest_match("10.2.0.1") == (IPv4Prefix("10.0.0.0/8"), "short")
        assert trie.longest_match("11.0.0.1") is None

    def test_default_route_matches_everything(self):
        trie = PrefixTrie()
        trie.insert(IPv4Prefix("0.0.0.0/0"), "default")
        assert trie.longest_match("203.0.113.7")[1] == "default"

    def test_covering(self):
        trie = PrefixTrie()
        trie.insert(IPv4Prefix("10.0.0.0/8"), "a")
        trie.insert(IPv4Prefix("10.1.0.0/16"), "b")
        trie.insert(IPv4Prefix("11.0.0.0/8"), "c")
        covering = trie.covering(IPv4Prefix("10.1.2.0/24"))
        assert [p for p, _ in covering] == [IPv4Prefix("10.1.0.0/16"), IPv4Prefix("10.0.0.0/8")]

    def test_covered_by(self):
        trie = PrefixTrie()
        trie.insert(IPv4Prefix("10.0.0.0/8"), "a")
        trie.insert(IPv4Prefix("10.1.0.0/16"), "b")
        trie.insert(IPv4Prefix("11.0.0.0/8"), "c")
        covered = dict(trie.covered_by(IPv4Prefix("10.0.0.0/8")))
        assert set(covered.values()) == {"a", "b"}

    def test_iteration(self):
        trie = PrefixTrie()
        trie.insert(IPv4Prefix("10.0.0.0/8"), 1)
        trie.insert(IPv4Prefix("11.0.0.0/8"), 2)
        assert set(trie) == {IPv4Prefix("10.0.0.0/8"), IPv4Prefix("11.0.0.0/8")}
        assert dict(trie.items())[IPv4Prefix("11.0.0.0/8")] == 2

    @settings(max_examples=60, deadline=None)
    @given(st.lists(prefix_strategy, max_size=20), addresses)
    def test_longest_match_agrees_with_brute_force(self, prefixes, address):
        trie = PrefixTrie()
        for index, prefix in enumerate(prefixes):
            trie.insert(prefix, index)
        result = trie.longest_match(address)
        containing = [p for p in prefixes if p.contains_address(address)]
        if not containing:
            assert result is None
        else:
            best_length = max(p.length for p in containing)
            assert result is not None
            assert result[0].length == best_length
            assert result[0].contains_address(address)


class TestAdjRibIn:
    def test_apply_announcement(self):
        adj = AdjRibIn("A")
        update = Update.announce("A", IPv4Prefix("10.0.0.0/8"),
                                 entry_for("10.0.0.0/8").attributes)
        assert adj.apply(update) == [IPv4Prefix("10.0.0.0/8")]
        assert adj.route(IPv4Prefix("10.0.0.0/8")) is not None
        assert len(adj) == 1

    def test_duplicate_announcement_reports_no_change(self):
        adj = AdjRibIn("A")
        attributes = entry_for("10.0.0.0/8").attributes
        adj.apply(Update.announce("A", IPv4Prefix("10.0.0.0/8"), attributes))
        assert adj.apply(Update.announce("A", IPv4Prefix("10.0.0.0/8"), attributes)) == []

    def test_withdrawal(self):
        adj = AdjRibIn("A")
        adj.apply(Update.announce("A", IPv4Prefix("10.0.0.0/8"),
                                  entry_for("10.0.0.0/8").attributes))
        assert adj.apply(Update.withdraw("A", IPv4Prefix("10.0.0.0/8"))) == [
            IPv4Prefix("10.0.0.0/8")]
        assert adj.route(IPv4Prefix("10.0.0.0/8")) is None

    def test_withdrawal_of_unknown_prefix_is_noop(self):
        adj = AdjRibIn("A")
        assert adj.apply(Update.withdraw("A", IPv4Prefix("10.0.0.0/8"))) == []

    def test_rejects_foreign_update(self):
        adj = AdjRibIn("A")
        with pytest.raises(BgpError):
            adj.apply(Update.withdraw("B", IPv4Prefix("10.0.0.0/8")))

    def test_reannounce_in_same_update_wins_over_withdrawal(self):
        adj = AdjRibIn("A")
        prefix = IPv4Prefix("10.0.0.0/8")
        attributes = entry_for("10.0.0.0/8").attributes
        adj.apply(Update.announce("A", prefix, attributes))
        from repro.bgp.messages import Announcement, Withdrawal
        update = Update(sender="A",
                        announcements=(Announcement(prefix, attributes),),
                        withdrawals=(Withdrawal(prefix),))
        adj.apply(update)
        assert adj.route(prefix) is not None


class TestRibView:
    def make_view(self):
        routes = {
            IPv4Prefix("10.0.0.0/8"): entry_for("10.0.0.0/8", path=(7018, 43515)),
            IPv4Prefix("20.0.0.0/8"): entry_for("20.0.0.0/8", path=(3356, 1234)),
            IPv4Prefix("30.0.0.0/8"): entry_for("30.0.0.0/8", path=(43515,)),
        }
        return RibView(routes)

    def test_paper_as_path_filter(self):
        """Section 3.2: select every prefix originated by AS 43515."""
        view = self.make_view()
        assert view.filter("as_path", r".*43515$") == (
            IPv4Prefix("10.0.0.0/8"), IPv4Prefix("30.0.0.0/8"))

    def test_next_hop_filter(self):
        view = self.make_view()
        assert len(view.filter("next_hop", r"^172\.")) == 3

    def test_unsupported_attribute(self):
        with pytest.raises(BgpError):
            self.make_view().filter("local_pref", "100")

    def test_originated_by(self):
        view = self.make_view()
        assert view.originated_by(43515) == (
            IPv4Prefix("10.0.0.0/8"), IPv4Prefix("30.0.0.0/8"))

    def test_prefixes_sorted(self):
        assert list(self.make_view().prefixes()) == sorted(self.make_view().prefixes())

    def test_route_lookup(self):
        view = self.make_view()
        assert view.route(IPv4Prefix("10.0.0.0/8")).learned_from == "A"
        assert view.route(IPv4Prefix("99.0.0.0/8")) is None
        assert len(view) == 3
