"""Tests for the canned monitoring scenarios (repro.workloads.scenarios)."""

import pytest

from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.workloads.scenarios import (
    EYEBALL_PREFIX,
    SHIFT_RATES_AFTER,
    SHIFT_RATES_BEFORE,
    SKEWED_PREFIXES,
    SKEWED_RATES_AFTER,
    SKEWED_RATES_BEFORE,
    SKEWED_SURGE_INDEX,
    ScenarioFlow,
    build_shifting_controller,
    build_skewed_controller,
    phase_rates_by_slice,
    shifting_flows,
    skewed_flows,
    source_slices,
)


class TestSourceSlices:
    def test_rejects_non_powers_of_two(self):
        for count in (0, 3, 6, -4):
            with pytest.raises(ValueError):
                source_slices(count)

    def test_one_slice_is_the_whole_space(self):
        assert source_slices(1) == (IPv4Prefix("0.0.0.0/0"),)

    def test_eight_slices_partition_the_space(self):
        slices = source_slices(8)
        assert len(slices) == 8
        assert all(block.length == 3 for block in slices)
        assert slices[0] == IPv4Prefix("0.0.0.0/3")
        # Contiguous and non-overlapping: each starts where the last ended.
        for earlier, later in zip(slices, slices[1:]):
            assert int(later.first_address) == int(earlier.first_address) + 2**29


class TestScenarioFlow:
    def test_window_is_start_inclusive_end_exclusive(self):
        flow = ScenarioFlow(name="f", source="A",
                            packet=Packet(dstip="1.2.3.4"),
                            dst_prefix=IPv4Prefix("1.0.0.0/8"),
                            rate_mbps=1.0, start=2.0, end=5.0)
        assert not flow.active_at(1.9)
        assert flow.active_at(2.0)
        assert flow.active_at(4.9)
        assert not flow.active_at(5.0)


class TestShiftingScenario:
    def test_controller_shape(self):
        sdx = build_shifting_controller()
        assert {h.name for h in sdx.participants()} == {
            "Eyeball", "CDN", "Transit"}
        assert len(sdx.participant("Eyeball").participant.switch_ports) == 2

    def test_rates_are_balanced_then_concentrated(self):
        # BEFORE is near-even under the round-robin split (even slices →
        # port A, odd → port B); AFTER concentrates on the even slices.
        before_a = sum(SHIFT_RATES_BEFORE[::2])
        before_b = sum(SHIFT_RATES_BEFORE[1::2])
        assert max(before_a, before_b) / min(before_a, before_b) < 1.15
        after_a = sum(SHIFT_RATES_AFTER[::2])
        after_b = sum(SHIFT_RATES_AFTER[1::2])
        assert max(after_a, after_b) / min(after_a, after_b) > 1.5

    def test_flows_flip_rates_at_the_shift(self):
        flows = shifting_flows(shift_time=10.0, duration=40.0)
        assert len(flows) == 16  # 8 slices x 2 phases
        for index in range(8):
            phase0, phase1 = [f for f in flows
                              if f.name.startswith(f"slice{index}-")]
            assert (phase0.start, phase0.end) == (0.0, 10.0)
            assert (phase1.start, phase1.end) == (10.0, 40.0)
            assert phase0.rate_mbps == SHIFT_RATES_BEFORE[index]
            assert phase1.rate_mbps == SHIFT_RATES_AFTER[index]
            assert phase0.dst_prefix == EYEBALL_PREFIX
            # The flow's source address really lives in its slice.
            assert source_slices()[index].contains_address(phase0.packet["srcip"])

    def test_rate_scale_and_seed_determinism(self):
        scaled = shifting_flows(shift_time=10.0, duration=40.0, rate_scale=2.0)
        assert scaled[0].rate_mbps == 2 * SHIFT_RATES_BEFORE[0]
        again = shifting_flows(shift_time=10.0, duration=40.0, rate_scale=2.0)
        assert [f.packet["srcip"] for f in again] == [
            f.packet["srcip"] for f in scaled]


class TestSkewedScenario:
    def test_controller_prefers_the_primary(self):
        sdx = build_skewed_controller()
        for prefix in SKEWED_PREFIXES:
            packet = Packet(dstip=prefix.first_address + 1, srcip="8.0.0.1",
                            dstport=80, srcport=1, protocol=6)
            assert sdx.egress_of("Sender", packet) == "Primary"

    def test_surger_is_not_the_group_representative(self):
        # The drill-down story depends on the hitter not being the FEC
        # label: detection names the group, per-rule rates name the prefix.
        assert SKEWED_SURGE_INDEX != 0
        surge = SKEWED_PREFIXES[SKEWED_SURGE_INDEX]
        assert surge != min(SKEWED_PREFIXES, key=str)

    def test_only_the_surger_changes_rate(self):
        for index, (before, after) in enumerate(
                zip(SKEWED_RATES_BEFORE, SKEWED_RATES_AFTER)):
            if index == SKEWED_SURGE_INDEX:
                assert after > 10 * before
            else:
                assert after == before

    def test_flows_surge_at_the_boundary(self):
        flows = skewed_flows(surge_time=10.0, duration=30.0)
        assert len(flows) == 10  # 5 prefixes x 2 phases
        surger = [f for f in flows
                  if f.name == f"prefix{SKEWED_SURGE_INDEX}-p1"][0]
        assert surger.start == 10.0 and surger.end == 30.0
        assert surger.rate_mbps == SKEWED_RATES_AFTER[SKEWED_SURGE_INDEX]
        assert surger.dst_prefix == SKEWED_PREFIXES[SKEWED_SURGE_INDEX]


class TestPhaseRates:
    def test_selects_the_right_vector(self):
        assert phase_rates_by_slice(False) == dict(
            enumerate(SHIFT_RATES_BEFORE))
        assert phase_rates_by_slice(True) == dict(enumerate(SHIFT_RATES_AFTER))
