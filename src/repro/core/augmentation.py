"""Transformation 2: BGP-reachability guards for outbound clauses.

"The SDX only applies a match() predicate to the portion of traffic that
is eligible for forwarding to the specified next-hop AS" (Section 3.2):
a participant may steer traffic to next-hop B only for prefixes B both
announced and exported to it.

The guard has two equivalent encodings, selected by the compiler:

* **VMAC-based** (the paper's scalable data plane, Section 4.2): packets
  arrive tagged with the VMAC of their prefix group, and the eligible
  groups for an (A → B) context are known from the FEC computation, so
  the guard is ``dstmac in {eligible VMACs}`` — one rule per group.
* **Prefix-based** (the naive baseline the paper argues against, kept for
  the ablation benchmark): ``dstip in {eligible prefixes}`` — one rule
  per prefix, which is what explodes the table.

:func:`rewrite_forwards` is the generic AST walker used by tooling that
manipulates raw policies (tests, examples) outside the clause pipeline.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.bgp.routeserver import RouteServer
from repro.core.fec import PrefixGroup
from repro.core.vnh import VnhAllocator
from repro.policy.policies import Forward, Parallel, Policy, Predicate, Sequential
from repro.policy.predicates import match_any_prefix, match_any_value

#: Maps a Forward node to its replacement policy.
ForwardRewriter = Callable[[Forward], Policy]


def rewrite_forwards(policy: Policy, rewriter: ForwardRewriter) -> Policy:
    """Rebuild a policy tree with every :class:`Forward` leaf rewritten.

    Predicates contain no forwarding actions, so only composition nodes
    are descended into.
    """
    if isinstance(policy, Forward):
        return rewriter(policy)
    if isinstance(policy, (Parallel, Sequential)):
        return type(policy)(
            rewrite_forwards(part, rewriter) for part in policy.parts)
    return policy


def vmac_guard(participant: str, target: str,
               groups: Iterable[PrefixGroup],
               allocator: VnhAllocator) -> Predicate:
    """The VMAC-set eligibility guard for one (participant → target) pair."""
    vmacs = [
        allocator.vmac_for_group(group.group_id)
        for group in groups
        if (participant, target) in group.contexts
    ]
    return match_any_value("dstmac", vmacs)


def prefix_guard(participant: str, target: str,
                 route_server: RouteServer) -> Predicate:
    """The naive dstip-prefix eligibility guard (ablation baseline)."""
    prefixes = route_server.reachable_prefixes(participant, via=target)
    return match_any_prefix("dstip", prefixes)
