"""Seeded defect injection: every planted defect must be recalled."""

import pytest

from repro.statics import analyze_controller
from repro.workloads.policies import (
    DEFECT_KINDS,
    defect_detected,
    defect_documents,
    generate_policies,
    inject_defects,
    install_assignments,
)
from repro.workloads.topology import generate_ixp

SEEDS = (0, 7, 23)


def seeded_controller(seed):
    ixp = generate_ixp(8, 16, seed=seed)
    controller = ixp.build_controller()
    install_assignments(controller,
                        generate_policies(ixp, seed=seed + 1))
    return controller


class TestInjection:
    def test_covers_all_six_defect_classes(self):
        assert len(DEFECT_KINDS) == 6

    def test_injection_is_deterministic(self):
        first = inject_defects(seeded_controller(3), seed=11)
        second = inject_defects(seeded_controller(3), seed=11)
        assert first == second

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            inject_defects(seeded_controller(0), kinds=("made_up",))

    def test_document_defects_get_consecutive_indices(self):
        defects = inject_defects(seeded_controller(0), seed=5)
        indices = [d.document_index for d in defects if d.document is not None]
        assert indices == list(range(len(indices)))
        assert len(defect_documents(defects)) == len(indices)


class TestRecall:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_injected_defect_is_detected(self, seed):
        controller = seeded_controller(seed)
        defects = inject_defects(controller, seed=seed)
        assert [d.kind for d in defects] == list(DEFECT_KINDS)
        report = analyze_controller(
            controller, raw_policies=defect_documents(defects))
        missed = [d.kind for d in defects if not defect_detected(d, report)]
        assert missed == []

    def test_clean_workload_has_no_errors(self):
        report = analyze_controller(seeded_controller(SEEDS[0]))
        assert [d.describe() for d in report.errors] == []


class TestFederationDefects:
    """Seeded federation-level defects: SDX008/SDX009 recall."""

    def seeded_federation(self, seed):
        from repro.federation import generate_federated_scenario

        scenario = generate_federated_scenario(
            seed, exchanges=2, participants=6, shared=2,
            policies=4, steps=0)
        return scenario.build_controller(with_dataplane=False)

    def test_covers_both_federation_defect_classes(self):
        from repro.workloads.policies import FEDERATION_DEFECT_KINDS

        assert FEDERATION_DEFECT_KINDS == (
            "federation_loop", "stitched_blackhole")

    def test_injection_is_deterministic(self):
        from repro.workloads.policies import inject_federation_defects

        first = inject_federation_defects(self.seeded_federation(3), seed=11)
        second = inject_federation_defects(self.seeded_federation(3), seed=11)
        assert first == second

    def test_unknown_kind_rejected(self):
        from repro.workloads.policies import inject_federation_defects

        with pytest.raises(ValueError):
            inject_federation_defects(
                self.seeded_federation(0), kinds=("made_up",))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_injected_defect_is_detected(self, seed):
        from repro.federation import analyze_federation
        from repro.workloads.policies import inject_federation_defects

        federation = self.seeded_federation(seed)
        defects = inject_federation_defects(federation, seed=seed)
        assert [d.check_id for d in defects] == ["SDX008", "SDX009"]
        report = analyze_federation(federation)
        missed = [d.kind for d in defects
                  if not defect_detected(d, report)]
        assert missed == []


class TestDataplaneDefects:
    """Seeded dataplane-level defects: SDX010/SDX012 recall."""

    def compiled_controller(self, seed):
        controller = seeded_controller(seed)
        controller.start()
        return controller

    def test_covers_both_dataplane_defect_classes(self):
        from repro.workloads.policies import DATAPLANE_DEFECT_KINDS

        assert DATAPLANE_DEFECT_KINDS == (
            "compiled_blackhole", "shadowed_install")

    def test_injection_is_deterministic(self):
        from repro.workloads.policies import inject_dataplane_defects

        first = inject_dataplane_defects(self.compiled_controller(3), seed=11)
        second = inject_dataplane_defects(self.compiled_controller(3), seed=11)
        assert first == second

    def test_unknown_kind_rejected(self):
        from repro.workloads.policies import inject_dataplane_defects

        with pytest.raises(ValueError):
            inject_dataplane_defects(
                self.compiled_controller(0), kinds=("made_up",))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_injected_defect_is_detected(self, seed):
        from repro.statics import analyze_controller_dataplane
        from repro.workloads.policies import inject_dataplane_defects

        controller = self.compiled_controller(seed)
        defects = inject_dataplane_defects(controller, seed=seed)
        assert [d.check_id for d in defects] == ["SDX012", "SDX010"]
        report = analyze_controller_dataplane(controller)
        missed = [d.kind for d in defects
                  if not defect_detected(d, report)]
        assert missed == []

    def test_clean_compiled_workload_has_no_errors(self):
        from repro.statics import analyze_controller_dataplane

        report = analyze_controller_dataplane(
            self.compiled_controller(SEEDS[0]))
        assert [d.describe() for d in report.errors] == []
