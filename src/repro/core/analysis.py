"""Deprecated: policy-interaction analysis (superseded by ``repro.statics``).

This module was the embryonic overlap finder; the static policy verifier
(:mod:`repro.statics`) absorbs and generalises it — stable check IDs,
severities, BGP-refined dead-clause detection, and five further checks.
The public names here (:func:`find_clause_overlaps`, :func:`analyze_sdx`,
:class:`ClauseOverlap`, :class:`SdxReport`) are kept for one release as
thin wrappers over the new engine and emit :class:`DeprecationWarning`.

Migrate:

* ``find_clause_overlaps(p)`` -> ``repro.statics`` ``ShadowOverlapCheck``
  / ``DeadClauseCheck`` diagnostics (``analyze_controller(c)``);
* ``analyze_sdx(controller)`` -> ``analyze_controller(controller)`` and
  :class:`~repro.statics.diagnostics.StaticsReport`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.clauses import Clause
from repro.core.participant import Participant
from repro.net.packet import Packet
from repro.statics.checks import clause_overlaps as _clause_overlaps
from repro.statics.regions import clause_regions as _clause_regions


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.core.analysis.{name} is deprecated; use {replacement} "
        f"from repro.statics instead",
        DeprecationWarning, stacklevel=3)


@dataclass(frozen=True)
class ClauseOverlap:
    """Two clauses of one participant that can match the same packet."""

    participant: str
    direction: str
    winner_index: int
    loser_index: int
    witness: Packet
    exact: bool

    def describe(self) -> str:
        """A one-line operator-facing description."""
        certainty = "overlap" if self.exact else "possible overlap"
        return (f"{self.participant} ({self.direction}): clause "
                f"#{self.winner_index} shadows #{self.loser_index} "
                f"({certainty}; e.g. {self.witness!r})")


def find_clause_overlaps(participant: Participant,
                         direction: str = "out") -> List[ClauseOverlap]:
    """Overlapping clause pairs within one participant's policy list.

    Deprecated alias for the ``SDX002`` overlap computation in
    :mod:`repro.statics.checks`.
    """
    _deprecated("find_clause_overlaps", "analyze_controller")
    if direction == "out":
        clauses: Sequence[Clause] = participant.outbound_clauses()
    elif direction == "in":
        clauses = participant.inbound_clauses()
    else:
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    infos = [_clause_regions(clause) for clause in clauses]
    return [
        ClauseOverlap(
            participant=participant.name, direction=direction,
            winner_index=winner, loser_index=loser,
            witness=witness, exact=exact)
        for winner, loser, witness, exact in _clause_overlaps(clauses, infos)
    ]


@dataclass
class ParticipantReport:
    """One participant's policy summary."""

    name: str
    outbound_clauses: int
    inbound_clauses: int
    targets: Tuple[str, ...]
    overlaps: List[ClauseOverlap] = field(default_factory=list)
    eligible_prefixes: Dict[str, int] = field(default_factory=dict)


@dataclass
class SdxReport:
    """An exchange-wide policy-interaction report."""

    participants: List[ParticipantReport]

    @property
    def total_overlaps(self) -> int:
        """Overlapping clause pairs across the whole exchange."""
        return sum(len(report.overlaps) for report in self.participants)

    def render(self) -> str:
        """A printable multi-line summary."""
        lines: List[str] = []
        for report in self.participants:
            lines.append(
                f"{report.name}: {report.outbound_clauses} outbound / "
                f"{report.inbound_clauses} inbound clauses"
                + (f", targets {', '.join(report.targets)}"
                   if report.targets else ""))
            for target, count in sorted(report.eligible_prefixes.items()):
                lines.append(f"  eligible via {target}: {count} prefixes")
            for overlap in report.overlaps:
                lines.append(f"  ! {overlap.describe()}")
        if not lines:
            return "(no policies installed)"
        return "\n".join(lines)


def analyze_sdx(controller) -> SdxReport:
    """Build the legacy policy-interaction report for a controller.

    Deprecated alias; new code should call
    :func:`repro.statics.analyze_controller` and consume the structured
    :class:`~repro.statics.diagnostics.StaticsReport`.
    """
    _deprecated("analyze_sdx", "analyze_controller")
    reports: List[ParticipantReport] = []
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        for participant in controller.topology.participants():
            if not participant.has_policies:
                continue
            report = ParticipantReport(
                name=participant.name,
                outbound_clauses=len(participant.outbound_clauses())
                if not participant.is_remote else 0,
                inbound_clauses=len(participant.inbound_clauses()),
                targets=participant.outbound_targets())
            if not participant.is_remote:
                report.overlaps.extend(find_clause_overlaps(participant, "out"))
            report.overlaps.extend(find_clause_overlaps(participant, "in"))
            for target in report.targets:
                report.eligible_prefixes[target] = len(
                    controller.route_server.reachable_prefixes(
                        participant.name, via=target))
            reports.append(report)
    return SdxReport(participants=reports)
