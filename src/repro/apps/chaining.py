"""Middlebox redirection and service chaining (Sections 2 and 8).

Single-middlebox redirection needs one outbound clause; a *chain*
("service chaining through middleboxes", the paper's Section 8 vision)
needs each middlebox to hand matching traffic to the next hop after
processing. :class:`ServiceChain` installs the per-hop policies, and
:func:`run_through_chain` simulates the packet's full journey — each
middlebox participant re-injects the (optionally transformed) packet
into the fabric, exactly how a scrubber or transcoder behaves.

Every middlebox must announce routes covering the chained destinations
(so the BGP-consistency guard admits the detour); use
:meth:`ServiceChain.announce_coverage` to emit suitably path-prepended
announcements that never win best-path selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.exceptions import PolicyError
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.policies import Policy, Predicate, fwd

#: A middlebox's packet transformation (identity for pass-through boxes).
PacketFunction = Callable[[Packet], Packet]


class ServiceChain:
    """Steer a traffic subset through an ordered list of middleboxes.

    ``owner`` is the participant whose traffic detours; ``middleboxes``
    the ordered middlebox participant names; matching traffic leaves the
    last middlebox toward its normal BGP destination.
    """

    def __init__(self, controller: SdxController, owner: str,
                 selector: Predicate, middleboxes: Sequence[str]):
        if not middleboxes:
            raise PolicyError("a service chain needs at least one middlebox")
        if len(set(middleboxes)) != len(middleboxes):
            raise PolicyError("middleboxes in a chain must be distinct")
        if owner in middleboxes:
            raise PolicyError("the chain owner cannot be its own middlebox")
        self.controller = controller
        self.owner = owner
        self.selector = selector
        self.middleboxes = tuple(middleboxes)
        self._installed: List[Tuple[str, Policy]] = []
        self._functions: Dict[str, PacketFunction] = {}

    def set_function(self, middlebox: str, function: PacketFunction) -> None:
        """Attach the packet transformation a middlebox applies."""
        if middlebox not in self.middleboxes:
            raise PolicyError(f"{middlebox!r} is not in this chain")
        self._functions[middlebox] = function

    def announce_coverage(self, prefixes: Iterable[IPv4Prefix],
                          prepend: int = 5) -> None:
        """Make every middlebox a BGP-eligible next hop for ``prefixes``.

        Announcements are AS-path prepended ``prepend`` times so they are
        always *eligible* but never *best* when a genuine route exists —
        default traffic keeps its normal path.
        """
        for name in self.middleboxes:
            participant = self.controller.topology.participant(name)
            for prefix in prefixes:
                path = AsPath([participant.asn] * prepend
                              + [participant.asn])
                self.controller.announce_route(name, prefix, path)

    def install(self) -> None:
        """Install the owner's detour and each middlebox's hand-off."""
        if self._installed:
            raise PolicyError("service chain already installed")
        hops = [self.owner] + list(self.middleboxes)
        for position in range(len(hops) - 1):
            sender, next_hop = hops[position], hops[position + 1]
            policy = self.selector >> fwd(next_hop)
            self.controller.participant(sender).add_outbound(policy)
            self._installed.append((sender, policy))

    def uninstall(self) -> None:
        """Remove every policy the chain installed."""
        for sender, policy in self._installed:
            self.controller.participant(sender).remove_outbound(policy)
        self._installed.clear()

    @property
    def is_installed(self) -> bool:
        """True while the chain's policies are in place."""
        return bool(self._installed)

    def function_of(self, middlebox: str) -> PacketFunction:
        """The middlebox's transformation (identity by default)."""
        return self._functions.get(middlebox, lambda packet: packet)


@dataclass
class ChainTraversal:
    """The observed journey of one packet through a chain."""

    hops: List[str] = field(default_factory=list)
    final_egress: Optional[str] = None
    final_packet: Optional[Packet] = None

    @property
    def completed(self) -> bool:
        """True if the packet ultimately left the exchange somewhere."""
        return self.final_egress is not None


def run_through_chain(chain: ServiceChain, source: str,
                      packet: Packet, max_hops: int = 10) -> ChainTraversal:
    """Simulate a packet's full trip: fabric hop, middlebox re-injection,
    repeat — until the packet egresses at a non-middlebox or drops."""
    controller = chain.controller
    traversal = ChainTraversal()
    current_source = source
    current_packet = packet
    for _ in range(max_hops):
        deliveries = [d for d in controller.send(current_source, current_packet)
                      if d.accepted]
        if not deliveries:
            return traversal
        egress = deliveries[0].participant
        if egress not in chain.middleboxes:
            traversal.final_egress = egress
            traversal.final_packet = deliveries[0].packet
            return traversal
        traversal.hops.append(egress)
        processed = chain.function_of(egress)(deliveries[0].packet)
        # The middlebox re-injects from inside its own AS; strip the
        # fabric location fields so its border router re-frames it.
        current_packet = processed.modify(port=None, dstmac=None, srcmac=None)
        current_source = egress
    raise PolicyError(f"packet still inside the chain after {max_hops} hops")
