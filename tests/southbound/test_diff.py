"""Tests for classifier diffing (repro.southbound.diff)."""

from repro.policy.classifier import Action, Classifier, Rule
from repro.policy.flowrules import FlowRule, to_flow_rules
from repro.policy.headerspace import WILDCARD, HeaderSpace
from repro.southbound.diff import (
    FlowMod,
    FlowModOp,
    align_flow_rules,
    compute_delta,
    diff_classifier,
    rule_key,
)


def rule(priority, actions=(), **constraints):
    return FlowRule(priority=priority, match=HeaderSpace(**constraints),
                    actions=actions)


FWD1 = (Action(port=1),)
FWD2 = (Action(port=2),)


class TestComputeDelta:
    def test_identical_tables_are_empty(self):
        rules = [rule(5, FWD1, dstport=80), rule(1, FWD2)]
        delta = compute_delta(rules, list(rules))
        assert delta.is_empty
        assert delta.unchanged == 2

    def test_added_rule(self):
        old = [rule(1, FWD2)]
        new = old + [rule(5, FWD1, dstport=80)]
        delta = compute_delta(old, new)
        assert [m.op for m in delta.adds] == [FlowModOp.ADD]
        assert delta.adds[0].key == (5, HeaderSpace(dstport=80))
        assert not delta.modifies and not delta.deletes
        assert delta.unchanged == 1

    def test_removed_rule(self):
        old = [rule(5, FWD1, dstport=80), rule(1, FWD2)]
        new = [rule(1, FWD2)]
        delta = compute_delta(old, new)
        assert [m.op for m in delta.deletes] == [FlowModOp.DELETE]
        assert delta.deletes[0].priority == 5

    def test_changed_actions_become_modify(self):
        old = [rule(5, FWD1, dstport=80)]
        new = [rule(5, FWD2, dstport=80)]
        delta = compute_delta(old, new)
        assert [m.op for m in delta.modifies] == [FlowModOp.MODIFY]
        assert delta.modifies[0].actions == FWD2
        assert delta.total == 1

    def test_same_match_new_priority_is_add_plus_delete(self):
        old = [rule(5, FWD1, dstport=80)]
        new = [rule(7, FWD1, dstport=80)]
        delta = compute_delta(old, new)
        assert len(delta.adds) == 1 and len(delta.deletes) == 1
        assert delta.adds[0].priority == 7
        assert delta.deletes[0].priority == 5

    def test_duplicate_installed_key_collapses_to_modify(self):
        first = rule(5, FWD1, dstport=80)
        shadow = rule(5, FWD2, dstport=80)
        delta = compute_delta([first, shadow], [first])
        assert [m.op for m in delta.modifies] == [FlowModOp.MODIFY]
        assert delta.modifies[0].actions == FWD1

    def test_duplicate_target_key_uses_first_instance(self):
        live = rule(5, FWD1, dstport=80)
        shadow = rule(5, FWD2, dstport=80)
        delta = compute_delta([], [live, shadow])
        assert len(delta.adds) == 1
        assert delta.adds[0].actions == FWD1

    def test_full_reinstall_cost(self):
        old = [rule(5, FWD1, dstport=80), rule(3, FWD2, dstport=22),
               rule(1, FWD2)]
        new = [rule(5, FWD2, dstport=80), rule(2, FWD1, dstport=443),
               rule(1, FWD2)]
        delta = compute_delta(old, new)
        # delete all three + add all three.
        assert delta.full_reinstall_cost == 6
        assert delta.total == 3  # one modify, one add, one delete
        assert delta.unchanged == 1

    def test_describe_mentions_every_kind(self):
        old = [rule(5, FWD1, dstport=80), rule(3, FWD2, dstport=22)]
        new = [rule(5, FWD2, dstport=80), rule(2, FWD1)]
        text = compute_delta(old, new).describe()
        assert "+1" in text and "~1" in text and "-1" in text


class TestDiffClassifier:
    def test_fresh_install_descends_in_classifier_order(self):
        classifier = Classifier([
            Rule(HeaderSpace(dstport=80), FWD1),
            Rule(WILDCARD, ()),
        ])
        delta = diff_classifier([], classifier, base_priority=10)
        assert len(delta.adds) == 2
        first, second = delta.adds
        assert first.match == HeaderSpace(dstport=80)
        assert first.priority > second.priority > 10
        assert {m.match for m in delta.adds} == {
            r.match for r in to_flow_rules(classifier, 10)}

    def test_noop_against_installed_classifier(self):
        classifier = Classifier([
            Rule(HeaderSpace(dstport=80), FWD1),
            Rule(WILDCARD, ()),
        ])
        installed = to_flow_rules(classifier, 0)
        assert diff_classifier(installed, classifier).is_empty

    def test_insertion_does_not_renumber_neighbours(self):
        old = Classifier([
            Rule(HeaderSpace(dstport=80), FWD1),
            Rule(HeaderSpace(dstport=22), FWD2),
            Rule(WILDCARD, ()),
        ])
        installed = align_flow_rules([], old)
        new = Classifier([
            Rule(HeaderSpace(dstport=80), FWD1),
            Rule(HeaderSpace(dstport=443), FWD1),
            Rule(HeaderSpace(dstport=22), FWD2),
            Rule(WILDCARD, ()),
        ])
        delta = diff_classifier(installed, new)
        # The insertion slots into a priority gap: one add, zero churn.
        assert len(delta.adds) == 1
        assert delta.adds[0].match == HeaderSpace(dstport=443)
        assert not delta.modifies and not delta.deletes
        assert delta.unchanged == 3

    def test_aligned_priorities_descend_strictly(self):
        old = Classifier([Rule(HeaderSpace(dstport=p), FWD1)
                          for p in (80, 443, 22)])
        installed = align_flow_rules([], old)
        new = Classifier(
            [Rule(HeaderSpace(dstport=p), FWD1)
             for p in (8080, 80, 8443, 443, 22, 53)] + [Rule(WILDCARD, ())])
        target = align_flow_rules(installed, new)
        priorities = [r.priority for r in target]
        assert priorities == sorted(priorities, reverse=True)
        assert len(set(priorities)) == len(priorities)
        kept = {r.priority for r in installed}
        assert kept <= set(priorities)  # survivors keep their keys


class TestFlowMod:
    def test_key_and_rule_round_trip(self):
        base = rule(5, FWD1, dstport=80)
        mod = FlowMod.add(base)
        assert mod.key == rule_key(base)
        assert mod.rule == base

    def test_describe(self):
        assert compute_delta([], [rule(5, FWD1, dstport=80)]).adds[0] \
            .describe().startswith("add priority=5")
