"""The control-plane event loop: ingest, coalesce, drain, recompile.

:class:`ControlPlaneRuntime` is the layer the paper leaves implicit
between "BGP updates arrive in bursts" (Section 5) and the two-stage
compilation that absorbs them (Section 4.3.2). Producers call
:meth:`~ControlPlaneRuntime.submit_update` /
:meth:`~ControlPlaneRuntime.submit_policy`; events land in the bounded
prioritized :class:`~repro.runtime.queue.RuntimeQueue`; the loop drains
them in batches into the synchronous
:class:`~repro.core.controller.SdxController` underneath.

Two execution modes share every line of the drain path:

* **deterministic (step-driven)** — no thread; the caller drives
  :meth:`~ControlPlaneRuntime.step` / :meth:`~ControlPlaneRuntime.drain`
  / :meth:`~ControlPlaneRuntime.settle` explicitly against a
  :class:`~repro.runtime.clock.ManualClock`. This is what the
  verification oracle replays: same inputs, same batches, same final
  state, every run.
* **threaded** — :meth:`~ControlPlaneRuntime.start` spawns a worker that
  drains continuously; producers block only on the queue bound. This is
  what the soak driver runs.

Overload behaviour is the configured
:class:`~repro.runtime.events.OverloadPolicy`: ``block`` applies
backpressure to the producer, ``shed-oldest`` drops the oldest
lowest-priority event (counted in ``sdx_runtime_events_dropped_total``),
and ``degrade`` suspends participant policies under sustained saturation
— default-BGP-route-only forwarding is cheap to maintain per update —
then restores and recompiles them once the queue drains and stays calm
(hysteresis on both edges, so a hot burst cannot thrash the compiler
with restore/suspend cycles).

Each batch is processed inside the southbound engine's
:meth:`~repro.southbound.engine.SouthboundEngine.deferred` window, so a
batch's worth of FlowMods coalesces into one priority-safe flush. After
every batch the :class:`~repro.runtime.scheduler.RecompilationScheduler`
decides whether the background re-optimisation is due.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bgp.messages import Update
from repro.core.controller import SdxController
from repro.runtime.clock import Clock, MonotonicClock
from repro.runtime.events import (
    EventClass,
    OverloadPolicy,
    PolicyApply,
    RuntimeEvent,
    classify_update,
)
from repro.runtime.queue import DRAIN_ORDER, OfferOutcome, RuntimeQueue
from repro.runtime.scheduler import RecompilationScheduler, SchedulerConfig
from repro.telemetry.log import kv

logger = logging.getLogger("repro.runtime.loop")


@dataclass(frozen=True)
class RuntimeConfig:
    """Tunables for the control-plane runtime.

    ``max_queue_depth`` bounds pending events; ``overload_policy`` picks
    what happens at the bound. ``batch_size`` caps events per drain
    step. ``coalesce`` enables per-(participant, prefix) collapsing.
    ``degrade_high_fraction`` / ``degrade_low_fraction`` are the
    saturation/reset watermarks of degrade mode as fractions of the
    queue bound, and ``degrade_patience`` is symmetric hysteresis: how
    many consecutive saturated submissions are tolerated before
    policies are suspended, and how many consecutive calm drain steps
    (queue empty, no saturation) are required before they are restored.
    ``defer_southbound`` processes each batch inside one southbound
    flush window. ``poll_interval_seconds`` is the threaded worker's
    idle heartbeat (it also bounds how stale the idle-recompile check
    can get).
    """

    max_queue_depth: int = 1024
    overload_policy: OverloadPolicy = OverloadPolicy.BLOCK
    batch_size: int = 64
    coalesce: bool = True
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    degrade_high_fraction: float = 0.75
    degrade_low_fraction: float = 0.25
    degrade_patience: int = 16
    defer_southbound: bool = True
    poll_interval_seconds: float = 0.01


class ControlPlaneRuntime:
    """The event loop between event sources and the SDX controller."""

    def __init__(self, controller: SdxController,
                 config: Optional[RuntimeConfig] = None,
                 clock: Optional[Clock] = None):
        self.controller = controller
        self.config = config if config is not None else RuntimeConfig()
        self.clock = clock if clock is not None else MonotonicClock()
        self.queue = RuntimeQueue(self.config.max_queue_depth,
                                  coalesce=self.config.coalesce)
        self.scheduler = RecompilationScheduler(
            controller.engine, self.config.scheduler, self.clock)
        self.telemetry = controller.telemetry
        self._lock = threading.RLock()
        self._work = threading.Condition(self._lock)
        self._space = threading.Condition(self._lock)
        self._thread: Optional[threading.Thread] = None
        self._running = False
        self._seq = 0
        self._monitor = None
        self._monitoring_handlers: List[Callable[[object, SdxController], None]] = []
        self._saturated_offers = 0
        self._calm_steps = 0
        self._degrade_high = max(
            1, int(self.config.max_queue_depth * self.config.degrade_high_fraction))
        self._degrade_low = int(
            self.config.max_queue_depth * self.config.degrade_low_fraction)
        telemetry = self.telemetry
        self._event_counters = {
            cls: telemetry.counter(
                "sdx_runtime_events_total",
                "Events submitted to the runtime", **{"class": cls.label})
            for cls in DRAIN_ORDER}
        self._coalesced_counter = telemetry.counter(
            "sdx_runtime_coalesced_total",
            "Events absorbed by per-(participant, prefix) coalescing")
        self._dropped_counter = telemetry.counter(
            "sdx_runtime_events_dropped_total",
            "Events shed under overload (includes absorbed events)")
        self._processed_counter = telemetry.counter(
            "sdx_runtime_processed_total", "Events drained into the controller")
        self._batch_counter = telemetry.counter(
            "sdx_runtime_batches_total", "Drain batches processed")
        self._blocked_counter = telemetry.counter(
            "sdx_runtime_blocked_total",
            "Submissions that hit the queue bound under the block policy")
        self._depth_gauge = telemetry.gauge(
            "sdx_runtime_queue_depth", "Pending events right now")
        self._depth_histogram = telemetry.histogram(
            "sdx_runtime_queue_depth_samples",
            "Queue depth sampled at each submission")
        self._ingest_histogram = telemetry.histogram(
            "sdx_runtime_ingest_seconds",
            "Ingest-to-install latency (first enqueue to controller apply)")
        self._degraded_gauge = telemetry.gauge(
            "sdx_runtime_degraded", "1 while policies are suspended")
        self._degrade_counter = telemetry.counter(
            "sdx_runtime_degrade_entries_total",
            "Times sustained overload suspended policies")

    # ------------------------------------------------------------------
    # Ingress
    # ------------------------------------------------------------------

    def submit_update(self, update: Update) -> None:
        """Queue one BGP update for the controller.

        May coalesce into a pending event for the same (participant,
        prefix); may block, shed, or degrade when the queue is full.
        """
        kind = classify_update(update)
        self._submit(RuntimeEvent(
            kind=kind, seq=self._next_seq(),
            enqueued_wall=time.perf_counter(), update=update))

    def submit_policy(self, label: str, apply: PolicyApply) -> None:
        """Queue a policy change: ``apply(controller)`` runs at drain.

        Policy events outrank every BGP event in the queue and never
        coalesce.
        """
        self._submit(RuntimeEvent(
            kind=EventClass.POLICY, seq=self._next_seq(),
            enqueued_wall=time.perf_counter(), apply=apply, label=label))

    def submit_monitoring(self, observation: object, label: str = "") -> None:
        """Queue one data-plane observation for the monitoring handlers.

        Monitoring events drain after every routing event and are the
        first shed under overload; they never coalesce (each observation
        carries distinct measurements and the detectors rate-limit).
        """
        self._submit(RuntimeEvent(
            kind=EventClass.MONITORING, seq=self._next_seq(),
            enqueued_wall=time.perf_counter(), monitoring=observation,
            label=label or type(observation).__name__))

    def attach_monitor(self, monitor) -> None:
        """Poll ``monitor`` from the drain loop and queue what it emits.

        ``monitor`` needs one method — ``poll(now) -> iterable of
        observations`` — called with the runtime clock after every drain
        step (including idle heartbeats, so monitoring advances while
        the control plane is quiet). The monitor owns its cadence:
        ``poll`` returns nothing until a sampling interval has elapsed,
        which keeps :meth:`drain` terminating.
        """
        with self._lock:
            self._monitor = monitor

    def add_monitoring_handler(
            self, handler: Callable[[object, SdxController], None]) -> None:
        """Run ``handler(observation, controller)`` for every drained
        monitoring event — this is where reactive apps subscribe."""
        with self._lock:
            self._monitoring_handlers.append(handler)

    def _next_seq(self) -> int:
        with self._lock:
            self._seq += 1
            return self._seq

    def _submit(self, event: RuntimeEvent) -> None:
        with self._lock:
            self.scheduler.note_event()
            self._event_counters[event.kind].inc()
            while True:
                outcome = self.queue.offer(event)
                if outcome is not OfferOutcome.FULL:
                    break
                self._handle_full()
            if outcome is OfferOutcome.COALESCED:
                self._coalesced_counter.inc()
            depth = self.queue.depth
            self._depth_gauge.set(depth)
            self._depth_histogram.observe(depth)
            self._note_pressure(depth)
            self._work.notify()

    def _handle_full(self) -> None:
        """Apply the overload policy; returns once space (may) exist."""
        self._calm_steps = 0
        policy = self.config.overload_policy
        if policy is OverloadPolicy.SHED_OLDEST:
            shed = self.queue.shed_oldest()
            if shed is not None:
                self._dropped_counter.inc(1 + shed.absorbed)
                logger.warning("shed %s", kv(event=shed.describe(),
                                             absorbed=shed.absorbed))
                return
        if policy is OverloadPolicy.DEGRADE:
            # A full queue is saturation however the counter stood.
            self._saturated_offers = max(
                self._saturated_offers, self.config.degrade_patience)
            self._enter_degraded()
        # block (and the degrade policy's backpressure half)
        self._blocked_counter.inc()
        if self._running and threading.current_thread() is not self._thread:
            while self.queue.depth >= self.queue.max_depth and self._running:
                self._space.wait(timeout=self.config.poll_interval_seconds)
        else:
            # Deterministic mode (or the worker thread itself submitting):
            # drain one batch synchronously to make room.
            self._step_locked()

    def _note_pressure(self, depth: int) -> None:
        if self.config.overload_policy is not OverloadPolicy.DEGRADE:
            return
        if depth >= self._degrade_high:
            self._calm_steps = 0
            self._saturated_offers += 1
            if self._saturated_offers >= self.config.degrade_patience:
                self._enter_degraded()
        elif depth <= self._degrade_low:
            self._saturated_offers = 0

    # ------------------------------------------------------------------
    # Degrade mode
    # ------------------------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while overload has the controller's policies suspended."""
        return self.controller.policies_suspended

    def _enter_degraded(self) -> None:
        if self.controller.policies_suspended:
            return
        logger.warning("degrade enter %s", kv(
            depth=self.queue.depth, saturated=self._saturated_offers))
        self.controller.suspend_policies()
        self._degrade_counter.inc()
        self._degraded_gauge.set(1)

    def _maybe_recover(self, *, force: bool = False) -> None:
        if not self.controller.policies_suspended:
            return
        # Recover only after a sustained calm streak (the queue drained
        # and stayed unsaturated for ``degrade_patience`` consecutive
        # drain steps, mirroring the entry patience): every exit pays a
        # restore + recompile, and a mid-burst exit would thrash
        # straight back into degrade.
        if not force and (not self.queue.is_empty
                          or self._calm_steps < self.config.degrade_patience):
            return
        logger.info("degrade exit %s", kv(depth=self.queue.depth))
        self.controller.restore_policies()
        self._degraded_gauge.set(0)
        self._saturated_offers = 0
        self.scheduler.note_recompiled()

    # ------------------------------------------------------------------
    # Draining (shared by both modes)
    # ------------------------------------------------------------------

    def step(self, limit: Optional[int] = None) -> int:
        """Drain one batch (deterministic mode); returns events processed.

        After the batch, degrade recovery and the recompilation
        scheduler run — so stepping an empty queue can still trigger an
        idle-gap background recompilation.
        """
        with self._lock:
            return self._step_locked(limit)

    def drain(self) -> int:
        """Step until the queue is empty; returns events processed."""
        total = 0
        with self._lock:
            while not self.queue.is_empty:
                total += self._step_locked()
        return total

    def settle(self) -> int:
        """Drain fully, restore degraded policies, finish recompilation.

        After this returns the controller is in the same steady state a
        patient inline driver would have reached: queue empty, policies
        active, fast-path debt swapped away. Returns events processed.
        """
        processed = self.drain()
        with self._lock:
            self._maybe_recover(force=True)
            if self.controller.engine.dirty:
                self._recompile("settle")
        return processed

    def _step_locked(self, limit: Optional[int] = None) -> int:
        batch = self.queue.pop(limit if limit is not None
                               else self.config.batch_size)
        if batch:
            self._process_batch(batch)
        if self.queue.is_empty:
            self._calm_steps += 1
        self._maybe_recover()
        trigger = self.scheduler.due(queue_empty=self.queue.is_empty)
        if trigger is not None:
            self._recompile(trigger)
        self._poll_monitor()
        return len(batch)

    def _poll_monitor(self) -> None:
        if self._monitor is None:
            return
        for observation in self._monitor.poll(self.clock.now()):
            self.submit_monitoring(observation)

    def _process_batch(self, batch: List[RuntimeEvent]) -> None:
        with self.telemetry.span("runtime.step", events=len(batch)):
            if self.config.defer_southbound:
                with self.controller.southbound.deferred():
                    for event in batch:
                        self._process_event(event)
            else:
                for event in batch:
                    self._process_event(event)
        self._batch_counter.inc()
        self._processed_counter.inc(len(batch))
        self._depth_gauge.set(self.queue.depth)
        self._space.notify_all()

    def _process_event(self, event: RuntimeEvent) -> None:
        if event.update is not None:
            self.controller.submit_update(event.update)
        elif event.apply is not None:
            event.apply(self.controller)
        elif event.monitoring is not None:
            for handler in self._monitoring_handlers:
                handler(event.monitoring, self.controller)
        self._ingest_histogram.observe(
            time.perf_counter() - event.enqueued_wall)

    def _recompile(self, trigger: str) -> None:
        with self.telemetry.span("runtime.recompile", trigger=trigger):
            result = self.controller.run_background_recompilation()
        if result is not None:
            self.telemetry.counter(
                "sdx_runtime_recompiles_total",
                "Background recompilations by trigger", trigger=trigger).inc()
            self.scheduler.note_recompiled()
            logger.info("recompile %s", kv(trigger=trigger,
                                           seconds=result.total_seconds))

    # ------------------------------------------------------------------
    # Threaded mode
    # ------------------------------------------------------------------

    @property
    def is_running(self) -> bool:
        """True while the worker thread is draining."""
        return self._running

    def start(self) -> None:
        """Spawn the worker thread (threaded mode)."""
        with self._lock:
            if self._running:
                raise RuntimeError("runtime already started")
            self._running = True
        self._thread = threading.Thread(
            target=self._run, name="sdx-runtime", daemon=True)
        self._thread.start()

    def stop(self, *, settle: bool = True) -> None:
        """Stop the worker thread; by default :meth:`settle` afterwards
        (on the calling thread) so no submitted event is lost."""
        with self._lock:
            self._running = False
            self._work.notify_all()
            self._space.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        if settle:
            self.settle()

    def _run(self) -> None:
        with self._lock:
            while self._running:
                if self.queue.is_empty:
                    self._work.wait(timeout=self.config.poll_interval_seconds)
                    if not self._running:
                        break
                    if self.queue.is_empty:
                        # Idle heartbeat: recovery + idle-gap recompile.
                        self._step_locked()
                        continue
                self._step_locked()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """A snapshot of the runtime's counters for reports and tests."""
        with self._lock:
            submitted = {cls.label: self._event_counters[cls].value
                         for cls in DRAIN_ORDER}
            total = sum(submitted.values())
            coalesced = self._coalesced_counter.value
            return {
                "submitted": submitted,
                "submitted_total": total,
                "coalesced": coalesced,
                "coalescing_ratio": (coalesced / total) if total else 0.0,
                "dropped": self._dropped_counter.value,
                "processed": self._processed_counter.value,
                "batches": self._batch_counter.value,
                "blocked": self._blocked_counter.value,
                "queue_depth": self.queue.depth,
                "queue_depth_percentiles":
                    self._depth_histogram.percentiles(),
                "ingest_seconds": self._ingest_histogram.percentiles(),
                "degrade_entries": self._degrade_counter.value,
                "degraded": self.degraded,
            }

    def __repr__(self) -> str:
        mode = "threaded" if self._running else "step-driven"
        return (f"ControlPlaneRuntime({mode}, depth={self.queue.depth}, "
                f"policy={self.config.overload_policy.value})")
