"""Tests for the chaos fault-injection subsystem."""
