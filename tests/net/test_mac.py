"""Unit tests for MAC addresses and the VMAC tag encoding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import AddressError
from repro.net.mac import (
    BROADCAST_MAC,
    VMAC_CAPACITY,
    VMAC_OUI,
    MacAddress,
    fec_for_vmac,
    vmac_for_fec,
)


class TestMacAddress:
    def test_parses_text(self):
        assert int(MacAddress("00:11:22:33:44:55")) == 0x001122334455

    def test_round_trips_text(self):
        assert str(MacAddress("aa:bb:cc:dd:ee:ff")) == "aa:bb:cc:dd:ee:ff"

    def test_accepts_integer_and_copy(self):
        mac = MacAddress(0x001122334455)
        assert MacAddress(mac) == mac

    @pytest.mark.parametrize("bad", ["001122334455", "00:11:22:33:44", "zz:11:22:33:44:55", ""])
    def test_rejects_malformed_text(self, bad):
        with pytest.raises(AddressError):
            MacAddress(bad)

    @pytest.mark.parametrize("bad", [-1, 1 << 48])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(AddressError):
            MacAddress(bad)

    def test_rejects_other_types(self):
        with pytest.raises(AddressError):
            MacAddress(3.14)

    def test_oui(self):
        assert MacAddress("a2:00:00:12:34:56").oui == 0xA20000

    def test_broadcast(self):
        assert BROADCAST_MAC.is_broadcast
        assert not MacAddress(0).is_broadcast

    def test_ordering_and_hash(self):
        assert MacAddress(1) < MacAddress(2)
        assert len({MacAddress(5), MacAddress(5)}) == 1

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_text_round_trip_property(self, value):
        assert int(MacAddress(str(MacAddress(value)))) == value


class TestVmacEncoding:
    def test_vmac_is_virtual(self):
        assert vmac_for_fec(0).is_virtual
        assert vmac_for_fec(0).oui == VMAC_OUI

    def test_physical_mac_is_not_virtual(self):
        assert not MacAddress("00:11:22:33:44:55").is_virtual

    def test_round_trip(self):
        for fec_id in (0, 1, 255, VMAC_CAPACITY - 1):
            assert fec_for_vmac(vmac_for_fec(fec_id)) == fec_id

    def test_rejects_out_of_range_fec(self):
        with pytest.raises(AddressError):
            vmac_for_fec(VMAC_CAPACITY)
        with pytest.raises(AddressError):
            vmac_for_fec(-1)

    def test_rejects_decoding_physical_mac(self):
        with pytest.raises(AddressError):
            fec_for_vmac(MacAddress("00:11:22:33:44:55"))

    @given(st.integers(min_value=0, max_value=VMAC_CAPACITY - 1))
    def test_round_trip_property(self, fec_id):
        assert fec_for_vmac(vmac_for_fec(fec_id)) == fec_id
