"""BGP UPDATE messages exchanged between participants and the route server.

One :class:`Update` may carry several announcements and withdrawals, the
way real UPDATE messages pack NLRI; the route server applies them in
withdrawals-then-announcements order (an announcement of a prefix in the
same message implicitly replaces the withdrawal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.bgp.attributes import RouteAttributes
from repro.net.addresses import IPv4Prefix


@dataclass(frozen=True)
class Announcement:
    """Advertise reachability of ``prefix`` with the given attributes."""

    prefix: IPv4Prefix
    attributes: RouteAttributes

    def __repr__(self) -> str:
        return f"Announcement({self.prefix} via {self.attributes.next_hop})"


@dataclass(frozen=True)
class Withdrawal:
    """Withdraw a previously announced prefix."""

    prefix: IPv4Prefix

    def __repr__(self) -> str:
        return f"Withdrawal({self.prefix})"


@dataclass(frozen=True)
class Update:
    """One BGP UPDATE: withdrawals plus announcements from one sender."""

    sender: str
    announcements: Tuple[Announcement, ...] = field(default_factory=tuple)
    withdrawals: Tuple[Withdrawal, ...] = field(default_factory=tuple)

    @classmethod
    def announce(cls, sender: str, prefix: IPv4Prefix,
                 attributes: RouteAttributes) -> "Update":
        """A single-announcement update."""
        return cls(sender=sender, announcements=(Announcement(prefix, attributes),))

    @classmethod
    def withdraw(cls, sender: str, prefix: IPv4Prefix) -> "Update":
        """A single-withdrawal update."""
        return cls(sender=sender, withdrawals=(Withdrawal(prefix),))

    @property
    def prefixes(self) -> Tuple[IPv4Prefix, ...]:
        """Every prefix touched by this update."""
        return tuple(w.prefix for w in self.withdrawals) + tuple(
            a.prefix for a in self.announcements)

    def __repr__(self) -> str:
        return (f"Update(from={self.sender}, +{len(self.announcements)}"
                f"/-{len(self.withdrawals)})")
