"""Tests for the SDX compiler on the paper's Figure 1 scenario."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.policy.strategies import packets, predicates

from repro.core.compiler import REDUCTION_LIMIT, compile_clause_rules
from repro.exceptions import CompilationError
from repro.net.packet import Packet
from repro.policy.classifier import Action, Classifier, Rule
from repro.policy.headerspace import WILDCARD, HeaderSpace
from repro.policy.policies import fwd, match, modify

from tests.core.scenarios import P1, P2, P3, P4, P5, figure1_controller, packet


class TestCompileClauseRules:
    def test_positive_predicate(self):
        rules = compile_clause_rules(
            match(dstport=80), (Action(port=2),), None)
        assert len(rules) == 1
        assert rules[0].actions == (Action(port=2),)

    def test_unsatisfiable_predicate_gives_no_rules(self):
        pred = match(dstport=80) & match(dstport=443)
        assert compile_clause_rules(pred, (Action(port=2),), None) == []

    def test_trailing_drops_removed(self):
        rules = compile_clause_rules(match(dstport=80), (Action(port=2),), None)
        assert all(not rule.is_drop for rule in rules)

    def test_negation_mask_kept_without_fallback(self):
        pred = match(dstport=80) & ~match(srcport=22)
        rules = compile_clause_rules(pred, (Action(port=2),), None)
        # Mask for (dstport=80, srcport=22) must precede the action rule.
        assert rules[0].is_drop
        assert rules[-1].actions == (Action(port=2),)

    def test_negation_mask_expands_against_fallback(self):
        pred = match(dstport=80) & ~match(srcport=22)
        fallback = fwd(9).compile()
        rules = compile_clause_rules(pred, (Action(port=2),), fallback)
        classifier = Classifier(rules + [Rule(WILDCARD, ())])
        masked = Packet(port=1, dstport=80, srcport=22)
        assert classifier.eval(masked) == {masked.at_port(9)}
        plain = Packet(port=1, dstport=80, srcport=443)
        assert classifier.eval(plain) == {plain.at_port(2)}


class TestClauseStackSemantics:
    """Property: a stack of compiled clauses behaves exactly like
    "first clause whose predicate holds wins, otherwise fall through"."""

    @settings(max_examples=80, deadline=None)
    @given(st.lists(predicates(max_depth=3), min_size=1, max_size=4),
           packets())
    def test_stacked_clauses_first_match_property(self, preds, pkt):
        from repro.core.compiler import compile_guarded_clauses
        from repro.core.composition import stack_fallback
        fallback = fwd(99).compile()
        stacked = stack_fallback([
            compile_guarded_clauses(
                [(predicate, (Action(port=100 + index),))
                 for index, predicate in enumerate(preds)],
                fallback),
            fallback,
        ])
        expected_port = 99
        for index, predicate in enumerate(preds):
            if predicate.holds(pkt):
                expected_port = 100 + index
                break
        result = stacked.eval(pkt)
        assert result == {pkt.at_port(expected_port)}


class TestFigure1Compilation:
    def test_compiles_and_reports(self):
        sdx, *_ = figure1_controller()
        result = sdx.start()
        assert result.flow_rule_count > 0
        assert result.prefix_group_count >= 2
        assert result.total_seconds > 0
        assert set(result.timings) >= {
            "fec", "vnh", "defaults", "outbound", "inbound", "composition"}

    def test_web_traffic_to_b_when_eligible(self):
        """A's port-80 policy sends p1..p3 via B, but not p4 (Figure 1b)."""
        sdx, *_ = figure1_controller()
        sdx.start()
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "B"
        assert sdx.egress_of("A", packet("12.0.0.1", dstport=80)) == "B"
        assert sdx.egress_of("A", packet("13.0.0.1", dstport=80)) == "B"
        # p4 is only announced by C: web policy via B must not apply.
        assert sdx.egress_of("A", packet("14.0.0.1", dstport=80)) == "C"

    def test_https_traffic_to_c(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        for dstip in ("11.0.0.1", "12.0.0.1", "13.0.0.1", "14.0.0.1"):
            assert sdx.egress_of("A", packet(dstip, dstport=443)) == "C"

    def test_default_traffic_follows_best_route(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        # Best routes: C for p1/p2/p4 (shorter paths), B for p3.
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=22)) == "C"
        assert sdx.egress_of("A", packet("12.0.0.1", dstport=22)) == "C"
        assert sdx.egress_of("A", packet("13.0.0.1", dstport=22)) == "B"
        assert sdx.egress_of("A", packet("14.0.0.1", dstport=22)) == "C"

    def test_untouched_prefix_uses_real_next_hop(self):
        """p5 keeps its real next hop: no VNH is advertised for it."""
        sdx, *_ = figure1_controller()
        sdx.start()
        assert sdx.allocator.next_hop_for_prefix(P5) is None
        assert sdx.egress_of("A", packet("15.0.0.1", dstport=22)) == "E"
        assert sdx.egress_of("A", packet("15.0.0.1", dstport=80)) == "E"

    def test_inbound_te_selects_b_port(self):
        """B's inbound policy splits by source halves (Figure 1a)."""
        sdx, a, b, *_ = figure1_controller()
        sdx.start()
        low = packet("13.0.0.1", dstport=22, srcip="10.0.0.1")
        high = packet("13.0.0.1", dstport=22, srcip="200.0.0.1")
        low_delivery = sdx.send("A", low)[0]
        high_delivery = sdx.send("A", high)[0]
        assert low_delivery.switch_port == b.port(0)
        assert high_delivery.switch_port == b.port(1)
        assert low_delivery.accepted and high_delivery.accepted

    def test_delivered_packets_carry_real_macs(self):
        """Egress frames carry the destination router's interface MAC —
        the rewrite without which "AS B would drop the traffic"."""
        sdx, a, b, *_ = figure1_controller()
        sdx.start()
        delivery = sdx.send("A", packet("13.0.0.1", dstport=80))[0]
        macs = {port.mac for port in b.participant.router.ports}
        assert delivery.packet["dstmac"] in macs

    def test_traffic_between_non_policy_participants(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        assert sdx.egress_of("C", packet("15.0.0.1")) == "E"
        assert sdx.egress_of("E", packet("14.0.0.1")) == "C"

    def test_no_route_traffic_dropped(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        assert sdx.egress_of("A", packet("99.0.0.1")) is None

    def test_every_flow_rule_outputs_physical_port_or_drops(self):
        """The paper's invariant: packets reach a physical port or die."""
        sdx, *_ = figure1_controller()
        result = sdx.start()
        physical = set(sdx.topology.physical_ports())
        for rule in result.classifier.rules:
            for action in rule.actions:
                port = action.output_port
                assert port is not None
                assert port in physical


class TestCompilerModes:
    @pytest.mark.parametrize("use_vnh", [True, False])
    @pytest.mark.parametrize("optimized", [True, False])
    def test_all_modes_agree_on_forwarding(self, use_vnh, optimized):
        sdx, *_ = figure1_controller(use_vnh=use_vnh, optimized=optimized)
        sdx.start()
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "B"
        assert sdx.egress_of("A", packet("14.0.0.1", dstport=80)) == "C"
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=22)) == "C"
        assert sdx.egress_of("A", packet("13.0.0.1", dstport=22)) == "B"

    def test_naive_vnh_off_has_prefix_rules(self):
        """Without VNH grouping, eligibility is matched per dstip prefix."""
        sdx, *_ = figure1_controller(use_vnh=False)
        result = sdx.start()
        assert any(
            "dstip" in rule.match for rule in result.classifier.rules)
        assert sdx.allocator.assignments == 0

    def test_optimized_examines_fewer_pairs(self):
        sdx_opt, *_ = figure1_controller(optimized=True)
        sdx_naive, *_ = figure1_controller(optimized=False)
        opt = sdx_opt.start().report.stats.rule_pairs_examined
        naive = sdx_naive.start().report.stats.rule_pairs_examined
        assert opt < naive

    def test_inbound_cache_reused(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        cache_before = dict(sdx.compiler._inbound_cache)
        sdx.recompile()
        for name, (generation, classifier) in cache_before.items():
            assert sdx.compiler._inbound_cache[name][1] is classifier
