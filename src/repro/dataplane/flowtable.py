"""A priority flow table with OpenFlow-like first-match semantics.

Rules are kept sorted by descending priority (insertion order breaks
ties, matching OpenFlow's undefined-but-stable behaviour in practice).
Per-rule packet counters support the rule-utilisation measurements in the
benchmark harness.

Mutation comes in two granularities: whole-rule installation/removal, and
:meth:`FlowTable.apply_delta` — the switch-side half of the southbound
flow-update engine, executing add/modify/delete FlowMods keyed by
``(priority, match)``. Delta application leaves untouched rules' objects
(and therefore their packet counters) alone, which is what makes update
cost measurable across recompiles.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort_right
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.net.packet import Packet
from repro.policy.classifier import Classifier
from repro.policy.flowrules import FlowRule, render_flow_table, to_flow_rules
from repro.southbound.diff import (
    Delta,
    FlowMod,
    FlowModOp,
    RuleKey,
    compute_delta,
    rule_key,
)


class FlowTable:
    """An installed set of flow rules plus match counters."""

    def __init__(self) -> None:
        self._rules: List[FlowRule] = []
        self._counters: Dict[int, int] = {}
        # First-instance-wins index: key -> installed rules with that key,
        # in table order (duplicates are legal but shadowed).
        self._by_key: Dict[RuleKey, List[FlowRule]] = {}
        self._generation = 0
        # Telemetry handles, absent until bind_telemetry() is called:
        # standalone tables (property tests, ad-hoc scripts) pay one
        # None-check per operation and record nothing.
        self._rules_gauge = None
        self._mod_counters: Dict[FlowModOp, object] = {}
        self._packets_counter = None
        self._misses_counter = None

    def bind_telemetry(self, telemetry) -> None:
        """Record table activity into ``telemetry``'s registry.

        Registers the ``sdx_flowtable_*`` families: a rule-count gauge,
        per-op FlowMod counters, processed-packet counts, and the
        table-miss (dropped traffic) loss counter.
        """
        registry = telemetry.registry
        self._rules_gauge = registry.gauge(
            "sdx_flowtable_rules", "Rules currently installed")
        self._mod_counters = {
            op: registry.counter("sdx_flowtable_mods_total",
                                 "FlowMods executed by the table",
                                 op=op.name.lower())
            for op in FlowModOp
        }
        self._packets_counter = registry.counter(
            "sdx_flowtable_packets_total", "Packets run through the table")
        self._misses_counter = registry.counter(
            "sdx_flowtable_misses_total",
            "Packets dropped by a table miss (no rule matched)")
        self._rules_gauge.set(len(self._rules))

    def _note_size(self) -> None:
        if self._rules_gauge is not None:
            self._rules_gauge.set(len(self._rules))

    def install(self, rule: FlowRule) -> None:
        """Add one rule, keeping priority order."""
        insort_right(self._rules, rule, key=lambda r: -r.priority)
        self._by_key.setdefault(rule_key(rule), []).append(rule)
        self._counters[id(rule)] = 0
        self._generation += 1
        self._note_size()

    def install_many(self, rules: Iterable[FlowRule]) -> int:
        """Install several rules; returns how many were added."""
        count = 0
        for rule in rules:
            self.install(rule)
            count += 1
        return count

    def install_classifier(self, classifier: Classifier,
                           base_priority: int = 0) -> int:
        """Install a compiled classifier at ``base_priority``."""
        return self.install_many(to_flow_rules(classifier, base_priority))

    def remove_where(self, predicate) -> int:
        """Remove every rule for which ``predicate(rule)`` is true."""
        keep = [rule for rule in self._rules if not predicate(rule)]
        removed = len(self._rules) - len(keep)
        if removed:
            removed_ids = {id(rule) for rule in self._rules} - {id(rule) for rule in keep}
            for rule_id in removed_ids:
                self._counters.pop(rule_id, None)
            self._rules = keep
            self._reindex()
            self._generation += 1
            self._note_size()
        return removed

    def clear(self) -> None:
        """Remove every rule."""
        self._rules.clear()
        self._counters.clear()
        self._by_key.clear()
        self._generation += 1
        self._note_size()

    def replace_with(self, classifier: Classifier, base_priority: int = 0) -> int:
        """Swap the table for a compiled classifier, via a minimal delta.

        Rules shared verbatim between the old and new tables are not
        touched, so their packet counters survive the swap; everything
        else is added, modified, or deleted. Returns the number of rules
        the classifier compiles to (the resulting table size, matching
        the historical clear-and-reinstall return value).
        """
        target = to_flow_rules(classifier, base_priority)
        self.apply_delta(compute_delta(self._rules, target))
        return len(target)

    def _reindex(self) -> None:
        self._by_key = {}
        for rule in self._rules:
            self._by_key.setdefault(rule_key(rule), []).append(rule)

    # ------------------------------------------------------------------
    # FlowMod application (the southbound engine's switch-side half)
    # ------------------------------------------------------------------

    def rule_for_key(self, priority: int, match) -> Optional[FlowRule]:
        """The live (first-installed) rule at ``(priority, match)``, if any."""
        instances = self._by_key.get((priority, match))
        return instances[0] if instances else None

    def _band(self, priority: int) -> Tuple[int, int]:
        """The index range of rules at exactly ``priority``."""
        lo = bisect_left(self._rules, -priority, key=lambda r: -r.priority)
        hi = bisect_right(self._rules, -priority, key=lambda r: -r.priority)
        return lo, hi

    def _remove_instances(self, key: RuleKey) -> Optional[FlowRule]:
        """Drop every rule with ``key``; returns the first (live) instance."""
        instances = self._by_key.pop(key, None)
        if not instances:
            return None
        doomed = {id(rule) for rule in instances}
        lo, hi = self._band(key[0])
        self._rules[lo:hi] = [
            rule for rule in self._rules[lo:hi] if id(rule) not in doomed]
        for rule_id in doomed:
            self._counters.pop(rule_id, None)
        return instances[0]

    def apply_mod(self, mod: FlowMod) -> None:
        """Execute one FlowMod.

        * ``ADD`` — install; if the key already exists, behaves as modify
          (OpenFlow's add-with-overlap semantics for an exact key).
        * ``MODIFY`` — rewrite the key's actions in place, preserving its
          packet counter; collapses shadowed duplicate instances; installs
          if the key is absent.
        * ``DELETE`` — remove every instance of the key.
        """
        key = mod.key
        counter = self._mod_counters.get(mod.op)
        if counter is not None:
            counter.inc()
        if mod.op is FlowModOp.DELETE:
            self._remove_instances(key)
            self._generation += 1
            self._note_size()
            return
        previous = self._by_key.get(key)
        if previous is None:
            rule = mod.rule
            insort_right(self._rules, rule, key=lambda r: -r.priority)
            self._by_key[key] = [rule]
            self._counters[id(rule)] = 0
            self._generation += 1
            self._note_size()
            return
        live = previous[0]
        if live.actions == mod.actions and len(previous) == 1:
            return  # idempotent modify: leave the rule (and counter) alone
        replacement = mod.rule
        lo, hi = self._band(key[0])
        position = next(
            index for index in range(lo, hi)
            if self._rules[index] is live)
        count = self._counters.pop(id(live), 0)
        doomed = {id(rule) for rule in previous[1:]}
        self._rules[position] = replacement
        if doomed:
            self._rules[lo:hi] = [
                rule for rule in self._rules[lo:hi] if id(rule) not in doomed]
            for rule_id in doomed:
                self._counters.pop(rule_id, None)
        self._by_key[key] = [replacement]
        self._counters[id(replacement)] = count
        self._generation += 1
        self._note_size()

    def apply_delta(self, delta: Union[Delta, Iterable[FlowMod]]) -> int:
        """Apply a delta (or any FlowMod sequence) in order; returns mods applied.

        Callers that expose intermediate states (the southbound engine's
        batches) are expected to pre-order mods with
        :func:`repro.southbound.engine.schedule_two_phase`.
        """
        mods = delta.mods if isinstance(delta, Delta) else tuple(delta)
        for mod in mods:
            self.apply_mod(mod)
        return len(mods)

    @property
    def rules(self) -> Tuple[FlowRule, ...]:
        """Installed rules, highest priority first."""
        return tuple(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    @property
    def generation(self) -> int:
        """Bumped on every table mutation (used to detect staleness)."""
        return self._generation

    def lookup(self, packet: Packet) -> Optional[FlowRule]:
        """The highest-priority rule matching ``packet``, if any."""
        for rule in self._rules:
            if rule.match.matches(packet):
                return rule
        return None

    def process(self, packet: Packet) -> Tuple[Packet, ...]:
        """Apply the table to ``packet``; empty tuple means dropped.

        A table miss also drops (OpenFlow default for SDX: the controller
        installs explicit defaults, so misses indicate unmatched traffic).
        """
        if self._packets_counter is not None:
            self._packets_counter.inc()
        rule = self.lookup(packet)
        if rule is None:
            if self._misses_counter is not None:
                self._misses_counter.inc()
            return ()
        self._counters[id(rule)] += 1
        return tuple(action.apply(packet) for action in rule.actions)

    def packets_matched(self, rule: FlowRule) -> int:
        """How many packets have hit ``rule`` since installation."""
        return self._counters.get(id(rule), 0)

    def render(self) -> str:
        """The table as ``ovs-ofctl``-style text."""
        return render_flow_table(self._rules)

    def __repr__(self) -> str:
        return f"FlowTable({len(self._rules)} rules)"
