"""Tests for the coalescing update queue (repro.southbound.queue)."""

import pytest

from repro.policy.classifier import Action
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import HeaderSpace
from repro.southbound.diff import FlowMod, FlowModOp
from repro.southbound.queue import UpdateQueue


def rule(priority, actions=(), **constraints):
    return FlowRule(priority=priority, match=HeaderSpace(**constraints),
                    actions=actions)


FWD1 = (Action(port=1),)
FWD2 = (Action(port=2),)
WEB = rule(5, FWD1, dstport=80)
WEB2 = rule(5, FWD2, dstport=80)
SSH = rule(3, FWD2, dstport=22)


class TestCoalescing:
    def test_distinct_keys_queue_in_order(self):
        queue = UpdateQueue()
        queue.enqueue(FlowMod.add(WEB))
        queue.enqueue(FlowMod.add(SSH))
        assert [m.key for m in queue.drain()] == [(5, WEB.match), (3, SSH.match)]

    def test_add_then_modify_stays_add(self):
        queue = UpdateQueue()
        queue.enqueue(FlowMod.add(WEB))
        queue.enqueue(FlowMod.modify(WEB2))
        (mod,) = queue.drain()
        assert mod.op is FlowModOp.ADD
        assert mod.actions == FWD2
        assert queue.coalesced == 1

    def test_add_then_delete_annihilates(self):
        queue = UpdateQueue()
        queue.enqueue(FlowMod.add(WEB))
        queue.enqueue(FlowMod.delete(WEB))
        assert queue.drain() == []
        assert queue.coalesced == 2

    def test_modify_then_delete_is_delete(self):
        queue = UpdateQueue()
        queue.enqueue(FlowMod.modify(WEB2))
        queue.enqueue(FlowMod.delete(WEB))
        (mod,) = queue.drain()
        assert mod.op is FlowModOp.DELETE

    def test_delete_then_add_is_modify(self):
        queue = UpdateQueue()
        queue.enqueue(FlowMod.delete(WEB))
        queue.enqueue(FlowMod.add(WEB2))
        (mod,) = queue.drain()
        assert mod.op is FlowModOp.MODIFY
        assert mod.actions == FWD2

    def test_latest_modify_wins(self):
        queue = UpdateQueue()
        queue.enqueue(FlowMod.modify(WEB))
        queue.enqueue(FlowMod.modify(WEB2))
        (mod,) = queue.drain()
        assert mod.op is FlowModOp.MODIFY
        assert mod.actions == FWD2

    def test_enqueued_counts_every_submission(self):
        queue = UpdateQueue()
        queue.enqueue_many([FlowMod.add(WEB), FlowMod.delete(WEB),
                            FlowMod.add(SSH)])
        assert queue.enqueued == 3
        assert len(queue) == 1


class TestBackpressure:
    def test_needs_flush_beyond_max_pending(self):
        queue = UpdateQueue(max_pending=2)
        queue.enqueue(FlowMod.add(WEB))
        assert not queue.needs_flush
        queue.enqueue(FlowMod.add(SSH))
        assert queue.needs_flush
        queue.drain()
        assert not queue.needs_flush

    def test_coalesced_keys_do_not_trip_backpressure(self):
        queue = UpdateQueue(max_pending=2)
        queue.enqueue(FlowMod.add(WEB))
        queue.enqueue(FlowMod.modify(WEB2))
        queue.enqueue(FlowMod.add(WEB))
        assert not queue.needs_flush

    def test_max_pending_must_be_positive(self):
        with pytest.raises(ValueError):
            UpdateQueue(max_pending=0)
