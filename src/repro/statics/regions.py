"""Header-space regions of policy clauses, and the BGP-refined variant.

The analyzer reasons about a clause through its *positive region set*:
the identity-rule matches of the compiled predicate. For the conjunctive
clause fragment (matches, prefix/value sets, and/or) the union of those
spaces is the exact match set; negation makes it an over-approximation
(``exact=False``), and dynamic RIB predicates have no static region at
all (``dynamic=True``).

For outbound ``fwd(peer)`` clauses, the region that actually reaches the
fabric is further refined by the BGP-consistency filter of Section 4.1:
the clause only forwards destinations inside prefixes the peer announced
*and* exports to the sender. :func:`effective_regions` computes that
refinement — one region per (clause region, eligible prefix) pair,
exactly mirroring how both the production compiler and the reference
interpreter expand clauses, which is what makes dead-clause verdicts
checkable against the reference interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.bgp.routeserver import RouteServer
from repro.core.clauses import Clause
from repro.policy.headerspace import HeaderSpace
from repro.policy.policies import Negation, Policy, Predicate


def contains_negation(predicate: Predicate) -> bool:
    """True if any node of the predicate tree is a negation."""
    stack: List[Policy] = [predicate]
    while stack:
        node = stack.pop()
        if isinstance(node, Negation):
            return True
        stack.extend(node.children())
    return False


def positive_regions(predicate: Predicate) -> Tuple[HeaderSpace, ...]:
    """The identity-rule matches of the compiled predicate.

    Exact for negation-free predicates; an over-approximation of the
    match set otherwise (the negative masks are ignored).
    """
    classifier = predicate.compile()
    return tuple(rule.match for rule in classifier.rules if rule.is_identity)


@dataclass(frozen=True)
class ClauseRegions:
    """The static match-region summary of one clause."""

    clause: Clause
    regions: Tuple[HeaderSpace, ...]
    exact: bool
    dynamic: bool

    @property
    def has_static_region(self) -> bool:
        """True when the clause has a non-empty static region set."""
        return bool(self.regions) and not self.dynamic


def clause_regions(clause: Clause) -> ClauseRegions:
    """Region summary for one clause (empty region set when dynamic)."""
    from repro.core.dynamic import contains_dynamic

    if contains_dynamic(clause.predicate):
        return ClauseRegions(clause=clause, regions=(), exact=False, dynamic=True)
    return ClauseRegions(
        clause=clause,
        regions=positive_regions(clause.predicate),
        exact=not contains_negation(clause.predicate),
        dynamic=False)


def effective_regions(info: ClauseRegions, sender: str,
                      route_server: RouteServer) -> Tuple[HeaderSpace, ...]:
    """The regions of a clause that survive the BGP join, for ``sender``.

    Drop clauses apply unconditionally, so their raw regions pass
    through. Forwarding clauses are refined per eligible prefix of the
    target — the same (clause, eligible prefix) expansion the reference
    interpreter installs — so an empty result means the BGP join erases
    the clause entirely (a route-less forward).

    Inbound clauses and clauses forwarding to a raw port are not subject
    to the join; their raw regions pass through unchanged.
    """
    clause = info.clause
    if info.dynamic:
        return ()
    if clause.drops or not isinstance(clause.target, str):
        return info.regions
    refined: List[HeaderSpace] = []
    for prefix in route_server.reachable_prefixes(sender, via=clause.target):
        for region in info.regions:
            narrowed = region.with_constraint("dstip", prefix)
            if narrowed is not None:
                refined.append(narrowed)
    return tuple(refined)


def first_intersection(left: Sequence[HeaderSpace],
                       right: Sequence[HeaderSpace]) -> Optional[HeaderSpace]:
    """The first non-empty pairwise intersection of two region sets."""
    for space_l in left:
        for space_r in right:
            merged = space_l.intersect(space_r)
            if merged is not None:
                return merged
    return None


def covering_region(space: HeaderSpace,
                    candidates: Sequence[HeaderSpace]) -> Optional[HeaderSpace]:
    """A candidate that single-handedly covers ``space``, if any.

    Single-cover is deliberately conservative: a region covered only by
    the *union* of several candidates is not reported. That keeps dead
    verdicts sound (no false positives) at the price of missing some
    unions — the fuzz cross-check relies on this direction.
    """
    for candidate in candidates:
        if candidate.covers(space):
            return candidate
    return None


#: Defaults used to concretise witness packets from regions; constrained
#: fields always override these.
WITNESS_DEFAULTS = {"port": 0}


def witness_packet(space: HeaderSpace):
    """A representative packet inside ``space`` for diagnostics."""
    return space.concretise(**WITNESS_DEFAULTS)
