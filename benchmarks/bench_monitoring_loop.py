"""Monitoring loop — estimation accuracy and reaction latency.

Drives both closed-loop scenarios end to end (traffic driver → flow
table byte counters → :class:`FlowStatsCollector` → detectors → runtime
monitoring events → reactive apps → statics-gated policy changes →
southbound FlowMods) on a manual clock and checks the subsystem's two
headline numbers:

* **accuracy** — the collector's per-FEC (skewed scenario) and per-port
  (shifting scenario) rate estimates must be within 5% of the driver's
  ground truth at the default 1 s cadence, and the accumulated per-FEC
  byte totals within 5% over the whole run (the budget absorbs the
  one-interval counter loss when a reaction rewrites rules);
* **reaction latency** — simulated seconds from the traffic shift (or
  surge) to the first corrective FlowMod batch hitting the table.

All reactive policy changes run through the strict statics gate. Both
results land in ``benchmarks/results/monitoring_loop.json`` alongside
the rendered table.
"""

from conftest import publish, publish_json

from repro.experiments.metrics import render_table
from repro.experiments.monitoring import (
    LoopConfig,
    run_shifting_loop,
    run_skewed_loop,
)

CONFIG = LoopConfig(duration=40.0, shift_time=10.0,
                    cadence_seconds=1.0, statics_mode="strict")
#: Runtime steps allowed between the shift and the corrective FlowMod.
CONVERGE_WITHIN_TICKS = 8


def _run_both():
    return run_shifting_loop(CONFIG), run_skewed_loop(CONFIG)


def test_monitoring_loop(benchmark):
    shifting, skewed = benchmark.pedantic(_run_both, rounds=1, iterations=1)

    def fmt(value, suffix=""):
        return "-" if value is None else f"{value:.2f}{suffix}"

    publish("monitoring_loop", render_table(
        ["scenario", "reaction s", "rate err %", "bytes err %", "action"],
        [["shifting", fmt(shifting.reaction_seconds),
          fmt(shifting.port_rate_error_pct), "-",
          f"{shifting.rebalances} rebalance(s), "
          f"imbalance {shifting.final_imbalance:.2f}"],
         ["skewed", fmt(skewed.reaction_seconds),
          fmt(skewed.fec_rate_error_pct), fmt(skewed.fec_bytes_error_pct),
          f"offloaded {', '.join(skewed.offloaded) or 'nothing'}"]]))
    publish_json("monitoring_loop", [shifting.to_dict(), skewed.to_dict()])

    # Accuracy: estimates within 5% of ground truth at default cadence.
    assert shifting.port_rate_error_pct <= 5.0
    assert skewed.fec_rate_error_pct <= 5.0
    assert skewed.fec_bytes_error_pct <= 5.0

    # Reaction: both loops close within the step budget, and the
    # balancer actually balances (trailing ground-truth share).
    assert shifting.converged(within_ticks=CONVERGE_WITHIN_TICKS)
    assert skewed.converged(within_ticks=CONVERGE_WITHIN_TICKS)
    assert shifting.rebalances >= 1
    assert skewed.offloaded == ("62.0.0.0/8",)

    # The loop really ran through the runtime's monitoring event class.
    assert shifting.runtime_submitted["monitoring"] >= 1
    assert skewed.runtime_submitted["monitoring"] >= 1
