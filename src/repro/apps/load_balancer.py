"""Wide-area server load balancing (Section 2, third application).

A content provider originates one anycast address at the SDX and
rewrites request destinations to backend replicas "in the middle of the
network", replacing DNS-based selection and its cache-staleness problems.
The balancer keeps per-client-prefix assignments, so updates preserve
connection affinity for unchanged clients (the property the paper cites
from Wang et al.).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.sdxpolicy import ParticipantHandle
from repro.exceptions import PolicyError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.policy.policies import Policy, fwd, match, modify


class WideAreaLoadBalancer:
    """An anycast load balancer operated by a (usually remote) participant.

    ``service`` is the advertised anycast address, ``via`` the physically
    present participant that carries traffic toward the backends, and
    ``default_backend`` where unmatched clients land.
    """

    def __init__(self, handle: ParticipantHandle, *,
                 service: IPv4Address, anycast_prefix: IPv4Prefix,
                 via: str, default_backend: IPv4Address):
        if not anycast_prefix.contains_address(service):
            raise PolicyError(
                f"service address {service} outside anycast prefix "
                f"{anycast_prefix}")
        self.handle = handle
        self.service = service
        self.anycast_prefix = anycast_prefix
        self.via = via
        self.default_backend = default_backend
        self._assignments: Dict[IPv4Prefix, IPv4Address] = {}
        self._installed: List[Policy] = []
        self._announced = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Install the initial policy set and announce the anycast prefix."""
        self._reinstall()
        self.handle.announce(self.anycast_prefix)
        self._announced = True

    def stop(self) -> None:
        """Withdraw the anycast prefix and remove every policy."""
        if self._announced:
            self.handle.withdraw(self.anycast_prefix)
            self._announced = False
        for policy in self._installed:
            self.handle.remove_inbound(policy)
        self._installed.clear()

    # ------------------------------------------------------------------
    # Balancing control
    # ------------------------------------------------------------------

    def assign(self, client_prefix: IPv4Prefix, backend: IPv4Address) -> None:
        """Pin ``client_prefix`` to ``backend`` and rebalance.

        Existing assignments for other client prefixes are untouched —
        their connections keep hitting the same replica (affinity).
        """
        self._assignments[client_prefix] = backend
        if self._announced or self._installed:
            self._reinstall()

    def unassign(self, client_prefix: IPv4Prefix) -> None:
        """Return ``client_prefix`` to the default backend."""
        self._assignments.pop(client_prefix, None)
        if self._announced or self._installed:
            self._reinstall()

    def assignments(self) -> Mapping[IPv4Prefix, IPv4Address]:
        """A copy of the current per-client-prefix backend map."""
        return dict(self._assignments)

    def _reinstall(self) -> None:
        for policy in self._installed:
            self.handle.remove_inbound(policy)
        self._installed.clear()
        service_match = match(dstip=self.service)
        # Specific client prefixes first (longest prefix first so nested
        # client blocks behave like routing would), then the default.
        ordered = sorted(self._assignments.items(),
                         key=lambda item: -item[0].length)
        for client_prefix, backend in ordered:
            policy = ((service_match & match(srcip=client_prefix))
                      >> modify(dstip=backend) >> fwd(self.via))
            self.handle.add_inbound(policy)
            self._installed.append(policy)
        default = (service_match >> modify(dstip=self.default_backend)
                   >> fwd(self.via))
        self.handle.add_inbound(default)
        self._installed.append(default)
