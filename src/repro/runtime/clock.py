"""Logical clocks for the control-plane runtime.

The runtime's *scheduling* decisions (idle-gap recompilation, degrade
recovery) depend on the passage of time, but wall-clock time makes those
decisions unreproducible under test. The runtime therefore reads time
through a :class:`Clock`: production and the threaded soak driver use
:class:`MonotonicClock`, while the deterministic step-driven mode and
the verification oracle use a :class:`ManualClock` advanced explicitly —
same code path, fully replayable decisions.

Latency *measurements* (ingest-to-install histograms) always use
``time.perf_counter`` directly: measured durations should be real even
when scheduling time is simulated.
"""

from __future__ import annotations

import time


class Clock:
    """The time source protocol the runtime schedules against."""

    def now(self) -> float:
        """The current time in seconds (monotonic, arbitrary epoch)."""
        raise NotImplementedError


class MonotonicClock(Clock):
    """Wall time via ``time.monotonic`` (threaded/production mode)."""

    def now(self) -> float:
        """The current ``time.monotonic`` reading."""
        return time.monotonic()


class ManualClock(Clock):
    """A clock that only moves when told to (deterministic mode)."""

    def __init__(self, start: float = 0.0):
        self._now = start

    def now(self) -> float:
        """The current simulated time."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new time."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        self._now += seconds
        return self._now

    def set(self, now: float) -> None:
        """Jump to absolute time ``now`` (must not move backwards)."""
        if now < self._now:
            raise ValueError(
                f"time cannot move backwards ({self._now} -> {now})")
        self._now = now

    def __repr__(self) -> str:
        return f"ManualClock(t={self._now:.3f})"
