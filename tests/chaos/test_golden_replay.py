"""The committed golden chaos artifact, replayed in CI.

``data/chaos-failure-seed12-faults1-chaos-equivalence-final.json`` was
produced by running the chaos driver with a deliberately lossy runtime
queue — one that swallows announcements of ``16.1.1.0/24`` from ``AS2``
— and shrinking the resulting failure. AS2 announces that prefix only
in the scenario's base state, never in the trace, so the loss can bite
only a *recovery storm*: the shrinker correctly reduced the run to an
empty trace plus a single ``peer_down`` fault whose end-of-run recovery
re-announces the prefix through the queue.

Committing the artifact locks three things at once:

* the artifact JSON format (an incompatible change breaks the load);
* the replay path — on the healthy tree the failure must NOT reproduce,
  under the re-injected defect it must reproduce *exactly*;
* the shrinker — the artifact is already minimal, so shrinking it again
  must be a fixpoint.
"""

import pathlib

import pytest

from repro.chaos import (
    ChaosArtifact,
    replay_chaos_artifact,
    shrink_chaos,
)
from repro.runtime.queue import OfferOutcome, RuntimeQueue
from repro.workloads.churn import ChaosFault

GOLDEN = (pathlib.Path(__file__).parent / "data" /
          "chaos-failure-seed12-faults1-chaos-equivalence-final.json")

#: The defect the artifact was recorded under (see lose_storm below).
LOST_PEER = "AS2"
LOST_PREFIX = "16.1.1.0/24"


def lose_storm(monkeypatch):
    """Re-inject the recorded defect: a runtime queue that silently
    swallows announcements of ``LOST_PREFIX`` from ``LOST_PEER``."""
    real_offer = RuntimeQueue.offer

    def lossy_offer(self, event):
        update = getattr(event, "update", None)
        if (update is not None and update.sender == LOST_PEER and any(
                str(announcement.prefix) == LOST_PREFIX
                for announcement in update.announcements)):
            return OfferOutcome.ENQUEUED  # lie: the event vanishes
        return real_offer(self, event)

    monkeypatch.setattr(RuntimeQueue, "offer", lossy_offer)


@pytest.fixture()
def artifact():
    return ChaosArtifact.load(GOLDEN)


class TestFormat:
    def test_round_trips_exactly(self, artifact):
        assert ChaosArtifact.from_json(artifact.to_json()) == artifact
        assert GOLDEN.read_text().strip() == artifact.to_json().strip()

    def test_file_name_is_deterministic(self, artifact):
        assert artifact.file_name() == GOLDEN.name

    def test_records_the_shrunk_shape(self, artifact):
        assert artifact.kind == "chaos-equivalence:final"
        assert len(artifact.scenario.trace) == 0
        assert artifact.schedule.faults == (ChaosFault(
            kind="peer_down", step=0, participants=(LOST_PEER,)),)
        assert artifact.original_trace_length == 12
        assert artifact.original_fault_count == 6
        assert LOST_PREFIX in artifact.detail

    def test_failure_property_matches_fields(self, artifact):
        failure = artifact.failure
        assert failure.kind == artifact.kind
        assert failure.step == artifact.step
        assert failure.detail == artifact.detail


class TestReplay:
    def test_clean_on_the_healthy_tree(self):
        assert replay_chaos_artifact(GOLDEN) is None

    def test_reproduces_exactly_under_the_defect(self, artifact,
                                                 monkeypatch):
        lose_storm(monkeypatch)
        failure = replay_chaos_artifact(GOLDEN)
        assert failure is not None
        assert failure.kind == artifact.kind
        assert failure.step == artifact.step
        assert failure.detail == artifact.detail

    def test_cli_replay_clean(self, capsys):
        from repro.__main__ import main

        assert main(["soak", "--chaos", "--replay", str(GOLDEN)]) == 0
        assert "no failure reproduced" in capsys.readouterr().out

    def test_cli_replay_reproduces_under_the_defect(self, capsys,
                                                    monkeypatch):
        from repro.__main__ import main

        lose_storm(monkeypatch)
        assert main(["soak", "--chaos", "--replay", str(GOLDEN)]) == 1
        assert "chaos-equivalence:final" in capsys.readouterr().out


class TestShrinkerLock:
    def test_golden_is_a_shrinker_fixpoint(self, artifact, monkeypatch):
        lose_storm(monkeypatch)
        scenario, schedule, failure, runs = shrink_chaos(
            artifact.scenario, artifact.schedule)
        # Already minimal: one confirming run plus one (failed) attempt
        # to drop the only fault, no trace steps left to try.
        assert runs == 2
        assert scenario == artifact.scenario
        assert schedule == artifact.schedule
        assert failure.kind == artifact.kind
