"""Tests for the closed-loop experiment harness (experiments.monitoring)."""

import pytest

from repro.experiments.monitoring import (
    LoopConfig,
    run_shifting_loop,
    run_skewed_loop,
)

SHORT = LoopConfig(duration=20.0, shift_time=5.0)


class TestShiftingLoop:
    def test_loop_reacts_and_rebalances(self):
        result = run_shifting_loop(SHORT)
        assert result.rebalances >= 1
        assert result.first_rebalance_at is not None
        assert result.reaction_seconds is not None
        # The loop must leave the ports near even; the ratio bound is
        # the one the smoke gate enforces.
        assert result.final_imbalance <= 1.25
        assert result.converged(within_ticks=8)
        assert not result.converged(within_ticks=0)

    def test_measurement_accuracy_within_budget(self):
        result = run_shifting_loop(SHORT)
        assert result.port_rate_error_pct <= 5.0

    def test_samples_flow_through_the_hook(self):
        seen = []
        result = run_shifting_loop(SHORT, on_sample=seen.append)
        assert len(seen) == result.samples == 20
        assert [s.sampled_at for s in seen] == sorted(
            s.sampled_at for s in seen)

    def test_monitoring_rides_the_runtime(self):
        result = run_shifting_loop(SHORT)
        assert result.runtime_submitted["monitoring"] >= 1

    def test_to_dict_is_json_shaped(self):
        import json

        payload = run_shifting_loop(SHORT).to_dict()
        assert payload["scenario"] == "shifting"
        json.dumps(payload)  # must not raise


class TestSkewedLoop:
    def test_loop_offloads_the_surger(self):
        result = run_skewed_loop(SHORT)
        assert result.offloaded == ("62.0.0.0/8",)
        assert result.declined == ()
        assert result.reaction_seconds is not None
        assert result.converged(within_ticks=8)

    def test_measurement_accuracy_within_budget(self):
        # The byte budget needs the full-length run: the one-interval
        # counter loss around the offload swap amortises with duration.
        result = run_skewed_loop(LoopConfig())
        assert result.fec_rate_error_pct <= 5.0
        assert result.fec_bytes_error_pct <= 5.0

    def test_participant_rates_follow_the_offload(self):
        result = run_skewed_loop(SHORT)
        # After steering, the alternate carries real traffic.
        assert result.participant_rates["Alternate"] > 0.0

    def test_to_dict_is_json_shaped(self):
        import json

        payload = run_skewed_loop(SHORT).to_dict()
        assert payload["scenario"] == "skewed"
        assert payload["offloaded"] == ["62.0.0.0/8"]
        json.dumps(payload)

    def test_statics_gate_still_applies(self):
        # The harness routes every reconfiguration through the verifier;
        # warn mode must not change the outcome on clean policies.
        result = run_skewed_loop(LoopConfig(
            duration=20.0, shift_time=5.0, statics_mode="warn"))
        assert result.offloaded == ("62.0.0.0/8",)
