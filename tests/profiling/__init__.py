"""Tests for the performance observability subsystem."""
