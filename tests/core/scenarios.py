"""Shared SDX scenario builders for core and integration tests.

``figure1_controller`` reconstructs the paper's running example
(Figure 1): ASes A, B (two ports), C; prefixes p1..p5 with the exact
export pattern of Figure 1b; A's application-specific peering policy and
B's inbound traffic engineering policy.
"""

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import fwd, match

P1 = IPv4Prefix("11.0.0.0/8")
P2 = IPv4Prefix("12.0.0.0/8")
P3 = IPv4Prefix("13.0.0.0/8")
P4 = IPv4Prefix("14.0.0.0/8")
P5 = IPv4Prefix("15.0.0.0/8")


def figure1_controller(*, with_policies=True, **kwargs):
    """The Figure 1 exchange: returns (controller, a, b, c, e).

    Routes (mirroring Figure 1b's route-server table):

    * B announces p1, p2, p3 — with a *shorter* path for p3 so the route
      server prefers B for p3 and C for p1/p2 (as in the paper, where C
      is the next hop for p1/p2 and B for p3).
    * C announces p1, p2, p3, p4.
    * E announces p5 (no policy ever touches it).
    """
    sdx = SdxController(**kwargs)
    a = sdx.add_participant("A", 65001)
    b = sdx.add_participant("B", 65002, ports=2)
    c = sdx.add_participant("C", 65003)
    e = sdx.add_participant("E", 65005)

    sdx.announce_route("B", P1, AsPath([65002, 300, 100]))
    sdx.announce_route("B", P2, AsPath([65002, 300, 200]))
    sdx.announce_route("B", P3, AsPath([65002, 300]))
    sdx.announce_route("C", P1, AsPath([65003, 100]))
    sdx.announce_route("C", P2, AsPath([65003, 200]))
    sdx.announce_route("C", P3, AsPath([65003, 400, 300]))
    sdx.announce_route("C", P4, AsPath([65003, 500]))
    sdx.announce_route("E", P5, AsPath([65005, 600]))

    if with_policies:
        # AS A: application-specific peering (Section 3.1).
        a.add_outbound((match(dstport=80) >> fwd("B"))
                       + (match(dstport=443) >> fwd("C")))
        # AS B: inbound traffic engineering by source halves.
        b.add_inbound((match(srcip="0.0.0.0/1") >> fwd(b.port(0)))
                      + (match(srcip="128.0.0.0/1") >> fwd(b.port(1))))
    return sdx, a, b, c, e


def packet(dstip, dstport=80, srcip="10.0.0.1", protocol=6, **extra):
    from repro.net.packet import Packet
    return Packet(dstip=dstip, dstport=dstport, srcip=srcip,
                  protocol=protocol, **extra)
