"""Ablation — two-stage incremental updates vs full recompilation
(Section 4.3.2).

Processes the same stream of best-path-changing updates twice: once via
the fast path (the default), once forcing a full optimal recompilation
after every update. The fast path must be much quicker per update — the
headroom that makes sub-second convergence possible — at the price of
temporary extra rules that the background pass reclaims.
"""

import random
import time

from conftest import publish, publish_json

from repro.experiments.harness import _loaded_controller, _perturb_prefix
from repro.experiments.metrics import render_table

PARTICIPANTS = 100
PREFIXES = 2_000
UPDATES = 30


def _measure(full_recompile: bool) -> float:
    controller, ixp = _loaded_controller(PARTICIPANTS, PREFIXES, seed=0)
    rng = random.Random(7)
    universe = ixp.all_prefixes()
    started = time.perf_counter()
    for _ in range(UPDATES):
        _perturb_prefix(controller, ixp, rng.choice(universe), rng)
        if full_recompile:
            controller.recompile()
    return (time.perf_counter() - started) / UPDATES


def _run():
    return _measure(False), _measure(True)


def test_ablation_incremental(benchmark):
    fast_seconds, full_seconds = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("ablation_incremental", render_table(
        ["variant", "seconds per update"],
        [["two-stage fast path", f"{fast_seconds:.4f}"],
         ["full recompilation per update", f"{full_seconds:.4f}"]]))
    publish_json("ablation_incremental", {
        "updates": UPDATES,
        "fast_seconds_per_update": fast_seconds,
        "full_seconds_per_update": full_seconds,
        "speedup": full_seconds / fast_seconds,
    })

    # The fast path is the point of Section 4.3.2.
    assert full_seconds > 3 * fast_seconds
    assert fast_seconds < 0.1  # sub-100 ms, consistent with Figure 10
