"""Property tests for the dataplane verifier's core machinery.

Two properties carry the whole design:

* a :class:`Subpartition` is a true partition of its base region —
  random packets inside the base land in exactly one enumerated class,
  and every installed match is constant across each class (the
  representative's verdict speaks for the whole class);
* incremental re-verification after a random FlowMod delta renders
  byte-identically to a fresh whole-table analysis of the same state.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.flowtable import FlowTable
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.classifier import Action
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import HeaderSpace
from repro.southbound.diff import FlowMod
from repro.statics.dataplane import (
    ClassBudgetExceeded,
    DataplaneVerifier,
    Subpartition,
    analyze_flowtable,
)

#: A deliberately small universe so random matches collide often.
PREFIXES = (
    IPv4Prefix("10.0.0.0/8"),
    IPv4Prefix("10.0.0.0/16"),
    IPv4Prefix("10.0.0.0/24"),
    IPv4Prefix("10.1.0.0/16"),
    IPv4Prefix("192.168.0.0/16"),
)
PORTS = (80, 443, 53)

ips_in_universe = st.one_of(
    st.integers(min_value=0x0A000000, max_value=0x0A0001FF),
    st.integers(min_value=0xC0A80000, max_value=0xC0A800FF),
    st.integers(min_value=0, max_value=0xFFFFFFFF),
)


@st.composite
def matches(draw):
    fields = {}
    if draw(st.booleans()):
        fields["dstip"] = draw(st.sampled_from(PREFIXES))
    if draw(st.booleans()):
        fields["dstport"] = draw(st.sampled_from(PORTS))
    if draw(st.booleans()):
        fields["srcport"] = draw(st.sampled_from(PORTS))
    return HeaderSpace(**fields)


@st.composite
def rule_sets(draw):
    count = draw(st.integers(min_value=1, max_value=6))
    rules = []
    for index in range(count):
        actions = ((Action(port=draw(st.sampled_from((1, 2, 3)))),)
                   if draw(st.booleans()) else ())
        rules.append(FlowRule(priority=10 * (count - index),
                              match=draw(matches()), actions=actions))
    return rules


@st.composite
def probe_packets(draw):
    fields = {"port": draw(st.sampled_from((0, 1, 2)))}
    if draw(st.booleans()):
        fields["dstip"] = draw(ips_in_universe)
    if draw(st.booleans()):
        fields["dstport"] = draw(st.sampled_from(PORTS + (6_000,)))
    if draw(st.booleans()):
        fields["srcport"] = draw(st.sampled_from(PORTS + (6_001,)))
    return Packet(**fields)


class TestPartitionProperty:
    @settings(max_examples=80, deadline=None)
    @given(rule_sets(), probe_packets())
    def test_every_base_packet_lands_in_exactly_one_class(self, rules,
                                                          packet):
        part = Subpartition(HeaderSpace(), rules)
        key = part.classify(packet)
        assert key is not None  # the base is the wildcard: total
        assert sum(1 for cls in part.classes if cls.key == key) == 1

    @settings(max_examples=80, deadline=None)
    @given(rule_sets(), probe_packets())
    def test_matches_are_constant_across_each_class(self, rules, packet):
        part = Subpartition(HeaderSpace(), rules)
        key = part.classify(packet)
        cls = next(c for c in part.classes if c.key == key)
        for rule in rules:
            assert (rule.match.matches(packet)
                    == rule.match.matches(cls.representative))

    @settings(max_examples=80, deadline=None)
    @given(rule_sets())
    def test_representatives_classify_to_their_own_class(self, rules):
        part = Subpartition(HeaderSpace(), rules)
        for cls in part.classes:
            assert part.classify(cls.representative) == cls.key

    @settings(max_examples=80, deadline=None)
    @given(rule_sets(), st.sampled_from(PREFIXES))
    def test_constrained_base_keeps_the_partition_inside_it(self, rules,
                                                            prefix):
        base = HeaderSpace(dstip=prefix)
        try:
            part = Subpartition(base, rules)
        except ClassBudgetExceeded:
            return
        for cls in part.classes:
            assert base.matches(cls.representative)


@st.composite
def deltas(draw, rules):
    """A FlowMod batch over (and beyond) an installed rule set."""
    mods = []
    for rule in rules:
        choice = draw(st.sampled_from(("keep", "delete", "modify")))
        if choice == "delete":
            mods.append(FlowMod.delete(rule))
        elif choice == "modify":
            flipped = (() if rule.actions else (Action(port=9),))
            mods.append(FlowMod.modify(FlowRule(
                priority=rule.priority, match=rule.match, actions=flipped)))
    for extra in draw(st.lists(matches(), max_size=3)):
        mods.append(FlowMod.add(FlowRule(
            priority=draw(st.integers(min_value=1, max_value=200)),
            match=extra, actions=(Action(port=5),))))
    return mods


@st.composite
def tables_with_deltas(draw):
    rules = draw(rule_sets())
    return rules, draw(deltas(rules))


class TestIncrementalEqualsFullProperty:
    @settings(max_examples=60, deadline=None)
    @given(tables_with_deltas())
    def test_random_delta_preserves_byte_identity(self, case):
        rules, mods = case
        table = FlowTable()
        for rule in rules:
            table.install(rule)
        verifier = DataplaneVerifier(table, mode="off")
        table.apply_delta(mods)
        verifier.verify_delta(mods)
        incremental = verifier.state_report()
        fresh = analyze_flowtable(table)
        assert incremental.to_json() == fresh.to_json()

    @settings(max_examples=30, deadline=None)
    @given(tables_with_deltas(), st.data())
    def test_chained_deltas_preserve_byte_identity(self, case, data):
        rules, mods = case
        table = FlowTable()
        for rule in rules:
            table.install(rule)
        verifier = DataplaneVerifier(table, mode="off")
        table.apply_delta(mods)
        verifier.verify_delta(mods)
        second = data.draw(deltas(tuple(table.rules)))
        table.apply_delta(second)
        verifier.verify_delta(second)
        assert (verifier.state_report().to_json()
                == analyze_flowtable(table).to_json())
