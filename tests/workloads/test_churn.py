"""Tests for the churn workload generators (chaos schedules, floods)."""

import pytest

from repro.workloads.churn import (
    FAULT_KINDS,
    ChaosFault,
    ChaosSchedule,
    generate_chaos_schedule,
    generate_withdrawal_flood,
)

PEERS = ["as100", "as200", "as300", "as400"]
PREFIXES = [f"40.{index}.0.0/16" for index in range(6)]


def schedule(seed=0, **overrides):
    options = {"prefixes": PREFIXES, "trace_length": 20, "faults": 8}
    options.update(overrides)
    return generate_chaos_schedule(seed, PEERS, **options)


class TestGeneration:
    def test_deterministic_for_a_seed(self):
        assert schedule(seed=3) == schedule(seed=3)
        assert schedule(seed=3) != schedule(seed=4)

    def test_first_faults_cover_every_kind(self):
        # faults >= len(kinds) guarantees full lifecycle coverage.
        assert schedule(faults=len(FAULT_KINDS)).kinds() == FAULT_KINDS

    def test_sorted_by_step_within_trace_bounds(self):
        generated = schedule(seed=11, trace_length=15)
        steps = [fault.step for fault in generated.faults]
        assert steps == sorted(steps)
        assert all(0 <= step <= 15 for step in steps)

    def test_kind_subset_is_respected(self):
        generated = schedule(seed=5, kinds=("peer_down", "flap"), faults=6)
        assert set(generated.kinds()) <= {"peer_down", "flap"}

    def test_correlated_failures_name_multiple_peers(self):
        generated = schedule(seed=7, faults=12)
        correlated = [fault for fault in generated.faults
                      if fault.kind == "correlated_failure"]
        assert correlated
        for fault in correlated:
            assert len(fault.participants) >= 2
            assert list(fault.participants) == sorted(fault.participants)

    def test_stuck_routes_carry_prefix_and_path(self):
        generated = schedule(seed=9, faults=12)
        stuck = [fault for fault in generated.faults
                 if fault.kind == "stuck_route"]
        assert stuck
        for fault in stuck:
            assert fault.prefix in PREFIXES
            assert fault.as_path

    def test_flaps_are_parameterised(self):
        generated = schedule(seed=2, faults=12, max_flaps=2,
                             max_hold_steps=2)
        flaps = [fault for fault in generated.faults if fault.kind == "flap"]
        assert flaps
        for fault in flaps:
            assert 1 <= fault.flaps <= 2
            assert 0 <= fault.hold_steps <= 2

    def test_rejects_empty_participants(self):
        with pytest.raises(ValueError):
            generate_chaos_schedule(0, [], prefixes=PREFIXES, trace_length=5)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            schedule(kinds=("peer_down", "meteor_strike"))


class TestFaultValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ChaosFault(kind="nope", step=0, participants=("a",))

    def test_empty_participants_rejected(self):
        with pytest.raises(ValueError):
            ChaosFault(kind="peer_down", step=0, participants=())

    def test_describe_mentions_parameters(self):
        fault = ChaosFault(kind="flap", step=3, participants=("a",),
                           flaps=2, hold_steps=1)
        assert "flap@3" in fault.describe()
        assert "x2" in fault.describe()


class TestScheduleOperations:
    def test_faults_at_and_after(self):
        generated = schedule(seed=1, trace_length=10)
        for fault in generated.faults_at(4):
            assert fault.step == 4
        for fault in generated.faults_after(10):
            assert fault.step >= 10

    def test_without_fault_shrinks_by_one(self):
        generated = schedule(seed=1)
        smaller = generated.without_fault(0)
        assert len(smaller.faults) == len(generated.faults) - 1
        assert smaller.faults == generated.faults[1:]

    def test_remap_shifts_only_later_steps(self):
        generated = ChaosSchedule(seed=0, faults=(
            ChaosFault(kind="peer_down", step=2, participants=("a",)),
            ChaosFault(kind="peer_up", step=5, participants=("a",)),
        ))
        remapped = generated.remap_for_removed_step(3)
        assert remapped.faults[0].step == 2  # before the removed index
        assert remapped.faults[1].step == 4  # shifted down past it

    def test_json_round_trip_is_exact(self):
        generated = schedule(seed=13)
        assert ChaosSchedule.from_json(generated.to_json()) == generated

    def test_unsupported_version_rejected(self):
        payload = schedule().to_dict()
        payload["version"] = 99
        with pytest.raises(ValueError):
            ChaosSchedule.from_dict(payload)


class TestWithdrawalFlood:
    def test_deterministic_and_withdrawal_only(self):
        flood = generate_withdrawal_flood(
            PEERS, PREFIXES, count=30, seed=4)
        assert flood == generate_withdrawal_flood(
            PEERS, PREFIXES, count=30, seed=4)
        assert len(flood) == 30
        for update in flood:
            assert not update.announcements
            assert len(update.withdrawals) == 1
            assert update.sender in PEERS
            assert str(update.withdrawals[0].prefix) in PREFIXES

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            generate_withdrawal_flood([], PREFIXES, count=1)
        with pytest.raises(ValueError):
            generate_withdrawal_flood(PEERS, [], count=1)
