"""Tests for classifier compilation — the key property is that compiled
tables agree exactly with the policy interpreter on every packet."""

import pytest
from hypothesis import given, settings

from repro.exceptions import PolicyError
from repro.net.packet import Packet
from repro.policy.classifier import (
    DROP_CLASSIFIER,
    IDENTITY_ACTION,
    IDENTITY_CLASSIFIER,
    Action,
    Classifier,
    ComposeStats,
    Rule,
    concatenate_disjoint,
    parallel_compose,
    parallel_compose_many,
    sequential_compose,
)
from repro.policy.headerspace import WILDCARD, HeaderSpace
from repro.policy.policies import drop, fwd, identity, match, modify

from tests.policy.strategies import packets, policies, predicates


class TestAction:
    def test_identity_action(self):
        assert IDENTITY_ACTION.is_identity
        packet = Packet(port=1)
        assert IDENTITY_ACTION.apply(packet) == packet

    def test_apply_assigns_fields(self):
        action = Action(port=2, dstport=80)
        result = action.apply(Packet(port=1))
        assert result == Packet(port=2, dstport=80)

    def test_then_composes_with_override(self):
        first = Action(port=2, dstport=80)
        second = Action(port=3)
        assert first.then(second) == Action(port=3, dstport=80)

    def test_then_identity_either_side(self):
        action = Action(port=2)
        assert action.then(IDENTITY_ACTION) == action
        assert IDENTITY_ACTION.then(action) == action

    def test_output_port(self):
        assert Action(port=4).output_port == 4
        assert Action(dstport=80).output_port is None

    def test_sets_field(self):
        assert Action(port=4).sets_field("port")
        assert not Action(port=4).sets_field("dstport")

    def test_hash_and_eq(self):
        assert {Action(port=1), Action(port=1)} == {Action(port=1)}


class TestRule:
    def test_drop_rule(self):
        rule = Rule(WILDCARD, ())
        assert rule.is_drop
        assert rule.apply(Packet(port=1)) == frozenset()

    def test_identity_rule(self):
        rule = Rule(WILDCARD, (IDENTITY_ACTION,))
        assert rule.is_identity

    def test_multicast_rule(self):
        rule = Rule(WILDCARD, (Action(port=2), Action(port=3)))
        assert rule.apply(Packet(port=1)) == {Packet(port=2), Packet(port=3)}


class TestClassifierBasics:
    def test_first_match_wins(self):
        classifier = Classifier([
            Rule(HeaderSpace(dstport=80), (Action(port=2),)),
            Rule(WILDCARD, (Action(port=3),)),
        ])
        assert classifier.eval(Packet(port=1, dstport=80)) == {Packet(port=2, dstport=80)}
        assert classifier.eval(Packet(port=1, dstport=22)) == {Packet(port=3, dstport=22)}

    def test_partial_classifier_raises(self):
        classifier = Classifier([Rule(HeaderSpace(dstport=80), ())])
        assert not classifier.is_total
        with pytest.raises(PolicyError):
            classifier.eval(Packet(port=1))

    def test_negate_flips_filters(self):
        web = match(dstport=80).compile().negate()
        assert web.eval(Packet(dstport=80)) == frozenset()
        assert web.eval(Packet(dstport=22)) == {Packet(dstport=22)}

    def test_negate_rejects_non_filter(self):
        with pytest.raises(PolicyError):
            fwd(2).compile().negate()

    def test_iteration_and_len(self):
        classifier = IDENTITY_CLASSIFIER
        assert len(classifier) == 1
        assert list(classifier)[0].is_identity


class TestCompilationAgreesWithEval:
    """The central compiler-correctness property."""

    @settings(max_examples=120, deadline=None)
    @given(policies(max_depth=4), packets())
    def test_policy_compile_matches_eval(self, policy, packet):
        assert policy.compile().eval(packet) == policy.eval(packet)

    @settings(max_examples=120, deadline=None)
    @given(predicates(max_depth=4), packets())
    def test_predicate_compile_matches_eval(self, predicate, packet):
        assert predicate.compile().eval(packet) == predicate.eval(packet)

    def test_paper_compiled_example(self):
        """The compiled cross-product from Section 3.1: A's outbound web
        policy composed with B's inbound source-split policy."""
        outbound = match(port=1, dstport=80) >> fwd(9)
        inbound = (match(port=9, srcip="0.0.0.0/1") >> fwd(5)) + (
            match(port=9, srcip="128.0.0.0/1") >> fwd(6))
        composed = (outbound >> inbound).compile()
        low = Packet(port=1, dstport=80, srcip="10.0.0.1")
        high = Packet(port=1, dstport=80, srcip="200.0.0.1")
        assert composed.eval(low) == {low.modify(port=5)}
        assert composed.eval(high) == {high.modify(port=6)}
        assert composed.eval(Packet(port=1, dstport=22, srcip="10.0.0.1")) == frozenset()


class TestComposeOperators:
    def test_parallel_compose_unions(self):
        left = fwd(2).compile()
        right = fwd(3).compile()
        combined = parallel_compose(left, right)
        assert combined.eval(Packet(port=1)) == {Packet(port=2), Packet(port=3)}

    def test_sequential_compose_chains_modifications(self):
        first = modify(dstport=80).compile()
        second = (match(dstport=80) >> fwd(2)).compile()
        combined = sequential_compose(first, second)
        assert combined.eval(Packet(port=1, dstport=22)) == {Packet(port=2, dstport=80)}

    def test_sequential_pullback_unsatisfiable(self):
        first = modify(dstport=22).compile()
        second = (match(dstport=80) >> fwd(2)).compile()
        combined = sequential_compose(first, second)
        assert combined.eval(Packet(port=1, dstport=80)) == frozenset()

    def test_sequential_multicast_left(self):
        left = (fwd(2) + fwd(3)).compile()
        right = (match(port=2) >> modify(dstport=80)).compile()
        combined = sequential_compose(left, right)
        # port-2 copy gets dstport rewritten; port-3 copy is dropped by right.
        assert combined.eval(Packet(port=1)) == {Packet(port=2, dstport=80)}

    def test_parallel_compose_many_empty_is_drop(self):
        assert parallel_compose_many([]).eval(Packet(port=1)) == frozenset()

    def test_parallel_compose_many_folds(self):
        combined = parallel_compose_many([fwd(2).compile(), fwd(3).compile(), drop.compile()])
        assert combined.eval(Packet(port=1)) == {Packet(port=2), Packet(port=3)}

    def test_stats_counting(self):
        stats = ComposeStats()
        parallel_compose(IDENTITY_CLASSIFIER, DROP_CLASSIFIER, stats)
        sequential_compose(IDENTITY_CLASSIFIER, DROP_CLASSIFIER, stats)
        assert stats.parallel_ops == 1
        assert stats.sequential_ops == 1
        assert stats.rule_pairs_examined >= 2
        merged = ComposeStats()
        merged.merge(stats)
        assert merged.parallel_ops == 1


class TestConcatenateDisjoint:
    def test_disjoint_policies_stack(self):
        """Policies guarded on different ingress ports never overlap, so
        concatenation must equal true parallel composition."""
        policy_a = match(port=1) >> fwd(2)
        policy_b = match(port=3) >> fwd(4)
        stacked = concatenate_disjoint([policy_a.compile(), policy_b.compile()])
        expected = (policy_a + policy_b).compile()
        for packet in (Packet(port=1), Packet(port=3), Packet(port=9)):
            assert stacked.eval(packet) == expected.eval(packet)

    def test_result_is_total(self):
        stacked = concatenate_disjoint([])
        assert stacked.is_total
        assert stacked.eval(Packet(port=1)) == frozenset()

    @settings(max_examples=60, deadline=None)
    @given(policies(max_depth=3), policies(max_depth=3), packets())
    def test_port_guarded_policies_concatenate_property(self, left, right, packet):
        """Policies guarded on distinct ingress ports — the way SDX
        isolation guards participants — concatenate exactly like parallel
        composition. (Negation guards would violate the function's
        mask-free precondition; the clause compiler handles those.)"""
        guarded_left = match(port=1) >> left
        guarded_right = match(port=2) >> right
        stacked = concatenate_disjoint([guarded_left.compile(), guarded_right.compile()])
        combined = (guarded_left + guarded_right).eval(packet)
        assert stacked.eval(packet) == combined
