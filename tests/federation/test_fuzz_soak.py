"""The PR's acceptance soak: 200 federated scenarios, no divergence.

Marked ``fuzz`` — excluded from the default test run (see
``pyproject.toml``), executed by ``make federation-smoke`` /
``make fuzz`` tier jobs.
"""

import pytest

from repro.verification.fuzz import FuzzConfig, run_fuzz

pytestmark = pytest.mark.fuzz


def test_two_hundred_scenario_soak_is_clean():
    config = FuzzConfig(
        seed=2014, scenarios=200, steps=6, participants=6,
        prefixes=4, policies=6, corpus_size=6,
        federation=True, exchanges=2)
    report = run_fuzz(config)
    assert report.scenarios_run == 200
    assert report.ok, report.summary()


def test_three_exchange_soak_is_clean():
    config = FuzzConfig(
        seed=2015, scenarios=25, steps=6, participants=8,
        prefixes=4, policies=7, corpus_size=6,
        federation=True, exchanges=3)
    report = run_fuzz(config)
    assert report.ok, report.summary()
