"""Event classification, coalescing keys, and priority classes."""

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.runtime.events import (
    EventClass,
    OverloadPolicy,
    RuntimeEvent,
    classify_update,
    coalescing_key,
)

PREFIX = IPv4Prefix("10.0.0.0/24")
OTHER = IPv4Prefix("10.0.1.0/24")


def announce(prefix=PREFIX, sender="A", med=0):
    return Update.announce(sender, prefix, RouteAttributes(
        next_hop=IPv4Address("172.0.0.1"), as_path=AsPath([100]), med=med))


def withdraw(prefix=PREFIX, sender="A"):
    return Update.withdraw(sender, prefix)


class TestClassify:
    def test_announcement(self):
        assert classify_update(announce()) is EventClass.ANNOUNCEMENT

    def test_withdrawal(self):
        assert classify_update(withdraw()) is EventClass.WITHDRAWAL

    def test_priority_order(self):
        assert EventClass.POLICY < EventClass.WITHDRAWAL < EventClass.ANNOUNCEMENT

    def test_labels(self):
        assert EventClass.POLICY.label == "policy"
        assert EventClass.WITHDRAWAL.label == "withdrawal"

    def test_overload_policy_values(self):
        assert OverloadPolicy("block") is OverloadPolicy.BLOCK
        assert OverloadPolicy("shed-oldest") is OverloadPolicy.SHED_OLDEST
        assert OverloadPolicy("degrade") is OverloadPolicy.DEGRADE


class TestCoalescingKey:
    def test_single_prefix_has_key(self):
        assert coalescing_key(announce()) == ("bgp", "A", str(PREFIX))

    def test_withdraw_shares_key_with_announce(self):
        assert coalescing_key(withdraw()) == coalescing_key(announce())

    def test_sender_distinguishes(self):
        assert coalescing_key(announce(sender="B")) != coalescing_key(announce())

    def test_multi_prefix_has_no_key(self):
        attributes = RouteAttributes(
            next_hop=IPv4Address("172.0.0.1"), as_path=AsPath([100]))
        update = Update(sender="A", announcements=(
            Update.announce("A", PREFIX, attributes).announcements[0],
            Update.announce("A", OTHER, attributes).announcements[0]))
        assert coalescing_key(update) is None


class TestRuntimeEvent:
    def test_bgp_event_key_and_coalescable(self):
        event = RuntimeEvent(kind=EventClass.ANNOUNCEMENT, seq=1,
                             enqueued_wall=0.0, update=announce())
        assert event.coalescable
        assert event.key == ("bgp", "A", str(PREFIX))

    def test_policy_event_unique_key(self):
        one = RuntimeEvent(kind=EventClass.POLICY, seq=1, enqueued_wall=0.0,
                           apply=lambda c: None, label="x")
        two = RuntimeEvent(kind=EventClass.POLICY, seq=2, enqueued_wall=0.0,
                           apply=lambda c: None, label="x")
        assert not one.coalescable
        assert one.key != two.key

    def test_describe(self):
        event = RuntimeEvent(kind=EventClass.WITHDRAWAL, seq=3,
                             enqueued_wall=0.0, update=withdraw())
        assert "withdrawal" in event.describe()
        assert str(PREFIX) in event.describe()
