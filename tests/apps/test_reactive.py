"""Tests for the counter-driven reactive apps (repro.apps.reactive)."""

import pytest

from repro.apps.reactive import HeavyHitterSteering, ReactiveInboundBalancer
from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.exceptions import PolicyError
from repro.monitoring.detect import EgressImbalanceWatch
from repro.monitoring.events import EgressImbalance, HeavyHitter
from repro.monitoring.loop import DataPlaneMonitor
from repro.monitoring.stats import MonitorSample, RuleView, fec_label
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.classifier import Action
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import HeaderSpace
from repro.workloads.scenarios import (
    EYEBALL_PREFIX,
    SKEWED_PREFIXES,
    build_shifting_controller,
    build_skewed_controller,
)


def make_sample(rules, at=0.0):
    return MonitorSample(
        sampled_at=at, interval=1.0,
        total_rate_mbps=sum(view.ewma_mbps for view in rules),
        fecs=(), participants=(), ports=(), rules=tuple(rules))


def imbalance_event(participant, at=0.0, raised=True):
    return EgressImbalance(sampled_at=at, participant=participant,
                           port_rates=((1, 10.0), (2, 1.0)),
                           imbalance=1.8, raised=raised)


class TestReactiveInboundBalancer:
    def make(self):
        sdx = build_shifting_controller()
        monitor = DataPlaneMonitor(sdx)
        balancer = ReactiveInboundBalancer(sdx.participant("Eyeball"), monitor)
        return sdx, monitor, balancer

    def slice_sample(self, balancer, rates, at=0.0):
        """Per-slice rule views shaped like the balancer's own policies."""
        views = []
        for index, rate in rates.items():
            port = balancer.ports[balancer.assignment[index]]
            rule = FlowRule(priority=1,
                            match=HeaderSpace(srcip=balancer.slices[index]),
                            actions=(Action(port=port),))
            views.append(RuleView(
                rule=rule, fec="f", egress=((port, balancer.handle.name),),
                packets=0, bytes=0, delta_packets=0, delta_bytes=0,
                rate_mbps=rate, ewma_mbps=rate))
        return make_sample(views, at=at)

    def test_needs_two_local_ports(self):
        sdx = build_shifting_controller()
        monitor = DataPlaneMonitor(sdx)
        with pytest.raises(PolicyError):
            ReactiveInboundBalancer(sdx.participant("CDN"), monitor)

    def test_install_round_robin_partition(self):
        sdx, _monitor, balancer = self.make()
        balancer.install()
        assert balancer.assignment == {i: i % 2 for i in range(8)}
        # A packet from slice i lands on the assigned port.
        for index in (0, 1, 2, 3):
            packet = Packet(dstip=EYEBALL_PREFIX.first_address + 9,
                            srcip=balancer.slices[index].first_address + 5,
                            dstport=443, srcport=777, protocol=6)
            (delivery,) = [d for d in sdx.send("CDN", packet) if d.accepted]
            assert delivery.switch_port == balancer.ports[index % 2]

    def test_uninstall_removes_the_partition(self):
        sdx, _monitor, balancer = self.make()
        balancer.install()
        balancer.uninstall()
        packet = Packet(dstip=EYEBALL_PREFIX.first_address + 9,
                        srcip=balancer.slices[3].first_address + 5,
                        dstport=443, srcport=777, protocol=6)
        accepted = [d for d in sdx.send("CDN", packet) if d.accepted]
        # Default forwarding still delivers, on the default (first) port.
        assert all(d.switch_port == balancer.ports[0] for d in accepted)

    def test_repack_balances_known_rates(self):
        _sdx, _monitor, balancer = self.make()
        rates = {0: 20.0, 1: 2.0, 2: 16.0, 3: 2.0,
                 4: 18.0, 5: 2.0, 6: 14.0, 7: 2.0}
        assignment = balancer._repack(rates)
        loads = [0.0, 0.0]
        for slice_index, port_index in assignment.items():
            loads[port_index] += rates[slice_index]
        assert loads[0] == pytest.approx(loads[1])

    def test_make_watch_is_wired_to_the_participant(self):
        _sdx, _monitor, balancer = self.make()
        watch = balancer.make_watch(high_ratio=2.0)
        assert isinstance(watch, EgressImbalanceWatch)
        assert watch.participant == "Eyeball"
        assert watch.ports == balancer.ports
        assert watch.high_ratio == 2.0

    def test_slice_rates_sum_matching_rules(self):
        _sdx, _monitor, balancer = self.make()
        sample = self.slice_sample(balancer, {0: 12.0, 3: 4.0})
        rates = balancer.slice_rates(sample)
        assert rates[0] == 12.0 and rates[3] == 4.0
        assert rates[1] == 0.0

    def test_imbalance_edge_triggers_one_rebalance(self):
        sdx, monitor, balancer = self.make()
        balancer.install()
        before = dict(balancer.assignment)
        monitor.last_sample = self.slice_sample(
            balancer, {0: 20.0, 2: 16.0, 4: 18.0, 6: 14.0, 1: 2.0,
                       3: 2.0, 5: 2.0, 7: 2.0}, at=5.0)
        balancer.handle_event(imbalance_event("Eyeball", at=5.0), sdx)
        assert balancer.rebalances == 1
        assert balancer.assignment != before

    def test_cooldown_and_edge_filtering(self):
        sdx, monitor, balancer = self.make()
        balancer.install()
        monitor.last_sample = self.slice_sample(
            balancer, {0: 20.0, 1: 2.0}, at=5.0)
        balancer.handle_event(imbalance_event("Eyeball", at=5.0), sdx)
        assert balancer.rebalances == 1
        # Within the cooldown window: ignored.
        monitor.last_sample = self.slice_sample(
            balancer, {1: 30.0, 0: 1.0}, at=6.0)
        balancer.handle_event(imbalance_event("Eyeball", at=6.0), sdx)
        assert balancer.rebalances == 1
        # Clearing edges and other participants never trigger.
        balancer.handle_event(
            imbalance_event("Eyeball", at=60.0, raised=False), sdx)
        balancer.handle_event(imbalance_event("CDN", at=60.0), sdx)
        assert balancer.rebalances == 1

    def test_no_action_when_repack_is_identical(self):
        sdx, monitor, balancer = self.make()
        balancer.install()
        monitor.last_sample = self.slice_sample(
            balancer, {0: 20.0, 1: 2.0}, at=5.0)
        balancer.handle_event(imbalance_event("Eyeball", at=5.0), sdx)
        assert balancer.rebalances == 1
        # Same measured rates well past the cooldown: the repack
        # reproduces the current assignment, so nothing is reinstalled.
        monitor.last_sample = self.slice_sample(
            balancer, {0: 20.0, 1: 2.0}, at=50.0)
        balancer.handle_event(imbalance_event("Eyeball", at=50.0), sdx)
        assert balancer.rebalances == 1


class TestHeavyHitterSteering:
    def make(self, **kwargs):
        sdx = build_skewed_controller()
        monitor = DataPlaneMonitor(sdx)
        steering = HeavyHitterSteering(
            sdx.participant("Sender"), monitor, prefixes=SKEWED_PREFIXES,
            primary="Primary", alternate="Alternate", **kwargs)
        steering.install()
        return sdx, monitor, steering

    def prefix_sample(self, rates, at=0.0):
        views = []
        for label, rate in rates.items():
            rule = FlowRule(priority=1,
                            match=HeaderSpace(dstip=IPv4Prefix(label)),
                            actions=())
            views.append(RuleView(
                rule=rule, fec="g", egress=(), packets=0, bytes=0,
                delta_packets=0, delta_bytes=0,
                rate_mbps=rate, ewma_mbps=rate))
        return make_sample(views, at=at)

    def hitter(self, sdx, at=0.0, raised=True, fec=None):
        return HeavyHitter(
            sampled_at=at,
            fec=fec if fec is not None else fec_label(sdx, SKEWED_PREFIXES[0]),
            rate_mbps=120.0, share=0.8, raised=raised)

    def egress(self, sdx, prefix):
        return sdx.egress_of("Sender", Packet(
            dstip=prefix.first_address + 1, srcip="8.0.0.1",
            dstport=80, srcport=999, protocol=6))

    def test_install_routes_everything_via_primary(self):
        sdx, _monitor, _steering = self.make()
        for prefix in SKEWED_PREFIXES:
            assert self.egress(sdx, prefix) == "Primary"

    def test_offload_drills_down_to_the_hottest_prefix(self):
        sdx, monitor, steering = self.make()
        monitor.last_sample = self.prefix_sample(
            {"60.0.0.0/8": 8.0, "61.0.0.0/8": 6.0, "62.0.0.0/8": 120.0,
             "63.0.0.0/8": 4.0, "64.0.0.0/8": 3.0})
        steering.handle_event(self.hitter(sdx), sdx)
        assert steering.offloaded() == ("62.0.0.0/8",)
        assert self.egress(sdx, IPv4Prefix("62.0.0.0/8")) == "Alternate"
        # The rest of the FEC stays on the primary route.
        assert self.egress(sdx, IPv4Prefix("60.0.0.0/8")) == "Primary"
        assert steering.declined == []

    def test_clear_edge_releases_offloaded_prefixes(self):
        sdx, monitor, steering = self.make()
        monitor.last_sample = self.prefix_sample({"62.0.0.0/8": 120.0})
        steering.handle_event(self.hitter(sdx), sdx)
        assert steering.offloaded()
        steering.handle_event(self.hitter(sdx, at=10.0, raised=False), sdx)
        assert steering.offloaded() == ()
        assert self.egress(sdx, IPv4Prefix("62.0.0.0/8")) == "Primary"

    def test_prefix_rates_reads_only_steerable_rules(self):
        _sdx, _monitor, steering = self.make()
        sample = self.prefix_sample({"62.0.0.0/8": 50.0, "8.0.0.0/8": 99.0})
        rates = steering.prefix_rates(sample)
        assert rates["62.0.0.0/8"] == 50.0
        assert "8.0.0.0/8" not in rates

    def test_foreign_fec_is_ignored(self):
        sdx, monitor, steering = self.make()
        monitor.last_sample = self.prefix_sample({"62.0.0.0/8": 120.0})
        steering.handle_event(
            self.hitter(sdx, fec="203.0.113.0/24"), sdx)
        assert steering.offloaded() == ()
        assert steering.declined == []

    def test_capacity_exhaustion_declines(self):
        sdx, monitor, steering = self.make(max_offloads=0)
        monitor.last_sample = self.prefix_sample({"62.0.0.0/8": 120.0})
        event = self.hitter(sdx)
        steering.handle_event(event, sdx)
        assert steering.offloaded() == ()
        assert steering.declined == [event.fec]

    def test_no_sample_means_no_action(self):
        sdx, monitor, steering = self.make()
        assert monitor.last_sample is None
        steering.handle_event(self.hitter(sdx), sdx)
        assert steering.offloaded() == ()

    def test_unreachable_alternate_declines(self):
        # The alternate never announced the prefixes: BGP consistency
        # forbids steering there, however hot the hitter.
        sdx = SdxController()
        sdx.add_participant("Sender", 65040)
        sdx.add_participant("Primary", 65050)
        sdx.add_participant("Alternate", 65060)
        for index, prefix in enumerate(SKEWED_PREFIXES):
            sdx.announce_route("Primary", prefix,
                               AsPath([65050, 64_900 + index]))
        sdx.start()
        monitor = DataPlaneMonitor(sdx)
        steering = HeavyHitterSteering(
            sdx.participant("Sender"), monitor, prefixes=SKEWED_PREFIXES,
            primary="Primary", alternate="Alternate")
        steering.install()
        monitor.last_sample = self.prefix_sample({"62.0.0.0/8": 120.0})
        event = self.hitter(sdx)
        steering.handle_event(event, sdx)
        assert steering.offloaded() == ()
        assert steering.declined == [event.fec]
        assert self.egress(sdx, IPv4Prefix("62.0.0.0/8")) == "Primary"
