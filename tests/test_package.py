"""Tests for the top-level package surface and the exception hierarchy."""

import pytest

import repro
from repro import exceptions


class TestLazyExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_thing

    def test_dir_lists_exports(self):
        listing = dir(repro)
        assert "SdxController" in listing
        assert "match" in listing

    def test_exports_are_cached(self):
        first = repro.SdxController
        second = repro.SdxController
        assert first is second

    def test_quickstart_surface(self):
        """The README quickstart's names all come from the top level."""
        sdx = repro.SdxController()
        sdx.add_participant("A", 65001)
        sdx.add_participant("B", 65002)
        sdx.participant("A").participant.add_outbound(
            repro.match(dstport=80) >> repro.fwd("B"))
        assert sdx.participant("A").participant.has_policies


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("AddressError", "PolicyError", "FieldError", "BgpError",
                     "SessionStateError", "OwnershipError", "FabricError",
                     "ParticipantError", "CompilationError"):
            assert issubclass(getattr(exceptions, name), exceptions.ReproError)

    def test_address_error_is_value_error(self):
        assert issubclass(exceptions.AddressError, ValueError)

    def test_field_error_is_key_error(self):
        assert issubclass(exceptions.FieldError, KeyError)

    def test_session_error_is_bgp_error(self):
        assert issubclass(exceptions.SessionStateError, exceptions.BgpError)

    def test_one_except_catches_everything(self):
        from repro.net.addresses import IPv4Address
        with pytest.raises(exceptions.ReproError):
            IPv4Address("not-an-ip")

    def test_config_error_in_family(self):
        from repro.config import ConfigError
        assert issubclass(ConfigError, exceptions.ReproError)
