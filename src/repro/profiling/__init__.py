"""Performance observability: phase profiling, baselines, bench gating.

The third observability axis, next to :mod:`repro.telemetry` (what the
pipeline did) and :mod:`repro.monitoring` (what the data plane carried):
*where the time goes, and whether it got slower*. Four pieces:

- :mod:`repro.profiling.phases` — deterministic attribution of wall
  time, call counts, and memory to named pipeline stages (policy join,
  MDS/FEC grouping, classifier cross-product, incremental delta,
  southbound diff/swap, runtime drain), computed from the telemetry
  span buffer;
- :mod:`repro.profiling.profiler` — :class:`PhaseProfiler`, a tracer
  listener that snapshots :mod:`tracemalloc` at span boundaries and can
  scope a :mod:`cProfile` capture to a single named span;
- :mod:`repro.profiling.folded` — the folded-stack exporter
  (``repro profile --flamegraph`` emits standard flamegraph input);
- :mod:`repro.profiling.baselines` / :mod:`repro.profiling.families` —
  the schema-versioned benchmark baseline store under
  ``benchmarks/baselines/`` and the comparison engine behind
  ``repro bench`` and the CI perf gate.
"""

from repro.profiling.baselines import (
    Baseline,
    ComparisonReport,
    MetricComparison,
    MetricSpec,
    compare_metrics,
    environment_fingerprint,
)
from repro.profiling.families import BenchFamily, FAMILIES, run_family
from repro.profiling.folded import folded_stacks
from repro.profiling.phases import (
    PHASE_BY_SPAN,
    PhaseReport,
    PhaseStat,
    attribute_spans,
)
from repro.profiling.profiler import PhaseProfiler

__all__ = [
    "Baseline",
    "BenchFamily",
    "ComparisonReport",
    "FAMILIES",
    "MetricComparison",
    "MetricSpec",
    "PHASE_BY_SPAN",
    "PhaseProfiler",
    "PhaseReport",
    "PhaseStat",
    "attribute_spans",
    "compare_metrics",
    "environment_fingerprint",
    "folded_stacks",
    "run_family",
]
