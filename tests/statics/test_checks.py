"""The check catalogue, exercised on small hand-built exchanges."""

import pytest

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.core.dynamic import rib_match
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import drop, fwd, match
from repro.statics.checks import (
    BlackholeCheck,
    DeadClauseCheck,
    FieldSanityCheck,
    IsolationCheck,
    RoutelessForwardCheck,
    ShadowOverlapCheck,
    StaticsContext,
    UnreachableDefaultCheck,
    dead_clause_map,
)
from repro.statics.diagnostics import RawPolicyDocument, Severity

P1 = IPv4Prefix("20.0.0.0/8")
P2 = IPv4Prefix("30.0.0.0/8")


def exchange():
    """A/B/C with B announcing P1 and C announcing P2."""
    sdx = SdxController()
    sdx.add_participant("A", 65001)
    sdx.add_participant("B", 65002)
    sdx.add_participant("C", 65003)
    sdx.announce_route("B", P1, AsPath([65002, 100]))
    sdx.announce_route("C", P2, AsPath([65003, 200]))
    return sdx


def context(sdx, raw=()):
    return StaticsContext.from_controller(sdx, raw_policies=raw)


def findings(check, ctx):
    return list(check.run(ctx))


def participant_of(ctx, name):
    return next(p for p in ctx.participants() if p.name == name)


class TestStaticsContext:
    def test_bad_direction_rejected(self):
        ctx = context(exchange())
        with pytest.raises(ValueError):
            ctx.clauses(participant_of(ctx, "A"), "sideways")

    def test_dead_clause_map_is_cached(self):
        ctx = context(exchange())
        a = participant_of(ctx, "A")
        assert dead_clause_map(ctx, a, "out") is dead_clause_map(ctx, a, "out")


class TestDeadClause:
    def test_refinement_of_earlier_clause_is_dead(self):
        sdx = exchange()
        a = sdx.participant("A")
        a.add_outbound(match(dstport=80) >> fwd("B"))
        a.add_outbound((match(dstport=80) & match(protocol=6)) >> fwd("B"))
        found = findings(DeadClauseCheck(), context(sdx))
        assert len(found) == 1
        finding = found[0]
        assert finding.severity is Severity.ERROR
        assert finding.location.participant == "A"
        assert finding.location.direction == "out"
        assert finding.location.clause_index == 1
        assert dict(finding.data)["covered_by"] == [0]
        assert finding.witness is not None
        assert finding.witness.get("dstport") == 80

    def test_disjoint_clauses_are_not_dead(self):
        sdx = exchange()
        a = sdx.participant("A")
        a.add_outbound(match(dstport=80) >> fwd("B"))
        a.add_outbound(match(dstport=443) >> fwd("C"))
        assert findings(DeadClauseCheck(), context(sdx)) == []

    def test_negated_clause_is_never_marked_dead(self):
        # The shadow is real point-wise, but the analyzer's regions
        # over-approximate negation, so soundness forbids the verdict.
        sdx = exchange()
        a = sdx.participant("A")
        a.add_outbound(match(dstport=80) >> fwd("B"))
        a.add_outbound(
            (match(dstport=80) & ~match(protocol=17)) >> fwd("B"))
        assert findings(DeadClauseCheck(), context(sdx)) == []

    def test_dynamic_clause_is_skipped(self):
        sdx = exchange()
        a = sdx.participant("A")
        a.add_outbound(match(dstport=80) >> fwd("B"))
        a.add_outbound(
            (match(dstport=80)
             & rib_match("dstip", "as_path", r".*100$")) >> fwd("B"))
        ctx = context(sdx)
        assert dead_clause_map(ctx, participant_of(ctx, "A"), "out") == {}


class TestShadowOverlap:
    def test_partial_overlap_reports_the_loser(self):
        sdx = exchange()
        a = sdx.participant("A")
        a.add_outbound(match(dstport=80) >> fwd("B"))
        a.add_outbound(match(protocol=6) >> fwd("C"))
        found = findings(ShadowOverlapCheck(), context(sdx))
        assert len(found) == 1
        finding = found[0]
        assert finding.severity is Severity.WARNING
        assert finding.location.clause_index == 1
        assert dict(finding.data)["winner"] == 0
        assert dict(finding.data)["exact"] is True
        assert finding.witness.get("dstport") == 80
        assert finding.witness.get("protocol") == 6

    def test_fully_dead_clause_left_to_sdx001(self):
        sdx = exchange()
        a = sdx.participant("A")
        a.add_outbound(match(dstport=80) >> fwd("B"))
        a.add_outbound((match(dstport=80) & match(protocol=6)) >> fwd("B"))
        assert findings(ShadowOverlapCheck(), context(sdx)) == []


class TestRoutelessForward:
    def test_erased_forward_is_an_error(self):
        sdx = exchange()
        a = sdx.participant("A")
        a.add_outbound(match(dstip="99.0.0.0/8") >> fwd("B"))
        found = findings(RoutelessForwardCheck(), context(sdx))
        assert len(found) == 1
        finding = found[0]
        assert finding.severity is Severity.ERROR
        assert finding.location.clause_index == 0
        assert dict(finding.data)["target"] == "B"
        assert dict(finding.data)["eligible_prefixes"] == [str(P1)]

    def test_forward_within_routes_is_clean(self):
        sdx = exchange()
        a = sdx.participant("A")
        a.add_outbound(match(dstport=80) >> fwd("B"))
        assert findings(RoutelessForwardCheck(), context(sdx)) == []

    def test_drop_clauses_are_immune(self):
        sdx = exchange()
        a = sdx.participant("A")
        a.add_outbound(match(dstip="99.0.0.0/8") >> drop)
        assert findings(RoutelessForwardCheck(), context(sdx)) == []


class TestIsolation:
    def doc(self, clause, participant="A", direction="out", index=0):
        return RawPolicyDocument(
            participant=participant, direction=direction, clause=clause,
            index=index)

    def test_vmac_match_in_raw_document(self):
        document = self.doc({
            "match": {"kind": "match",
                      "fields": {"dstmac": "a2:00:00:00:00:07"}},
            "fwd": "B"})
        found = findings(IsolationCheck(), context(exchange(), (document,)))
        assert found, "VMAC document must be flagged"
        assert all(f.severity is Severity.ERROR for f in found)
        assert all(f.location.document_index == 0 for f in found)
        assert any("virtual-MAC" in f.message for f in found)
        assert any("reserved field" in f.message for f in found)

    def test_raw_switch_port_forward(self):
        document = self.doc({
            "match": {"kind": "match", "fields": {"dstport": 80}},
            "fwd": 3})
        found = findings(IsolationCheck(), context(exchange(), (document,)))
        assert len(found) == 1
        assert "raw switch port" in found[0].message

    def test_self_forward(self):
        document = self.doc({
            "match": {"kind": "match", "fields": {"dstport": 80}},
            "fwd": "A"})
        found = findings(IsolationCheck(), context(exchange(), (document,)))
        assert len(found) == 1
        assert "its own participant" in found[0].message

    def test_clean_document_passes(self):
        document = self.doc({
            "match": {"kind": "match", "fields": {"dstport": 80}},
            "fwd": "B"})
        assert findings(
            IsolationCheck(), context(exchange(), (document,))) == []


class TestBlackhole:
    def test_steering_into_an_inbound_drop(self):
        sdx = exchange()
        sdx.participant("A").add_outbound(match(dstport=2049) >> fwd("B"))
        sdx.participant("B").add_inbound(match(dstport=2049) >> drop)
        found = findings(BlackholeCheck(), context(sdx))
        assert len(found) == 1
        finding = found[0]
        assert finding.severity is Severity.WARNING
        assert finding.location.participant == "A"
        assert finding.location.clause_index == 0
        assert dict(finding.data) == {"target": "B", "drop_clause": 0}
        assert finding.witness.get("dstport") == 2049

    def test_earlier_inbound_delivery_clears_the_verdict(self):
        sdx = exchange()
        sdx.participant("A").add_outbound(match(dstport=2049) >> fwd("B"))
        b = sdx.participant("B")
        b.add_inbound(match(dstport=2049) >> fwd(b.port(0)))
        b.add_inbound(match(dstport=2049) >> drop)
        assert findings(BlackholeCheck(), context(sdx)) == []


class TestFieldSanity:
    def doc(self, clause, direction="out", index=0):
        return RawPolicyDocument(
            participant="A", direction=direction, clause=clause, index=index)

    def one_finding(self, document):
        found = findings(
            FieldSanityCheck(), context(exchange(), (document,)))
        assert len(found) == 1
        assert found[0].severity is Severity.ERROR
        assert found[0].location.document_index == document.index
        return found[0]

    def test_invalid_direction(self):
        finding = self.one_finding(self.doc(
            {"match": {"kind": "true"}, "fwd": "B"}, direction="sideways"))
        assert "direction must be" in finding.message

    def test_missing_match(self):
        finding = self.one_finding(self.doc({"fwd": "B"}))
        assert "'match'" in finding.message

    def test_drop_and_forward_conflict(self):
        finding = self.one_finding(self.doc({
            "match": {"kind": "match", "fields": {"dstport": 80}},
            "drop": True, "fwd": "B"}))
        assert "both drops and forwards" in finding.message

    def test_negative_port_is_a_field_error(self):
        finding = self.one_finding(self.doc({
            "match": {"kind": "match", "fields": {"dstport": "-80"}},
            "fwd": "B"}))
        assert "field/type error" in finding.message

    def test_bad_prefix_is_an_address_error(self):
        finding = self.one_finding(self.doc({
            "match": {"kind": "match", "fields": {"dstip": "10.0.0.0/40"}},
            "fwd": "B"}))
        assert "bad address or prefix" in finding.message

    def test_clean_document_passes(self):
        document = self.doc({
            "match": {"kind": "match", "fields": {"dstport": 80}},
            "fwd": "B"})
        assert findings(
            FieldSanityCheck(), context(exchange(), (document,))) == []


class TestUnreachableDefault:
    def hidden_exchange(self):
        """C's P2 route withheld from A: A has no default toward P2."""
        sdx = exchange()
        sdx.route_server.set_export_policy("C", deny={"A"})
        return sdx

    def test_unrouted_prefix_is_informational(self):
        found = findings(
            UnreachableDefaultCheck(), context(self.hidden_exchange()))
        assert len(found) == 1
        finding = found[0]
        assert finding.severity is Severity.INFO
        assert finding.location.participant == "A"
        assert finding.location.clause_index is None
        assert dict(finding.data)["prefixes"] == [str(P2)]

    def test_policy_into_the_void_upgrades_to_warning(self):
        sdx = self.hidden_exchange()
        sdx.participant("A").add_outbound(match(dstip=str(P2)) >> fwd("B"))
        found = findings(UnreachableDefaultCheck(), context(sdx))
        upgraded = [f for f in found if f.severity is Severity.WARNING]
        assert len(upgraded) == 1
        assert upgraded[0].location.clause_index == 0
        assert dict(upgraded[0].data)["clause_index"] == 0

    def test_fully_routed_exchange_is_silent(self):
        assert findings(UnreachableDefaultCheck(), context(exchange())) == []
