"""Property: the incremental fast path is semantically transparent.

After any sequence of announcements/withdrawals, the table built from
fast-path shadow rules must forward every probe exactly like a fresh
optimal compilation of the same state — the two-stage scheme trades
space, never correctness.

The pairwise comparisons run through
:func:`repro.verification.oracle.compare_controllers` (the same checker
the differential fuzzer uses); the original ``egress_of`` assertions
remain as anchors so a regression in the checker itself cannot silently
hollow out this suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.policies import fwd, match
from repro.verification.oracle import compare_controllers

NAMES = ["A", "B", "C", "D"]
PREFIXES = [IPv4Prefix(f"{n}.0.0.0/8") for n in (30, 40, 50)]

announce_ops = st.tuples(
    st.just("announce"),
    st.sampled_from(NAMES),
    st.sampled_from(PREFIXES),
    st.integers(min_value=1, max_value=4),   # extra path length
)
withdraw_ops = st.tuples(
    st.just("withdraw"),
    st.sampled_from(NAMES),
    st.sampled_from(PREFIXES),
    st.just(0),
)
operations = st.lists(st.one_of(announce_ops, withdraw_ops),
                      min_size=1, max_size=10)


def build_base() -> SdxController:
    sdx = SdxController()
    for index, name in enumerate(NAMES):
        sdx.add_participant(name, 65001 + index)
    sdx.announce_route("B", PREFIXES[0], AsPath([65002, 111]))
    sdx.announce_route("C", PREFIXES[1], AsPath([65003, 222]))
    sdx.participant("A").participant.add_outbound(
        (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C")))
    sdx.participant("D").participant.add_outbound(
        match(protocol=17) >> fwd("C"))
    sdx.start()
    return sdx


def apply_ops(sdx: SdxController, ops) -> None:
    for action, who, prefix, extra in ops:
        if action == "announce":
            asn = 65001 + NAMES.index(who)
            path = AsPath([asn] + [64512 + i for i in range(extra)])
            sdx.announce_route(who, prefix, path)
        else:
            sdx.withdraw_route(who, prefix)


def probes():
    for prefix in PREFIXES:
        for dstport in (80, 443, 22):
            for protocol in (6, 17):
                yield Packet(dstip=prefix.first_address + 1, dstport=dstport,
                             srcip="10.0.0.1", protocol=protocol)


class TestIncrementalEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(operations)
    def test_fast_path_matches_fresh_compilation_property(self, ops):
        churned = build_base()
        apply_ops(churned, ops)   # fast-path shadow rules live here

        fresh = build_base()
        apply_ops(fresh, ops)
        fresh.run_background_recompilation()   # optimal table

        probe_list = list(probes())
        violations = compare_controllers(fresh, churned, probe_list,
                                         senders=NAMES)
        assert not violations, (
            f"fast path diverged after {ops}: {violations[0]}")
        # Anchor: the original direct egress assertion, one probe per
        # prefix, so this test fails even if compare_controllers breaks.
        for probe in probe_list[::6]:
            for sender in NAMES:
                assert (churned.egress_of(sender, probe)
                        == fresh.egress_of(sender, probe))

    @settings(max_examples=20, deadline=None)
    @given(operations)
    def test_background_recompilation_is_idempotent_property(self, ops):
        sdx = build_base()
        apply_ops(sdx, ops)
        sdx.run_background_recompilation()
        before = {
            (sender, index): sdx.egress_of(sender, probe)
            for sender in NAMES
            for index, probe in enumerate(probes())
        }
        sdx.engine.dirty = True
        sdx.run_background_recompilation()
        after = {
            (sender, index): sdx.egress_of(sender, probe)
            for sender in NAMES
            for index, probe in enumerate(probes())
        }
        assert before == after
