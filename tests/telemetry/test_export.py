"""Tests for the JSON and Prometheus exporters, and structured logging."""

import io
import json
import logging

from repro.telemetry import Telemetry
from repro.telemetry.export import (
    prometheus_exposition,
    render_json,
)
from repro.telemetry.log import configure_logging, kv
from repro.telemetry.registry import MetricsRegistry


class TestJsonExport:
    def test_render_json_round_trips(self):
        telemetry = Telemetry()
        telemetry.registry.counter("sdx_events_total").inc(4)
        with telemetry.span("work", items=2):
            pass
        data = json.loads(render_json(telemetry))
        assert data["metrics"]["sdx_events_total"] == 4
        assert data["spans"][0]["name"] == "work"
        assert data["spans"][0]["tags"] == {"items": 2}
        assert data["spans_dropped"] == 0


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("sdx_events_total", "Things that happened").inc(3)
        registry.gauge("sdx_level", "Current level").set(2.5)
        text = prometheus_exposition(registry)
        assert "# HELP sdx_events_total Things that happened" in text
        assert "# TYPE sdx_events_total counter" in text
        assert "sdx_events_total 3" in text
        assert "# TYPE sdx_level gauge" in text
        assert "sdx_level 2.5" in text
        assert text.endswith("\n")

    def test_labelled_series_share_one_header(self):
        registry = MetricsRegistry()
        registry.counter("sdx_mods_total", "Mods", op="add").inc()
        registry.counter("sdx_mods_total", "Mods", op="delete").inc(2)
        text = prometheus_exposition(registry)
        assert text.count("# TYPE sdx_mods_total counter") == 1
        assert 'sdx_mods_total{op="add"} 1' in text
        assert 'sdx_mods_total{op="delete"} 2' in text

    def test_histogram_as_summary(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("sdx_latency_seconds", "Latency")
        for value in (0.01, 0.02, 0.03):
            histogram.observe(value)
        text = prometheus_exposition(registry)
        assert "# TYPE sdx_latency_seconds summary" in text
        assert 'sdx_latency_seconds{quantile="0.5"}' in text
        assert 'sdx_latency_seconds{quantile="0.99"}' in text
        assert "sdx_latency_seconds_sum" in text
        assert "sdx_latency_seconds_count 3" in text

    def test_empty_registry(self):
        assert prometheus_exposition(MetricsRegistry()) == ""


class TestKv:
    def test_basic_pairs(self):
        assert kv(a=1, b="x") == "a=1 b=x"

    def test_floats_compact(self):
        assert kv(seconds=0.03125) == "seconds=0.03125"
        assert kv(seconds=1 / 3) == "seconds=0.333333"

    def test_whitespace_quoted(self):
        assert kv(msg="two words") == 'msg="two words"'


class TestConfigureLogging:
    def test_structured_line_format(self):
        stream = io.StringIO()
        logger = configure_logging("INFO", stream=stream)
        try:
            logging.getLogger("repro.test.module").info(
                "recompiled %s", kv(rules=10))
            line = stream.getvalue().strip()
            assert line.startswith("ts=")
            assert "level=INFO" in line
            assert "logger=repro.test.module" in line
            assert 'msg="recompiled rules=10"' in line
        finally:
            for handler in list(logger.handlers):
                if handler.name == "repro-telemetry":
                    logger.removeHandler(handler)

    def test_idempotent(self):
        stream = io.StringIO()
        logger = configure_logging("INFO", stream=stream)
        configure_logging("DEBUG", stream=stream)
        try:
            ours = [h for h in logger.handlers if h.name == "repro-telemetry"]
            assert len(ours) == 1
            assert logger.level == logging.DEBUG
        finally:
            for handler in list(logger.handlers):
                if handler.name == "repro-telemetry":
                    logger.removeHandler(handler)
