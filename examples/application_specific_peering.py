#!/usr/bin/env python3
"""The Figure 5a deployment experiment: application-specific peering.

Recreates the paper's live demonstration (Section 5.2): a client ISP
(AS C) reaches an AWS prefix via two transit ASes. At t=565 s it installs
a policy diverting port-80 traffic via AS B; at t=1253 s AS B withdraws
its route (emulating a failure) and all traffic returns to AS A — with
the SDX keeping the data plane in sync with BGP throughout.

The timeline is compressed 10x by default; pass ``--full`` for the
paper's real 1800-second timeline.

Run with::

    python examples/application_specific_peering.py
"""

import sys

from repro.experiments.harness import run_fig5a
from repro.experiments.metrics import render_series


def build():
    """The Figure 5a exchange with the port-80 policy installed.

    Mirrors the harness's mid-timeline state (after t=565 s) so the
    static policy verifier can lint the deployment's steady state.
    """
    from repro import fwd, match
    from repro.bgp.asn import AsPath
    from repro.core.controller import SdxController
    from repro.experiments.harness import AWS_PREFIX

    sdx = SdxController()
    sdx.add_participant("A", 65001)   # transit via Wisconsin
    sdx.add_participant("B", 65002)   # transit via Clemson
    client = sdx.add_participant("C", 65003)
    sdx.announce_route("A", AWS_PREFIX, AsPath([65001, 2381, 14618]))
    sdx.announce_route("B", AWS_PREFIX, AsPath([65002, 12148, 7843, 14618]))
    client.add_outbound(match(dstport=80) >> fwd("B"))
    return sdx


def main() -> None:
    time_scale = 1.0 if "--full" in sys.argv else 0.1
    series, events = run_fig5a(time_scale=time_scale)

    print("Figure 5a: traffic rate per path (Mbps), three 1 Mbps UDP flows")
    print()
    for when, label in events:
        print(f"  t={when:7.1f}s  event: {label}")
    print()
    print(render_series(
        [series[label] for label in sorted(series)],
        x_label="time(s)", y_label="Mbps", max_rows=25))
    print()

    a_series, b_series = series["A"], series["B"]
    print("expected shape (paper): all 3 Mbps via A, then 1 Mbps (port 80)")
    print("shifts to B after the policy, then back to A after withdrawal.")
    print(f"observed: start A={a_series.ys()[0]} B={b_series.ys()[0]}, "
          f"mid A={a_series.ys()[len(a_series.points) // 2]} "
          f"B={b_series.ys()[len(b_series.points) // 2]}, "
          f"end A={a_series.ys()[-1]} B={b_series.ys()[-1]}")


if __name__ == "__main__":
    main()
