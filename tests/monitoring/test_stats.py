"""Tests for the flow-stats collector (repro.monitoring.stats)."""

import pytest

from repro.monitoring.stats import FlowStatsCollector, fec_label
from repro.net.addresses import IPv4Prefix
from repro.southbound.diff import FlowMod, FlowModOp

from tests.monitoring.conftest import EAST_PREFIX, WEST_PREFIX, send_bytes

MBIT = 1_000_000 // 8  # bytes whose delta over 1 s is exactly 1 Mbps


def hot_rule(sdx):
    """The installed rule carrying the most bytes."""
    return max(sdx.table.rules, key=sdx.table.bytes_matched)


class TestFecLabel:
    def test_announced_prefix_maps_to_group_representative(self, sdx):
        group = sdx.allocator.group_of(EAST_PREFIX)
        assert group is not None
        assert fec_label(sdx, EAST_PREFIX) == str(group.representative)

    def test_unknown_prefix_falls_back_to_itself(self, sdx):
        assert fec_label(sdx, IPv4Prefix("99.0.0.0/8")) == "99.0.0.0/8"


class TestSampling:
    def test_first_sample_has_zero_interval_and_rates(self, sdx):
        send_bytes(sdx, EAST_PREFIX, 5 * MBIT)
        sample = FlowStatsCollector(sdx).sample(7.0)
        assert sample.sampled_at == 7.0
        assert sample.interval == 0.0
        assert sample.total_rate_mbps == 0.0
        # Cumulative totals are still booked even though rates are not.
        east = fec_label(sdx, EAST_PREFIX)
        assert sample.fec_rate(east) == 0.0
        assert {v.key: v.bytes for v in sample.fecs}[east] == 5 * MBIT

    def test_rate_is_delta_bytes_over_interval(self, sdx):
        collector = FlowStatsCollector(sdx)
        collector.sample(0.0)
        send_bytes(sdx, EAST_PREFIX, 8 * MBIT)
        sample = collector.sample(1.0)
        assert sample.interval == 1.0
        assert sample.fec_rate(fec_label(sdx, EAST_PREFIX)) == pytest.approx(8.0)
        assert sample.total_rate_mbps == pytest.approx(8.0)

    def test_interval_scales_the_rate(self, sdx):
        collector = FlowStatsCollector(sdx)
        collector.sample(0.0)
        send_bytes(sdx, EAST_PREFIX, 8 * MBIT)
        sample = collector.sample(2.0)  # same bytes over twice the time
        assert sample.fec_rate(fec_label(sdx, EAST_PREFIX)) == pytest.approx(4.0)

    def test_attribution_covers_participant_and_port_axes(self, sdx):
        collector = FlowStatsCollector(sdx)
        collector.sample(0.0)
        send_bytes(sdx, EAST_PREFIX, 3 * MBIT)
        send_bytes(sdx, WEST_PREFIX, 1 * MBIT)
        sample = collector.sample(1.0)
        rates = {v.key: v.rate_mbps for v in sample.participants}
        assert rates["East"] == pytest.approx(3.0)
        assert rates["West"] == pytest.approx(1.0)
        # Each participant's bytes landed on its own switch port.
        port_rates = {v.key: v.rate_mbps for v in sample.ports}
        (east_port,) = sdx.participant("East").participant.switch_ports
        (west_port,) = sdx.participant("West").participant.switch_ports
        assert port_rates[str(east_port)] == pytest.approx(3.0)
        assert port_rates[str(west_port)] == pytest.approx(1.0)

    def test_ewma_smooths_toward_new_rate(self, sdx):
        collector = FlowStatsCollector(sdx, ewma_alpha=0.25)
        collector.sample(0.0)
        send_bytes(sdx, EAST_PREFIX, 8 * MBIT)
        east = fec_label(sdx, EAST_PREFIX)
        first = collector.sample(1.0)
        # The baseline sample seeded the EWMA at 0, so one 8 Mbps
        # interval pulls it up by alpha...
        assert first.fec_rate(east) == pytest.approx(8.0)
        assert first.fec_rate(east, smoothed=True) == pytest.approx(2.0)
        # ...and a silent interval decays it by (1 - alpha).
        second = collector.sample(2.0)
        assert second.fec_rate(east) == 0.0
        assert second.fec_rate(east, smoothed=True) == pytest.approx(1.5)

    def test_unseen_keys_read_zero(self, sdx):
        sample = FlowStatsCollector(sdx).sample(0.0)
        assert sample.fec_rate("203.0.113.0/24") == 0.0
        assert sample.port_rate(999) == 0.0

    def test_alpha_validation(self, sdx):
        with pytest.raises(ValueError):
            FlowStatsCollector(sdx, ewma_alpha=0.0)
        with pytest.raises(ValueError):
            FlowStatsCollector(sdx, ewma_alpha=1.5)

    def test_to_dict_is_json_shaped(self, sdx):
        collector = FlowStatsCollector(sdx)
        collector.sample(0.0)
        send_bytes(sdx, EAST_PREFIX, MBIT)
        payload = collector.sample(1.0).to_dict()
        assert payload["interval_seconds"] == 1.0
        assert payload["total_rate_mbps"] == pytest.approx(1.0)
        east = fec_label(sdx, EAST_PREFIX)
        assert payload["fecs"][east]["rate_mbps"] == pytest.approx(1.0)
        assert payload["rules"] == len(sdx.table)


class TestCookieKeyedDeltas:
    """The collector keys per-rule state by table cookie, so counter
    continuations (MODIFY) and resets (delete + re-add) are never
    confused — the exact bug class that produced phantom rate spikes."""

    def test_modify_in_place_continues_the_delta_stream(self, sdx):
        collector = FlowStatsCollector(sdx)
        collector.sample(0.0)
        send_bytes(sdx, EAST_PREFIX, 8 * MBIT)
        collector.sample(1.0)
        rule = hot_rule(sdx)
        # Rewrite the rule's actions at the same key: counters (and the
        # cookie) transfer to the replacement object.
        sdx.table.apply_mod(FlowMod(
            op=FlowModOp.MODIFY, priority=rule.priority, match=rule.match,
            actions=tuple(reversed(rule.actions)) or rule.actions[:1]))
        sample = collector.sample(2.0)
        # No traffic since the last sample: the modified rule must NOT
        # replay its cumulative history as a fresh delta.
        assert sample.total_rate_mbps == 0.0

    def test_delete_and_readd_restarts_from_zero(self, sdx):
        collector = FlowStatsCollector(sdx)
        collector.sample(0.0)
        send_bytes(sdx, EAST_PREFIX, 8 * MBIT)
        collector.sample(1.0)
        rule = hot_rule(sdx)
        sdx.table.apply_mod(FlowMod(op=FlowModOp.DELETE, priority=rule.priority,
                                    match=rule.match))
        sdx.table.apply_mod(FlowMod(op=FlowModOp.ADD, priority=rule.priority,
                                    match=rule.match, actions=rule.actions))
        send_bytes(sdx, EAST_PREFIX, 4 * MBIT)
        sample = collector.sample(2.0)
        # Fresh cookie: the delta is exactly the new rule's own bytes.
        assert sample.fec_rate(fec_label(sdx, EAST_PREFIX)) == pytest.approx(4.0)

    def test_aggregates_survive_rule_churn(self, sdx):
        collector = FlowStatsCollector(sdx)
        collector.sample(0.0)
        send_bytes(sdx, EAST_PREFIX, 8 * MBIT)
        collector.sample(1.0)
        rule = hot_rule(sdx)
        sdx.table.apply_mod(FlowMod(op=FlowModOp.DELETE, priority=rule.priority,
                                    match=rule.match))
        sdx.table.apply_mod(FlowMod(op=FlowModOp.ADD, priority=rule.priority,
                                    match=rule.match, actions=rule.actions))
        send_bytes(sdx, EAST_PREFIX, 4 * MBIT)
        sample = collector.sample(2.0)
        # Cumulative FEC bytes keep the pre-churn history.
        east = fec_label(sdx, EAST_PREFIX)
        assert {v.key: v.bytes for v in sample.fecs}[east] == 12 * MBIT


class TestMetrics:
    def test_sample_exports_dataplane_families(self, sdx):
        registry = sdx.telemetry.registry
        collector = FlowStatsCollector(sdx)
        collector.sample(0.0)
        send_bytes(sdx, EAST_PREFIX, 8 * MBIT)
        sample = collector.sample(1.0)
        assert registry.get("sdx_dataplane_samples_total").value == 2
        assert registry.get("sdx_dataplane_monitored_rules").value == len(
            sample.rules)
        assert registry.get("sdx_dataplane_rate_mbps").value == pytest.approx(8.0)
        per_participant = registry.get(
            "sdx_dataplane_participant_rate_mbps", participant="East")
        assert per_participant is not None
        assert per_participant.value == pytest.approx(8.0)
