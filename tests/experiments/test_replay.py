"""Tests for the burst-aware trace replayer."""

import pytest

from repro.experiments.replay import TraceReplayer
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import generate_ixp
from repro.workloads.updates import generate_trace


def make_controller(participants=40, prefixes=400):
    ixp = generate_ixp(participants, prefixes, seed=0)
    controller = ixp.build_controller()
    install_assignments(controller, generate_policies(ixp, seed=1))
    controller.start()
    return controller, ixp


class TestTraceReplayer:
    def test_requires_started_controller(self):
        ixp = generate_ixp(10, 50, seed=0)
        controller = ixp.build_controller()
        with pytest.raises(ValueError):
            TraceReplayer(controller)

    def test_replays_every_update(self):
        controller, ixp = make_controller()
        events = generate_trace(ixp, seed=2, max_updates=60)
        stats = TraceReplayer(controller).replay(events)
        assert stats.updates_replayed == 60
        assert len(stats.fast_path_seconds) == 60
        assert len(stats.table_sizes) == 60

    def test_background_runs_between_bursts(self):
        controller, ixp = make_controller()
        events = generate_trace(ixp, seed=2, max_updates=60)
        stats = TraceReplayer(controller,
                              background_gap_seconds=10.0).replay(events)
        # The trace's inter-arrivals exceed 10 s ~75% of the time, so the
        # replayer must have found many re-optimisation windows.
        assert stats.background_runs > 10
        # And the final state is clean.
        assert controller.engine.fast_path_rules_live == 0
        assert not controller.engine.dirty

    def test_huge_gap_threshold_defers_everything(self):
        controller, ixp = make_controller()
        events = generate_trace(ixp, seed=2, max_updates=40)
        stats = TraceReplayer(
            controller, background_gap_seconds=1e9).replay(
                events, final_background=False)
        assert stats.background_runs == 0
        assert controller.engine.dirty
        assert stats.peak_extra_rules > 0

    def test_final_background_cleans_up(self):
        controller, ixp = make_controller()
        events = generate_trace(ixp, seed=2, max_updates=20)
        stats = TraceReplayer(
            controller, background_gap_seconds=1e9).replay(events)
        assert stats.background_runs == 1
        assert controller.engine.fast_path_rules_live == 0

    def test_summary_renders(self):
        controller, ixp = make_controller()
        events = generate_trace(ixp, seed=2, max_updates=20)
        stats = TraceReplayer(controller).replay(events)
        text = stats.summary()
        assert "20 updates" in text
        assert "fast path median" in text

    def test_peak_rules_exceed_final(self):
        controller, ixp = make_controller()
        events = generate_trace(ixp, seed=2, max_updates=60)
        stats = TraceReplayer(controller).replay(events)
        assert stats.peak_extra_rules >= 0
        assert stats.fast_path_cdf.quantile(0.99) < 1.0
