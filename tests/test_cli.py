"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import EXPERIMENTS, main


class TestCli:
    def test_list_default(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1", "--scale", "0.0005"]) == 0
        out = capsys.readouterr().out
        assert "AMS-IX" in out and "DE-CIX" in out and "LINX" in out

    def test_fig5a(self, capsys):
        assert main(["fig5a", "--time-scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "application-specific peering policy" in out
        assert "route withdrawal" in out

    def test_fig5b(self, capsys):
        assert main(["fig5b", "--time-scale", "0.05"]) == 0
        assert "load-balance policy" in capsys.readouterr().out

    def test_fig6_custom_sizes(self, capsys):
        assert main(["fig6", "--participants", "20", "40",
                     "--prefixes", "300", "600"]) == 0
        out = capsys.readouterr().out
        assert "20 participants" in out
        assert "prefix groups" in out

    def test_fig7(self, capsys):
        assert main(["fig7", "--participants", "20",
                     "--prefixes", "200"]) == 0
        assert "flow rules" in capsys.readouterr().out

    def test_fig8(self, capsys):
        assert main(["fig8", "--participants", "20",
                     "--prefixes", "200"]) == 0
        assert "compile seconds" in capsys.readouterr().out

    def test_fig9(self, capsys):
        assert main(["fig9", "--participants", "20", "--bursts", "1", "3",
                     "--prefixes", "200"]) == 0
        assert "additional rules" in capsys.readouterr().out

    def test_fig10(self, capsys):
        assert main(["fig10", "--participants", "20", "--updates", "10",
                     "--prefixes", "200"]) == 0
        assert "median ms" in capsys.readouterr().out

    def test_replay(self, capsys):
        assert main(["replay", "--participants", "20", "--prefixes", "200",
                     "--updates", "20"]) == 0
        out = capsys.readouterr().out
        assert "fast path median" in out

    def test_stats_table(self, capsys):
        assert main(["stats", "--participants", "8", "--prefixes", "60",
                     "--updates", "5"]) == 0
        out = capsys.readouterr().out
        assert "sdx_bgp_updates_total" in out
        assert "sdx_compile_seconds" in out
        assert "sdx_southbound_flowmods_total" in out

    def test_stats_json(self, capsys):
        import json
        assert main(["stats", "--participants", "8", "--prefixes", "60",
                     "--updates", "5", "--format", "json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["metrics"]["sdx_bgp_updates_total"] > 0
        assert data["spans"], "span tree must survive the JSON export"

    def test_stats_prometheus(self, capsys):
        assert main(["stats", "--participants", "8", "--prefixes", "60",
                     "--updates", "5", "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE sdx_bgp_updates_total counter" in out
        assert 'sdx_compile_stage_seconds{stage="composition",quantile' in out

    def test_trace_text(self, capsys):
        assert main(["trace", "--participants", "8", "--prefixes", "60",
                     "--updates", "5"]) == 0
        out = capsys.readouterr().out
        assert "bgp.ingest" in out
        assert "flowtable.apply" in out

    def test_trace_json(self, capsys):
        import json
        assert main(["trace", "--participants", "8", "--prefixes", "60",
                     "--updates", "5", "--json"]) == 0
        roots = json.loads(capsys.readouterr().out)
        assert any(root["name"] == "bgp.ingest" for root in roots)

    def test_fuzz_clean_session(self, capsys):
        assert main(["fuzz", "--seed", "7", "--scenarios", "2",
                     "--steps", "6"]) == 0
        out = capsys.readouterr().out
        assert "fuzz seed=7: 2 scenario(s)" in out
        assert "no divergence found" in out

    def test_fuzz_finding_saves_artifact_and_replays(self, tmp_path,
                                                     capsys, monkeypatch):
        from repro.core.incremental import IncrementalEngine
        monkeypatch.setattr(IncrementalEngine, "_fast_path_for_prefix",
                            lambda self, prefix, views=None: 0)
        assert main(["fuzz", "--seed", "3", "--scenarios", "1",
                     "--steps", "8", "--artifact-dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "FAIL scenario#0" in out
        artifacts = list(tmp_path.glob("failure-*.json"))
        assert len(artifacts) == 1

        # Replay on the still-broken tree reproduces the failure...
        assert main(["fuzz", "--replay", str(artifacts[0])]) == 1
        assert "incremental-vs-reference" in capsys.readouterr().out
        # ...and on the fixed tree comes back clean.
        monkeypatch.undo()
        assert main(["fuzz", "--replay", str(artifacts[0])]) == 0
        assert "no failure reproduced" in capsys.readouterr().out

    def test_fuzz_runtime_mode(self, capsys):
        assert main(["fuzz", "--seed", "7", "--scenarios", "1",
                     "--steps", "6", "--runtime"]) == 0
        assert "no divergence found" in capsys.readouterr().out

    def test_fuzz_federation_mode(self, capsys):
        assert main(["fuzz", "--seed", "7", "--scenarios", "2",
                     "--steps", "4", "--federation"]) == 0
        out = capsys.readouterr().out
        assert "fuzz seed=7: 2 scenario(s)" in out
        assert "no divergence found" in out

    def test_fuzz_federation_three_exchanges(self, capsys):
        assert main(["fuzz", "--seed", "11", "--scenarios", "1",
                     "--steps", "3", "--federation",
                     "--exchanges", "3"]) == 0
        assert "no divergence found" in capsys.readouterr().out

    def test_soak_step_driven(self, capsys):
        assert main(["soak", "--participants", "8", "--prefixes", "60",
                     "--updates", "80", "--burst-size", "40",
                     "--hot-prefixes", "6"]) == 0
        out = capsys.readouterr().out
        assert "step-driven mode" in out
        assert "route-server submissions" in out
        assert "coalesced" in out
        assert "degraded now: False" in out
        assert "fast-path debt 0" in out

    def test_soak_threaded_shed(self, capsys):
        assert main(["soak", "--participants", "8", "--prefixes", "60",
                     "--updates", "80", "--burst-size", "40",
                     "--hot-prefixes", "6", "--threaded",
                     "--overload", "shed-oldest", "--no-coalesce"]) == 0
        out = capsys.readouterr().out
        assert "threaded mode" in out
        assert "overload=shed-oldest" in out

    def test_soak_in_listing(self, capsys):
        assert main(["list"]) == 0
        assert "soak" in capsys.readouterr().out

    def test_unknown_command_fails(self):
        with pytest.raises(SystemExit):
            main(["figure-nine"])


class TestLintPolicies:
    def config_document(self):
        from repro.bgp.asn import AsPath
        from repro.config import export_config
        from repro.core.controller import SdxController
        from repro.net.addresses import IPv4Prefix
        from repro.policy.policies import fwd, match

        sdx = SdxController()
        sdx.add_participant("A", 65001)
        sdx.add_participant("B", 65002)
        sdx.announce_route("B", IPv4Prefix("20.0.0.0/8"),
                           AsPath([65002, 100]))
        sdx.participant("A").add_outbound(match(dstport=80) >> fwd("B"))
        return export_config(sdx)

    def write_config(self, tmp_path, document):
        import json

        path = tmp_path / "exchange.json"
        path.write_text(json.dumps(document))
        return str(path)

    def examples_dir(self):
        import os

        return os.path.join(os.path.dirname(__file__), "..", "examples")

    def test_lint_in_listing(self, capsys):
        assert main(["list"]) == 0
        assert "lint-policies" in capsys.readouterr().out

    def test_nothing_to_lint_exits_2(self, capsys):
        assert main(["lint-policies"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_clean_config_passes(self, tmp_path, capsys):
        path = self.write_config(tmp_path, self.config_document())
        assert main(["lint-policies", path]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_bad_config_fails_with_diagnostics(self, tmp_path, capsys):
        document = self.config_document()
        document["policies"].append({
            "participant": "A", "direction": "out",
            "clause": {"match": {"kind": "match",
                                 "fields": {"dstmac": "a2:00:00:00:00:07"}},
                       "fwd": "B"}})
        path = self.write_config(tmp_path, document)
        assert main(["lint-policies", path]) == 1
        assert "SDX004" in capsys.readouterr().out

    def test_json_output_and_artifact(self, tmp_path, capsys):
        import json

        path = self.write_config(tmp_path, self.config_document())
        artifact = tmp_path / "lint.json"
        assert main(["lint-policies", path, "--json",
                     "--output", str(artifact)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["targets"][0]["summary"]["ok"] is True
        assert json.loads(artifact.read_text()) == payload

    def test_examples_lint_clean(self, capsys):
        assert main(["lint-policies", "--examples", self.examples_dir()]) == 0
        out = capsys.readouterr().out
        assert "quickstart" in out
        assert "synthetic_ixp" in out

    def test_defect_recall_is_total(self, capsys):
        assert main(["lint-policies", "--defects",
                     "--participants", "8", "--prefixes", "16"]) == 0
        out = capsys.readouterr().out
        assert "defect recall: 6/6 detected" in out

    def test_federation_defect_recall_is_total(self, capsys):
        assert main(["lint-policies", "--federation-defects"]) == 0
        out = capsys.readouterr().out
        assert "defect recall: 2/2 detected" in out
        assert "SDX008" in out
        assert "SDX009" in out

    def test_check_command_reports_statics(self, tmp_path, capsys):
        path = self.write_config(tmp_path, self.config_document())
        assert main(["check", path]) == 0
        out = capsys.readouterr().out
        assert "compiled:" in out
        assert "statics:" in out


class TestMonitorCommand:
    SHORT = ["monitor", "--duration", "20", "--shift-time", "5"]

    def test_monitor_in_listing(self, capsys):
        assert main(["list"]) == 0
        assert "monitor" in capsys.readouterr().out

    def test_snapshot_reports_the_loop(self, capsys):
        assert main(self.SHORT) == 0
        out = capsys.readouterr().out
        assert "rebalances" in out
        assert "reaction_seconds" in out
        assert "last sample" in out

    def test_watch_prints_a_line_per_sample(self, capsys):
        assert main(self.SHORT + ["--watch"]) == 0
        lines = [line for line in capsys.readouterr().out.splitlines()
                 if line.startswith("t=")]
        # One line per cadence tick over the simulated 20 seconds.
        assert len(lines) == 20
        assert "Mbps" in lines[0]

    def test_json_payload_round_trips(self, capsys):
        import json

        assert main(self.SHORT + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["scenario"] == "shifting"
        assert payload["report"]["rebalances"] >= 1
        assert payload["last_sample"]["fecs"]

    def test_skewed_scenario(self, capsys):
        import json

        assert main(["monitor", "--scenario", "skewed", "--duration", "20",
                     "--shift-time", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["scenario"] == "skewed"
        assert payload["report"]["offloaded"]

    def test_smoke_converges_and_writes_artifact(self, tmp_path, capsys):
        import json

        artifact = tmp_path / "monitor.json"
        assert main(self.SHORT + ["--smoke", "--output",
                                  str(artifact)]) == 0
        assert "converged within 8 steps: True" in capsys.readouterr().out
        payload = json.loads(artifact.read_text())
        assert payload["converged"] is True
        assert payload["report"]["reaction_seconds"] is not None

    def test_smoke_failure_exits_1(self, capsys):
        # An impossible reaction budget forces the smoke gate to fail.
        assert main(self.SHORT + ["--smoke", "--converge-within", "0"]) == 1
        assert "False" in capsys.readouterr().out
