"""The IXP layer-two fabric tying routers, switch, and ARP together.

In the simplest case (and the paper's deployment) the fabric is a single
SDN switch. :class:`Fabric` owns that switch, the exchange ARP service,
and the attachment map from switch ports to participant router ports; it
moves packets router → switch → router and records deliveries so the
traffic experiments can observe which egress each flow takes.

A multi-switch extension (Section 4.1 mentions Pyretic's topology
abstraction for this) lives in :mod:`repro.dataplane.multiswitch`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dataplane.arp import ArpService
from repro.dataplane.router import BorderRouter
from repro.dataplane.switch import SoftwareSwitch
from repro.exceptions import FabricError
from repro.net.packet import Packet


@dataclass(frozen=True)
class PortAttachment:
    """One switch port wired to one router interface."""

    switch_port: int
    router: BorderRouter
    router_port_index: int


@dataclass(frozen=True)
class Delivery:
    """A packet handed to a participant router, with its fate."""

    participant: str
    switch_port: int
    packet: Packet
    accepted: bool


class Fabric:
    """A single-switch IXP fabric with an attachment registry."""

    def __init__(self, switch: Optional[SoftwareSwitch] = None):
        self.switch = switch or SoftwareSwitch()
        self.arp = ArpService()
        self._attachments: Dict[int, PortAttachment] = {}
        self._routers: Dict[str, BorderRouter] = {}
        self.deliveries: List[Delivery] = []

    def attach(self, router: BorderRouter, router_port_index: int,
               switch_port: int) -> PortAttachment:
        """Wire one router interface to one switch port.

        Registers the interface address in the exchange ARP service and
        points the router's resolver at it.
        """
        if switch_port in self._attachments:
            raise FabricError(f"switch port {switch_port} already attached")
        if not 0 <= router_port_index < len(router.ports):
            raise FabricError(
                f"router {router.name!r} has no port index {router_port_index}")
        port = router.ports[router_port_index]
        if port.switch_port is not None:
            raise FabricError(
                f"router port {router.name}[{router_port_index}] already attached")
        self.switch.add_port(switch_port)
        port.switch_port = switch_port
        self.arp.add_static(port.ip, port.mac)
        router.set_resolver(self.arp.resolve)
        attachment = PortAttachment(switch_port, router, router_port_index)
        self._attachments[switch_port] = attachment
        self._routers[router.name] = router
        return attachment

    def router(self, name: str) -> BorderRouter:
        """The attached router called ``name``."""
        try:
            return self._routers[name]
        except KeyError:
            raise FabricError(f"no router {name!r} attached to fabric") from None

    def routers(self) -> Tuple[BorderRouter, ...]:
        """Every attached router, sorted by name."""
        return tuple(self._routers[name] for name in sorted(self._routers))

    def attachment_at(self, switch_port: int) -> PortAttachment:
        """The attachment on ``switch_port``."""
        try:
            return self._attachments[switch_port]
        except KeyError:
            raise FabricError(f"nothing attached at switch port {switch_port}") from None

    def ports_of(self, router_name: str) -> Tuple[int, ...]:
        """Switch ports belonging to ``router_name``, in interface order."""
        router = self.router(router_name)
        return tuple(
            port.switch_port for port in router.ports if port.switch_port is not None)

    def send(self, packet: Packet, *,
             size_bytes: Optional[int] = None) -> List[Delivery]:
        """Push one already-located packet through the switch.

        Returns the deliveries made (empty when the switch dropped it).
        ``size_bytes`` attributes that volume to per-rule and per-port
        byte counters (monitoring); ``None`` means a default-size packet.
        """
        deliveries: List[Delivery] = []
        for egress, result in self.switch.process(packet, size_bytes=size_bytes):
            attachment = self._attachments.get(egress)
            if attachment is None:
                continue
            accepted = attachment.router.receive(result)
            delivery = Delivery(attachment.router.name, egress, result, accepted)
            self.deliveries.append(delivery)
            deliveries.append(delivery)
        return deliveries

    def originate(self, router_name: str, packet: Packet, *,
                  size_bytes: Optional[int] = None) -> List[Delivery]:
        """Have a participant source a packet from inside its AS.

        The router performs its FIB lookup/MAC stamping (:meth:`emit`),
        then the fabric forwards the frame. A FIB miss returns no
        deliveries, like a routerless blackhole would.
        """
        framed = self.router(router_name).emit(packet)
        if framed is None:
            return []
        return self.send(framed, size_bytes=size_bytes)

    def clear_deliveries(self) -> None:
        """Forget recorded deliveries (between measurement intervals)."""
        self.deliveries.clear()

    def __repr__(self) -> str:
        return f"Fabric({len(self._routers)} routers, {len(self._attachments)} ports)"
