"""Data-plane simulation: flow tables, switches, border routers, fabric.

The paper's prototype drove an Open vSwitch instance inside Mininet; this
subpackage is the equivalent simulated substrate. It processes the *same
compiled flow rules* the SDX controller emits, so end-to-end experiments
(Figures 5a/5b) exercise the real compiler output rather than a model of
it. Border routers reproduce the BGP-next-hop → ARP → destination-MAC
pipeline that the SDX exploits as the first stage of its multi-stage FIB
(Section 4.2, Figure 2).
"""

from repro.dataplane.flowtable import FlowTable
from repro.dataplane.switch import SoftwareSwitch
from repro.dataplane.arp import ArpResponder, ArpService
from repro.dataplane.router import BorderRouter, RouterPort
from repro.dataplane.fabric import Fabric, PortAttachment

__all__ = [
    "ArpResponder",
    "ArpService",
    "BorderRouter",
    "Fabric",
    "FlowTable",
    "PortAttachment",
    "RouterPort",
    "SoftwareSwitch",
]
