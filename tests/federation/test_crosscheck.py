"""Tests for the federated fuzzer cross-validation battery."""

from repro.federation import (
    generate_federated_corpus,
    generate_federated_scenario,
)
from repro.verification.federation import federation_crosscheck

from tests.federation.scenarios import (
    blackhole_scenario,
    clean_scenario,
    loop_scenario,
)


class TestHandScenarios:
    def test_loop_scenario_holds(self):
        scenario = loop_scenario()
        result = federation_crosscheck(
            scenario, generate_federated_corpus(scenario, size=6))
        assert result.ok, result.failure
        assert result.comparisons > 0

    def test_blackhole_scenario_holds(self):
        scenario = blackhole_scenario()
        result = federation_crosscheck(
            scenario, generate_federated_corpus(scenario, size=6))
        assert result.ok, result.failure

    def test_clean_scenario_holds(self):
        scenario = clean_scenario()
        result = federation_crosscheck(
            scenario, generate_federated_corpus(scenario, size=6))
        assert result.ok, result.failure


class TestGeneratedScenarios:
    def test_generated_scenarios_hold(self):
        for seed in (101, 202, 303):
            scenario = generate_federated_scenario(
                seed, exchanges=2, participants=6, policies=5, steps=4)
            result = federation_crosscheck(
                scenario, generate_federated_corpus(scenario, size=4))
            assert result.ok, (seed, result.failure)
            assert result.steps_executed == len(scenario.trace)

    def test_three_exchange_scenario_holds(self):
        scenario = generate_federated_scenario(
            404, exchanges=3, participants=8, shared=3, policies=6, steps=3)
        result = federation_crosscheck(
            scenario, generate_federated_corpus(scenario, size=4))
        assert result.ok, result.failure
