"""The top-level SDX controller (Figure 3).

:class:`SdxController` wires together every piece of the system:

* a :class:`~repro.bgp.routeserver.RouteServer` participants peer with;
* a simulated :class:`~repro.dataplane.fabric.Fabric` (switch + ARP +
  border routers) — optional, so control-plane-only experiments can scale
  to hundreds of participants without materialising routers;
* the :class:`~repro.core.compiler.SdxCompiler` and the two-stage
  :class:`~repro.core.incremental.IncrementalEngine`;
* VNH allocation and the ARP responder;
* the per-participant policy API (:mod:`repro.core.sdxpolicy`).

Event flow after :meth:`start`: a BGP update reaches the route server →
best-route changes fire the controller's listener → the incremental fast
path installs shadow rules and the new VNH is advertised to the affected
border routers → :meth:`run_background_recompilation` later swaps in the
optimal table (the paper runs this between update bursts; the simulation
makes it an explicit, deterministic call).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Announcement, Update, Withdrawal
from repro.bgp.rib import RouteEntry
from repro.bgp.routeserver import BestRouteChange, RouteServer
from repro.core.compiler import CompilationResult, SdxCompiler
from repro.core.incremental import FastPathResult, IncrementalEngine
from repro.core.participant import Participant
from repro.core.sdxpolicy import OwnershipRegistry, ParticipantHandle
from repro.core.vnh import DEFAULT_VNH_POOL, VnhAllocator
from repro.core.vswitch import VirtualTopology
from repro.dataplane.fabric import Delivery, Fabric
from repro.dataplane.flowtable import FlowTable
from repro.dataplane.router import BorderRouter, RouterPort
from repro.exceptions import ParticipantError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress
from repro.net.packet import Packet
from repro.southbound.engine import SouthboundConfig, SouthboundEngine
from repro.telemetry import Telemetry
from repro.telemetry.log import kv

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.runtime.clock import Clock
    from repro.runtime.loop import ControlPlaneRuntime, RuntimeConfig

logger = logging.getLogger("repro.core.controller")

#: The peering LAN participants' router ports live on.
PEERING_LAN = IPv4Prefix("172.0.0.0/16")

#: Base of the locally-administered MAC space used for router ports.
ROUTER_MAC_BASE = 0x02_00_00_00_00_00

#: Next-hop address used when a remote participant originates a prefix.
SDX_ORIGIN_IP = IPv4Address("172.0.255.254")


@dataclass(frozen=True)
class ClausePreview:
    """What one clause of a previewed policy would do."""

    description: str
    eligible_prefixes: Optional[int]
    eligible_groups: Optional[int]


@dataclass(frozen=True)
class PolicyPreview:
    """A what-if report for a policy that was *not* installed."""

    participant: str
    direction: str
    clauses: List[ClausePreview]

    @property
    def estimated_rules(self) -> int:
        """Rough flow-rule cost: one rule per eligible group per clause
        (one rule flat for drop/inbound clauses)."""
        return sum(
            clause.eligible_groups if clause.eligible_groups is not None else 1
            for clause in self.clauses)

    def render(self) -> str:
        """A printable summary."""
        lines = [f"preview: {self.participant} ({self.direction}), "
                 f"{len(self.clauses)} clause(s)"]
        for index, clause in enumerate(self.clauses):
            extra = ""
            if clause.eligible_prefixes is not None:
                extra = (f"  [{clause.eligible_prefixes} eligible prefixes"
                         + (f", {clause.eligible_groups} groups"
                            if clause.eligible_groups is not None else "")
                         + "]")
            lines.append(f"  #{index}: {clause.description}{extra}")
        return "\n".join(lines)


class SdxController:
    """The SDX: route server + policy compiler + (optional) data plane."""

    def __init__(self, *, use_vnh: bool = True, optimized: bool = True,
                 with_dataplane: bool = True, reduce_table: bool = True,
                 vnh_pool: IPv4Prefix = DEFAULT_VNH_POOL,
                 southbound_config: Optional[SouthboundConfig] = None,
                 telemetry: Optional[Telemetry] = None,
                 statics_mode: str = "off",
                 dataplane_statics_mode: str = "off"):
        if statics_mode not in ("off", "warn", "strict"):
            raise ValueError(
                f"statics_mode must be 'off', 'warn', or 'strict', "
                f"got {statics_mode!r}")
        if dataplane_statics_mode not in ("off", "warn", "strict"):
            raise ValueError(
                f"dataplane_statics_mode must be 'off', 'warn', or 'strict', "
                f"got {dataplane_statics_mode!r}")
        self.statics_mode = statics_mode
        self.dataplane_statics_mode = dataplane_statics_mode
        self.last_statics_report = None
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.route_server = RouteServer(telemetry=self.telemetry)
        self.topology = VirtualTopology()
        self.allocator = VnhAllocator(vnh_pool, telemetry=self.telemetry)
        self.fabric: Optional[Fabric] = Fabric() if with_dataplane else None
        if self.fabric is not None:
            self.fabric.arp.attach_responder(self.allocator.responder)
        self.table: FlowTable = (
            self.fabric.switch.table if self.fabric is not None else FlowTable())
        self.table.bind_telemetry(self.telemetry)
        self.southbound = SouthboundEngine(self.table, southbound_config,
                                           telemetry=self.telemetry)
        self.compiler = SdxCompiler(
            self.topology, self.route_server, self.allocator,
            use_vnh=use_vnh, optimized=optimized, reduce_table=reduce_table,
            telemetry=self.telemetry)
        self.engine = IncrementalEngine(
            self.topology, self.route_server, self.allocator,
            self.compiler, self.table, self.southbound,
            telemetry=self.telemetry)
        self.dataplane_verifier = None
        self._committed_spaces_cache: Optional[Tuple[Tuple[int, int], list]] = None
        if dataplane_statics_mode != "off":
            # Verifies every southbound apply window against the installed
            # table (SDX010-SDX014); strict mode rolls offending windows
            # back and raises StaticDataplaneError. Imported lazily so
            # repro.core keeps no hard dependency on repro.statics.
            from repro.statics.dataplane import DataplaneVerifier
            self.dataplane_verifier = DataplaneVerifier(
                self.table,
                committed_spaces=self._committed_spaces,
                vmac_index=self.allocator.vmac_index,
                mode=dataplane_statics_mode,
                telemetry=self.telemetry)
            self.southbound.add_observer(self.dataplane_verifier)
        self.ownership = OwnershipRegistry()
        self.started = False
        self.last_compilation: Optional[CompilationResult] = None
        self.fast_path_log: List[FastPathResult] = []
        self._handles: Dict[str, ParticipantHandle] = {}
        self._next_switch_port = 1
        self._next_host = 1
        self._next_mac = 1
        self.route_server.add_update_listener(self._on_update)
        self.route_server.set_next_hop_rewriter(self._rewrite_next_hop)

    def _committed_spaces(self) -> list:
        """Committed-traffic spaces, memoized on routing/allocator state.

        Deriving the population walks every (prefix, participant) best
        route — far too hot to redo on every FlowMod delta the dataplane
        verifier checks. The answer only changes when the route server's
        RIBs/export policies or the allocator's assignments do, so the
        walk is cached on their version counters.
        """
        from repro.statics.dataplane import committed_spaces_from_controller

        key = (self.route_server.state_version, self.allocator.generation)
        cached = self._committed_spaces_cache
        if cached is None or cached[0] != key:
            cached = (key, committed_spaces_from_controller(self))
            self._committed_spaces_cache = cached
        return cached[1]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, participants: Mapping[str, int], **kwargs) -> "SdxController":
        """Convenience constructor: one single-port participant per entry."""
        controller = cls(**kwargs)
        for name, asn in participants.items():
            controller.add_participant(name, asn)
        return controller

    def add_participant(self, name: str, asn: int, *, ports: int = 1,
                        local_prefixes: Iterable[IPv4Prefix] = (),
                        announce: bool = True) -> ParticipantHandle:
        """Register a participant with ``ports`` physical interfaces.

        ``ports=0`` creates a *remote* participant (virtual switch only).
        ``local_prefixes`` are registered in the ownership registry and —
        for physical participants with ``announce=True`` — announced to
        the route server with the participant's port address as next hop.
        """
        prefixes = tuple(local_prefixes)
        router: Optional[BorderRouter] = None
        if ports > 0:
            router_ports = [self._allocate_port() for _ in range(ports)]
            router = BorderRouter(name, asn, router_ports)
            for prefix in prefixes:
                router.add_local_prefix(prefix)
        participant = Participant(
            name=name, asn=asn, router=router, local_prefixes=prefixes)
        if router is not None and self.fabric is not None:
            for index in range(ports):
                self.fabric.attach(router, index, self._next_switch_port)
                self._next_switch_port += 1
        elif router is not None:
            # Control-plane-only mode: assign switch ports without a fabric.
            for port in router.ports:
                port.switch_port = self._next_switch_port
                self._next_switch_port += 1
        self.topology.register(participant)
        self.route_server.add_peer(name, asn)
        handle = ParticipantHandle(participant, self)
        self._handles[name] = handle
        for prefix in prefixes:
            self.ownership.register(prefix, name)
        if announce and router is not None:
            for prefix in prefixes:
                self.announce_route(name, prefix, AsPath([asn]))
        return handle

    def _allocate_port(self) -> RouterPort:
        mac = MacAddress(ROUTER_MAC_BASE + self._next_mac)
        ip = PEERING_LAN.first_address + self._next_host
        self._next_mac += 1
        self._next_host += 1
        if not PEERING_LAN.contains_address(ip):
            raise ParticipantError("peering LAN exhausted")
        return RouterPort(mac=mac, ip=ip)

    def participant(self, name: str) -> ParticipantHandle:
        """The policy handle of participant ``name``."""
        try:
            return self._handles[name]
        except KeyError:
            raise ParticipantError(f"unknown participant {name!r}") from None

    def participants(self) -> Tuple[ParticipantHandle, ...]:
        """Every participant handle, sorted by name."""
        return tuple(self._handles[name] for name in sorted(self._handles))

    # ------------------------------------------------------------------
    # Routing input
    # ------------------------------------------------------------------

    def announce_route(self, name: str, prefix: IPv4Prefix,
                       as_path: AsPath, *,
                       med: int = 0, local_pref: int = 100,
                       communities: Iterable[Tuple[int, int]] = ()) -> None:
        """Have participant ``name`` announce ``prefix`` to the SDX.

        Models both locally originated prefixes and transit routes learned
        upstream (longer AS paths). ``communities`` may carry route-server
        export-control values — ``(0, peer-asn)`` withholds the route from
        one peer (see :class:`~repro.bgp.routeserver.RouteServer`). Before
        :meth:`start` the announcement takes the bulk-load path (no
        diffing); afterwards it flows through the live update pipeline.
        """
        participant = self.topology.participant(name)
        next_hop = (participant.ports[0].ip if not participant.is_remote
                    else SDX_ORIGIN_IP)
        attributes = RouteAttributes(
            next_hop=next_hop, as_path=as_path, med=med,
            local_pref=local_pref, communities=frozenset(communities))
        update = Update.announce(name, prefix, attributes)
        self.submit_update(update)

    def withdraw_route(self, name: str, prefix: IPv4Prefix) -> None:
        """Have participant ``name`` withdraw ``prefix``."""
        self.submit_update(Update.withdraw(name, prefix))

    def submit_update(self, update: Update) -> None:
        """Deliver one BGP update into the SDX."""
        if self.started:
            self.route_server.submit(update)
        else:
            self.route_server.bulk_load([update])

    def load_routes(self, updates: Iterable[Update]) -> int:
        """Bulk-load an initial routing table (pre-start only path)."""
        return self.route_server.bulk_load(updates)

    def originate(self, name: str, prefix: IPv4Prefix,
                  as_path: Optional[AsPath] = None) -> None:
        """Originate ``prefix`` on behalf of ``name`` (ownership-checked)."""
        self.ownership.verify(name, prefix)
        participant = self.topology.participant(name)
        self.announce_route(name, prefix,
                            as_path if as_path is not None else AsPath([participant.asn]))

    def withdraw_origination(self, name: str, prefix: IPv4Prefix) -> None:
        """Withdraw a previously originated prefix."""
        self.withdraw_route(name, prefix)

    def register_ownership(self, prefix: IPv4Prefix, name: str) -> None:
        """Record address-space ownership (the RPKI stand-in)."""
        self.ownership.register(prefix, name)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def lint_policies(self, *, enforce: bool = False):
        """Run the static policy verifier over the current exchange state.

        Returns the :class:`~repro.statics.diagnostics.StaticsReport`
        (also stored as ``last_statics_report``). With ``enforce=True``,
        error-severity findings raise
        :class:`~repro.exceptions.StaticPolicyError`.
        """
        from repro.statics import analyze_controller

        report = analyze_controller(self, telemetry=self.telemetry)
        self.last_statics_report = report
        for diagnostic in report.sorted():
            if diagnostic.severity.value == "error":
                logger.warning("statics %s", diagnostic.describe())
        if enforce and report.has_errors:
            from repro.exceptions import StaticPolicyError
            raise StaticPolicyError(
                f"static policy verification failed with "
                f"{len(report.errors)} error(s); first: "
                f"{report.errors[0].describe()}", report=report)
        return report

    def lint_dataplane(self, *, enforce: bool = False):
        """Run the dataplane verifier over the installed flow table.

        One-shot SDX010-SDX013 analysis of what is in the table right
        now, against live allocator and routing state (the continuous
        per-window gate is ``dataplane_statics_mode``). With
        ``enforce=True``, error-severity findings raise
        :class:`~repro.exceptions.StaticDataplaneError`.
        """
        from repro.statics.dataplane import analyze_controller_dataplane

        report = analyze_controller_dataplane(self)
        for diagnostic in report.sorted():
            if diagnostic.severity.value == "error":
                logger.warning("dataplane statics %s", diagnostic.describe())
        if enforce and report.has_errors:
            from repro.exceptions import StaticDataplaneError
            raise StaticDataplaneError(
                f"dataplane verification failed with "
                f"{len(report.errors)} error(s); first: "
                f"{report.errors[0].describe()}", report=report)
        return report

    def _statics_gate(self) -> None:
        """Run the analyzer per ``statics_mode`` (no-op when off)."""
        if self.statics_mode == "off":
            return
        self.lint_policies(enforce=self.statics_mode == "strict")

    def start(self) -> CompilationResult:
        """Compile and install the initial table, then advertise routes."""
        self._statics_gate()
        with self.telemetry.span("controller.start"):
            result = self.compiler.compile()
            self.engine.install_full(result)
            self.last_compilation = result
            self.started = True
            self._advertise_full()
        logger.info("started %s", kv(
            participants=len(self._handles),
            rules=len(self.table),
            groups=result.prefix_group_count,
            seconds=result.total_seconds))
        return result

    def recompile(self) -> CompilationResult:
        """Force a full recompilation and table swap.

        Once started, the swap is consistency-preserving: new rules are
        installed first, border routers are re-pointed at the new virtual
        next hops, and only then are the superseded rules deleted — so at
        every intermediate state each packet follows the old path or the
        new path.
        """
        with self.telemetry.span("controller.recompile"):
            result = self.compiler.compile()
            self.engine.install_full(
                result,
                before_deletes=self._advertise_full if self.started else None)
        self.last_compilation = result
        logger.info("recompiled %s", kv(
            rules=len(self.table), seconds=result.total_seconds))
        return result

    def run_background_recompilation(self) -> Optional[CompilationResult]:
        """The background stage of the two-stage update path.

        Re-groups prefixes, swaps the optimal table in, reclaims fast-path
        rules and ephemeral VNHs, and re-advertises next hops that moved.
        The re-advertisement happens *between* the install and delete
        phases of the southbound flush (see
        :meth:`~repro.core.incremental.IncrementalEngine.install_full`).
        """
        result = self.engine.background_recompile(
            before_deletes=self._advertise_full)
        if result is not None:
            self.last_compilation = result
        return result

    def notify_policy_change(self, name: str) -> None:
        """React to a policy installation/removal by ``name``.

        In ``warn``/``strict`` statics mode the verifier runs before the
        recompilation; strict mode raises on error-severity findings
        (the offending policy stays installed — remove it and the next
        change recompiles cleanly).
        """
        self.compiler.invalidate_inbound_cache(name)
        self._statics_gate()
        if self.started:
            self.recompile()

    # ------------------------------------------------------------------
    # Degrade mode (runtime overload)
    # ------------------------------------------------------------------

    @property
    def policies_suspended(self) -> bool:
        """True while degrade mode has participant policies masked."""
        return any(
            p.policies_suspended for p in self.topology.participants())

    def suspend_policies(self) -> bool:
        """Fall back to default-BGP-route-only forwarding (degrade mode).

        Every participant's policies are masked (not forgotten) and the
        table is recompiled without them, so subsequent per-update work
        composes no policy clauses at all. The runtime's ``degrade``
        overload policy enters this state under sustained queue
        saturation; :meth:`restore_policies` is the exit. Returns True
        if anything actually changed.
        """
        return self._set_policies_suspended(True)

    def restore_policies(self) -> bool:
        """Re-enable suspended policies and recompile them back in."""
        return self._set_policies_suspended(False)

    def _set_policies_suspended(self, suspended: bool) -> bool:
        changed = False
        for participant in self.topology.participants():
            if participant.set_policies_suspended(suspended):
                self.compiler.invalidate_inbound_cache(participant.name)
                changed = True
        if changed:
            logger.info("degrade %s", kv(
                policies="suspended" if suspended else "restored"))
            if self.started:
                self.recompile()
        return changed

    def build_runtime(self, config: Optional["RuntimeConfig"] = None,
                      clock: Optional["Clock"] = None) -> "ControlPlaneRuntime":
        """Construct a control-plane runtime fronting this controller.

        Imported lazily so :mod:`repro.core` keeps no hard dependency on
        :mod:`repro.runtime` (which imports core itself).
        """
        from repro.runtime.loop import ControlPlaneRuntime
        return ControlPlaneRuntime(self, config=config, clock=clock)

    # ------------------------------------------------------------------
    # Route advertisement toward border routers
    # ------------------------------------------------------------------

    def _rewrite_next_hop(self, participant: str, prefix: IPv4Prefix,
                          route: RouteEntry) -> IPv4Address:
        vnh = self.allocator.next_hop_for_prefix(prefix)
        return vnh if vnh is not None else route.attributes.next_hop

    def _advertise_full(self) -> None:
        """Push every participant's full table to its border router."""
        if self.fabric is None:
            return
        with self.telemetry.span("controller.advertise"):
            self._advertise_routers()

    def _advertise_routers(self) -> None:
        for participant in self.topology.participants():
            router = participant.router
            if router is None:
                continue
            announcements = []
            for prefix in self.route_server.all_prefixes():
                best = self.route_server.best_route_for(participant.name, prefix)
                if best is None:
                    router.withdraw_route(prefix)
                    continue
                next_hop = self._rewrite_next_hop(participant.name, prefix, best)
                announcements.append(
                    Announcement(prefix, best.attributes.with_next_hop(next_hop)))
            router.receive_update(Update(
                sender="route-server", announcements=tuple(announcements)))

    def _on_update(self, update: Update, changes: List[BestRouteChange]) -> None:
        if not self.started:
            return
        prefixes = tuple(dict.fromkeys(update.prefixes))
        with self.telemetry.span("controller.update",
                                 prefixes=len(prefixes),
                                 changes=len(changes)):
            fast = self.engine.handle_prefixes(prefixes)
            self.fast_path_log.append(fast)
            # Session-level re-advertisement (what ExaBGP puts on the wire).
            self.route_server.readvertise(changes)
            if self.fabric is None:
                return
            # Push the touched prefixes to *every* border router: even
            # participants whose best route is unchanged must learn the
            # fresh VNH so their tags line up with the fast-path rules.
            for participant in self.topology.participants():
                router = participant.router
                if router is None:
                    continue
                for prefix in prefixes:
                    best = self.route_server.best_route_for(
                        participant.name, prefix)
                    if best is None:
                        router.withdraw_route(prefix)
                    else:
                        next_hop = self._rewrite_next_hop(
                            participant.name, prefix, best)
                        router.install_route(prefix, next_hop)

    # ------------------------------------------------------------------
    # What-if preview
    # ------------------------------------------------------------------

    def preview_policy(self, name: str, policy, *,
                       direction: str = "out") -> "PolicyPreview":
        """Validate a policy and estimate its data-plane cost — without
        installing anything.

        Per clause: the prefixes eligible toward its target and, when a
        compilation exists, how many prefix groups (≈ flow rules) the
        clause would add. Raises the same errors installation would.
        """
        participant = self.topology.participant(name)
        clauses = participant.validate_policy(policy, inbound=direction == "in")
        rows: List[ClausePreview] = []
        groups = (self.last_compilation.groups
                  if self.last_compilation is not None else ())
        for clause in clauses:
            eligible = None
            group_count = None
            if direction == "out" and not clause.drops:
                target = str(clause.target)
                if target not in self.topology.names():
                    raise ParticipantError(
                        f"policy forwards to unknown participant {target!r}")
                eligible = len(self.route_server.reachable_prefixes(
                    name, via=target))
                group_count = sum(
                    1 for group in groups
                    if (name, target) in group.contexts)
            rows.append(ClausePreview(
                description=clause.describe(),
                eligible_prefixes=eligible,
                eligible_groups=group_count))
        return PolicyPreview(participant=name, direction=direction,
                             clauses=rows)

    # ------------------------------------------------------------------
    # Traffic (simulation convenience)
    # ------------------------------------------------------------------

    def send(self, name: str, packet: Packet, *,
             size_bytes: Optional[int] = None) -> List[Delivery]:
        """Source a packet from inside participant ``name``'s AS.

        ``size_bytes`` attributes that volume to data-plane byte counters
        (see :mod:`repro.monitoring`); ``None`` means a default-size packet.
        """
        if self.fabric is None:
            raise ParticipantError("controller built without a data plane")
        return self.fabric.originate(name, packet, size_bytes=size_bytes)

    def egress_of(self, name: str, packet: Packet) -> Optional[str]:
        """Which participant a packet from ``name`` exits through.

        Returns ``None`` when the packet is dropped anywhere along the
        path (router FIB miss, switch drop, or MAC-mismatch refusal).
        """
        deliveries = self.send(name, packet)
        accepted = [d.participant for d in deliveries if d.accepted]
        return accepted[0] if accepted else None

    def summary(self) -> Dict[str, int]:
        """A status snapshot for dashboards and logs.

        Counts participants (physical/remote), installed policies, flow
        rules, prefix groups, live ephemeral VNHs, fast-path rule debt,
        and route-server activity.
        """
        participants = self.topology.participants()
        return {
            "participants": len(participants),
            "remote_participants": sum(1 for p in participants if p.is_remote),
            "policies": sum(
                len(p.outbound_policies) + len(p.inbound_policies)
                for p in participants),
            "announced_prefixes": len(self.route_server.all_prefixes()),
            "flow_rules": len(self.table),
            "prefix_groups": (self.last_compilation.prefix_group_count
                              if self.last_compilation else 0),
            "ephemeral_vnhs": len(self.allocator.ephemeral_prefixes()),
            "fast_path_rules": self.engine.fast_path_rules_live,
            "updates_processed": self.route_server.updates_processed,
            "flowmods_sent": self.southbound.stats.mods_sent,
            "flowmods_coalesced": self.southbound.stats.mods_coalesced,
        }

    def __repr__(self) -> str:
        state = "started" if self.started else "configured"
        return (f"SdxController({len(self._handles)} participants, {state}, "
                f"{len(self.table)} rules)")
