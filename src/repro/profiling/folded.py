"""Folded-stack export: span trees as standard flamegraph input.

One line per unique span path, semicolon-joined root-to-leaf, followed
by the path's summed **self time** in integer microseconds::

    controller.start;compile;compile.composition 41823
    controller.start;compile;compile.fec 9011

That is exactly the format ``flamegraph.pl`` (and speedscope, and
inferno) consume, so ``repro profile --flamegraph > out.folded`` pipes
straight into any off-the-shelf renderer. Self time — duration minus
direct children — is used so a parent frame's width equals its own
work, and the stack's total width equals real wall time.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from repro.profiling.phases import self_times
from repro.telemetry.trace import Span, Tracer


def folded_stacks(source: Union[Tracer, Sequence[Span]],
                  *, minimum_microseconds: int = 1) -> str:
    """Render finished spans as folded flamegraph stacks.

    ``source`` is a tracer (its whole finished buffer is exported) or a
    span sequence. Identical paths aggregate; paths whose summed self
    time rounds below ``minimum_microseconds`` are dropped so trivial
    instrumentation points don't flood the output. Spans whose parent
    was evicted from the buffer root their own stack, matching
    :meth:`~repro.telemetry.trace.Tracer.span_tree`'s accounting.
    """
    spans = list(source.finished() if isinstance(source, Tracer) else source)
    by_id = {span.span_id: span for span in spans}
    selfs = self_times(spans)

    path_cache: Dict[int, str] = {}

    def path_of(span: Span) -> str:
        cached = path_cache.get(span.span_id)
        if cached is not None:
            return cached
        parent = (by_id.get(span.parent_id)
                  if span.parent_id is not None else None)
        path = (f"{path_of(parent)};{span.name}"
                if parent is not None else span.name)
        path_cache[span.span_id] = path
        return path

    totals: Dict[str, float] = {}
    for span in spans:
        path = path_of(span)
        totals[path] = totals.get(path, 0.0) + selfs[span.span_id]

    lines: List[str] = []
    for path in sorted(totals):
        microseconds = round(totals[path] * 1_000_000)
        if microseconds >= minimum_microseconds:
            lines.append(f"{path} {microseconds}")
    return "\n".join(lines)
