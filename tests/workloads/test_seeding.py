"""Seeding contract: every workload generator is replayable.

The same integer seed must produce byte-identical workloads across runs
(and across processes — nothing here may depend on ``PYTHONHASHSEED``),
passing a ``random.Random`` must chain generators off one caller-owned
stream, and none of the generators may read or perturb the global
``random`` module state.
"""

import random

import pytest

from repro.workloads.policies import generate_policies
from repro.workloads.seeding import derive_seed, make_rng
from repro.workloads.topology import generate_ixp
from repro.workloads.traffic import generate_traffic_matrix
from repro.workloads.updates import generate_trace


def ixp_fingerprint(ixp):
    return (
        [(p.name, p.asn, p.category, p.ports, tuple(map(str, p.prefixes)))
         for p in ixp.participants],
        [(name, str(prefix), tuple(path)) for name, prefix, path
         in ixp.announcements],
    )


def trace_fingerprint(events):
    return [(event.time, repr(event.update)) for event in events]


class TestMakeRng:
    def test_same_int_seed_same_stream(self):
        a, b = make_rng(42), make_rng(42)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_none_means_zero(self):
        assert make_rng(None).random() == make_rng(0).random()

    def test_salt_decorrelates(self):
        assert (make_rng(7, salt=0x5DF).random()
                != make_rng(7, salt=0xBEEF).random())

    def test_random_instance_passes_through(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng
        assert make_rng(rng, salt=0x123) is rng   # salt ignored

    def test_rejects_bad_seed_types(self):
        with pytest.raises(TypeError):
            make_rng("42")
        with pytest.raises(TypeError):
            make_rng(True)


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(3, "trace") == derive_seed(3, "trace")

    def test_known_value_locked(self):
        # Frozen so a refactor cannot silently re-shuffle every derived
        # stream (which would invalidate saved fuzz artifacts).
        assert derive_seed(0, "scenario-0") == 2505635450198545767

    def test_labels_decorrelate(self):
        assert derive_seed(3, "trace") != derive_seed(3, "corpus")

    def test_random_instance_draws_from_stream(self):
        rng = random.Random(9)
        first = derive_seed(rng, "a")
        second = derive_seed(rng, "a")
        assert first != second   # consumed from the caller's stream


class TestGeneratorDeterminism:
    def test_ixp_replayable(self):
        assert (ixp_fingerprint(generate_ixp(12, 40, seed=5))
                == ixp_fingerprint(generate_ixp(12, 40, seed=5)))

    def test_ixp_seed_matters(self):
        assert (ixp_fingerprint(generate_ixp(12, 40, seed=5))
                != ixp_fingerprint(generate_ixp(12, 40, seed=6)))

    def test_trace_replayable(self):
        ixp = generate_ixp(10, 30, seed=1)
        first = generate_trace(ixp, seed=2, max_updates=40)
        second = generate_trace(ixp, seed=2, max_updates=40)
        assert trace_fingerprint(first) == trace_fingerprint(second)

    def test_policies_replayable(self):
        ixp = generate_ixp(10, 30, seed=1)
        first = generate_policies(ixp, seed=3)
        second = generate_policies(ixp, seed=3)
        assert ([(a.participant, a.direction, a.description) for a in first]
                == [(a.participant, a.direction, a.description)
                    for a in second])

    def test_traffic_replayable(self):
        ixp = generate_ixp(10, 30, seed=1)
        first = generate_traffic_matrix(ixp, flows=25, seed=4)
        second = generate_traffic_matrix(ixp, flows=25, seed=4)
        assert ([(d.source, d.destination, str(d.dst_prefix), repr(d.packet),
                  d.rate_mbps) for d in first]
                == [(d.source, d.destination, str(d.dst_prefix),
                     repr(d.packet), d.rate_mbps) for d in second])

    def test_random_instance_chains_generators(self):
        def build(master_seed):
            master = random.Random(master_seed)
            ixp = generate_ixp(8, 20, seed=master)
            trace = generate_trace(ixp, seed=master, max_updates=20)
            return ixp_fingerprint(ixp), trace_fingerprint(trace)

        assert build(11) == build(11)
        assert build(11) != build(12)

    def test_global_random_state_untouched(self):
        random.seed(1234)
        before = random.getstate()
        ixp = generate_ixp(8, 20, seed=0)
        generate_trace(ixp, seed=0, max_updates=10)
        generate_policies(ixp, seed=0)
        generate_traffic_matrix(ixp, flows=10, seed=0)
        assert random.getstate() == before

    def test_global_reseed_does_not_change_output(self):
        random.seed(1)
        first = ixp_fingerprint(generate_ixp(8, 20, seed=5))
        random.seed(999)
        second = ixp_fingerprint(generate_ixp(8, 20, seed=5))
        assert first == second
