"""Tests for the FederatedController change surface and statics gate."""

import pytest

from repro import drop, fwd, match
from repro.bgp.asn import AsPath
from repro.exceptions import ParticipantError, StaticPolicyError
from repro.federation import FederatedController, FederatedReferenceInterpreter
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.statics import analyze_controller

from tests.federation.scenarios import PORT, PREFIX, loop_scenario

DSTIP = "198.51.100.9"


def empty_federation(**kwargs):
    kwargs.setdefault("with_dataplane", False)
    federation = FederatedController(**kwargs)
    federation.add_exchange("IXP-A")
    federation.add_exchange("IXP-B")
    return federation


class TestRegistration:
    def test_participant_mirrors_to_member_exchanges(self):
        federation = empty_federation()
        federation.add_participant("T", 65001, exchanges=("IXP-A", "IXP-B"))
        federation.add_participant("C", 65002, exchanges=("IXP-A",))
        assert set(federation.exchange("IXP-A").topology.names()) == {"T", "C"}
        assert set(federation.exchange("IXP-B").topology.names()) == {"T"}

    def test_default_presence_is_every_exchange(self):
        federation = empty_federation()
        federation.add_participant("T", 65001)
        assert federation.presence("T") == ("IXP-A", "IXP-B")
        assert federation.shared_participants() == ("T",)

    def test_ports_by_exchange_override(self):
        federation = empty_federation()
        federation.add_participant(
            "T", 65001, ports=1, ports_by_exchange={"IXP-A": 2})
        assert len(federation.handle("IXP-A", "T").participant.router.ports) == 2
        assert len(federation.handle("IXP-B", "T").participant.router.ports) == 1

    def test_unknown_exchange_rejected(self):
        federation = empty_federation()
        with pytest.raises(ParticipantError):
            federation.exchange("IXP-Z")
        with pytest.raises(ParticipantError):
            federation.add_participant("T", 65001, exchanges=("IXP-Z",))

    def test_invalid_statics_mode_rejected(self):
        with pytest.raises(ValueError):
            FederatedController(statics_mode="paranoid")

    def test_member_exchanges_never_self_gate(self):
        federation = empty_federation(statics_mode="strict")
        assert federation.exchange("IXP-A").statics_mode == "off"
        assert federation.exchange("IXP-B").statics_mode == "off"


class TestStrictGate:
    def make_loop_prone(self, statics_mode):
        """A federation one policy away from a loop.

        Without ``West``'s steering clause at IXP-B, traffic East hands
        to West at IXP-A crosses to IXP-B and follows the best route to
        ``Origin`` (the registered owner of the prefix) — delivered, so
        the first install passes a strict gate. The closing clause
        overrides that default and hands the traffic back to East, which
        carries it back to IXP-A: the cycle only exists once both
        policies are in place.
        """
        federation = empty_federation(statics_mode=statics_mode)
        federation.add_participant("West", 65001,
                                   exchanges=("IXP-A", "IXP-B"))
        federation.add_participant("East", 65002,
                                   exchanges=("IXP-B", "IXP-A"))
        federation.add_participant("Origin", 65003, exchanges=("IXP-B",))
        federation.register_origin(IPv4Prefix(PREFIX), "Origin")
        federation.announce_route("IXP-B", "Origin", IPv4Prefix(PREFIX),
                                  AsPath([65003, 64700]))
        federation.announce_route("IXP-A", "West", IPv4Prefix(PREFIX),
                                  AsPath([65001, 64800, 64700]))
        federation.announce_route("IXP-B", "East", IPv4Prefix(PREFIX),
                                  AsPath([65002, 64801, 64700]))
        federation.add_outbound("IXP-A", "East",
                                match(dstport=PORT) >> fwd("West"))
        return federation

    def test_strict_rejects_the_closing_policy(self):
        federation = self.make_loop_prone("strict")
        with pytest.raises(StaticPolicyError):
            federation.add_outbound("IXP-B", "West",
                                    match(dstport=PORT) >> fwd("East"))

    def test_rejected_policy_is_rolled_back(self):
        federation = self.make_loop_prone("strict")
        before = len(federation.handle("IXP-B", "West").participant
                     .outbound_policies)
        with pytest.raises(StaticPolicyError):
            federation.add_outbound("IXP-B", "West",
                                    match(dstport=PORT) >> fwd("East"))
        west = federation.handle("IXP-B", "West").participant
        assert len(west.outbound_policies) == before
        # The surviving half of the pair is untouched.
        east = federation.handle("IXP-A", "East").participant
        assert len(east.outbound_policies) == 1

    def test_off_mode_accepts_the_pair(self):
        federation = self.make_loop_prone("off")
        federation.add_outbound("IXP-B", "West",
                                match(dstport=PORT) >> fwd("East"))
        report = federation.lint_policies()
        assert report.by_check("SDX008")

    def test_gate_covers_inbound_installs(self):
        federation = empty_federation(statics_mode="strict")
        federation.add_participant("T", 65001, exchanges=("IXP-A",))
        # A clean inbound policy passes the federation-wide gate.
        handle = federation.handle("IXP-A", "T")
        federation.add_inbound(
            "IXP-A", "T", match(dstport=PORT) >> fwd(handle.port(0)))
        assert len(handle.participant.inbound_policies) == 1


class TestAcceptance:
    """The PR's acceptance criteria, as one test per claim."""

    def test_loop_pair_is_flagged_with_witness(self):
        federation = loop_scenario().build_controller(with_dataplane=False)
        report = analyze_controller(federation)
        findings = report.by_check("SDX008")
        assert findings
        for diagnostic in findings:
            assert diagnostic.witness is not None
            assert diagnostic.witness.get("dstport") == PORT

    def test_strict_mode_rejects_the_pair_at_install_time(self):
        with pytest.raises(StaticPolicyError):
            loop_scenario().build_controller(
                statics_mode="strict", with_dataplane=False)

    def test_reference_forwards_the_witness_in_a_cycle(self):
        scenario = loop_scenario()
        federation = scenario.build_controller(with_dataplane=False)
        diagnostic = analyze_controller(federation).by_check("SDX008")[0]
        payload = dict(diagnostic.data)
        outcome = FederatedReferenceInterpreter(scenario).forward(
            payload["origin_exchange"], payload["origin_participant"],
            diagnostic.witness)
        assert outcome.is_loop
        assert outcome.cycle

    def test_real_dataplane_agrees_the_witness_loops(self):
        scenario = loop_scenario()
        federation = scenario.build_controller(with_dataplane=True)
        diagnostic = analyze_controller(federation).by_check("SDX008")[0]
        payload = dict(diagnostic.data)
        outcome = federation.forward(
            payload["origin_exchange"], payload["origin_participant"],
            diagnostic.witness)
        assert outcome.is_loop


class TestLifecycle:
    def test_start_compiles_every_member(self):
        federation = loop_scenario().build_controller(start=False)
        results = federation.start()
        assert set(results) == {"IXP-A", "IXP-B"}
        assert federation.started

    def test_settle_runs_without_error_after_updates(self):
        scenario = loop_scenario()
        federation = scenario.build_controller()
        federation.withdraw_route("IXP-A", "West", IPv4Prefix(PREFIX))
        federation.settle()
        outcome = federation.forward(
            "IXP-A", "East", Packet(dstip=DSTIP, dstport=PORT))
        assert not outcome.is_loop

    def test_summary_counts_federation_structure(self):
        federation = loop_scenario().build_controller(with_dataplane=False)
        summary = federation.summary()
        assert summary["exchanges"] == 2
        assert summary["shared_participants"] == 2
        assert summary["transit_links"] == 2
        assert set(summary["per_exchange"]) == {"IXP-A", "IXP-B"}

    def test_repr_names_exchanges(self):
        federation = empty_federation()
        assert "IXP-A" in repr(federation)
        assert "configured" in repr(federation)


class TestNotifyPolicyChange:
    def test_out_of_band_edit_is_regated(self):
        federation = loop_scenario().build_controller(
            with_dataplane=False)
        federation.statics_mode = "strict"
        handle = federation.handle("IXP-A", "East")
        handle.participant.add_outbound(match(dstport=443) >> drop)
        with pytest.raises(StaticPolicyError):
            # Re-gating sees the pre-existing loop pair.
            federation.notify_policy_change("IXP-A", "East")
