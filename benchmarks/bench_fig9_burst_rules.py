"""Figure 9 — additional forwarding rules vs BGP update burst size.

Replays worst-case bursts (every update moves a distinct prefix's best
path) against compiled SDXs and counts the fast-path rules that must sit
in the table until the background re-optimisation coalesces them.
Expected shape: linear in burst size, with a slope that grows with the
number of participants carrying policies.
"""

from conftest import publish, publish_json, scaled

from repro.bgp.asn import AsPath
from repro.experiments.harness import run_fig9, run_fig9_delta
from repro.experiments.metrics import render_chart, render_series, render_table
from repro.net.packet import Packet
from repro.southbound.engine import SouthboundConfig
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import generate_ixp

BURSTS = (1, 5, 10, 20, 40, 60, 80, 100)
PARTICIPANTS = (100, 200, 300)


def _run():
    return run_fig9(burst_sizes=BURSTS, participant_counts=PARTICIPANTS,
                    prefixes=scaled(2_000))


def test_fig9_burst_rules(benchmark):
    series_list = benchmark.pedantic(_run, rounds=1, iterations=1)
    publish("fig9_burst_rules", render_series(
        series_list, "burst size (updates)", "additional rules")
        + "\n\n" + render_chart(series_list, x_label="burst size",
                                y_label="additional rules"))
    publish_json("fig9_burst_rules", {
        "series": {series.label: [[x, y] for x, y in
                                  zip(series.xs(), series.ys())]
                   for series in series_list},
    })

    for series in series_list:
        ys = series.ys()
        xs = series.xs()
        # Strictly growing with burst size.
        assert ys == sorted(ys)
        # Roughly linear: per-update rule cost stays within a 2.5x band.
        # (The burst-size-1 point is excluded: a single prefix's rule
        # count varies with how many policies happen to cover it.)
        per_update = [y / x for x, y in zip(xs, ys) if x >= 5]
        assert max(per_update) / min(per_update) < 2.5
    # Bigger exchanges pay more rules for the same burst.
    finals = [series.ys()[-1] for series in series_list]
    assert finals == sorted(finals)


def test_fig9_delta_engine(benchmark):
    """Delta-engine mode: FlowMods per background swap after each burst,
    against the table size and the naive full-reinstall cost."""
    points = benchmark.pedantic(
        lambda: run_fig9_delta(burst_sizes=BURSTS, participants=100,
                               prefixes=scaled(2_000)),
        rounds=1, iterations=1)

    rows = [[p.burst, p.table_rules, p.flowmods_sent, p.full_reinstall_cost,
             p.rules_unchanged, f"{p.savings:.0%}"] for p in points]
    publish("fig9_delta_flowmods", render_table(
        ["burst", "table rules", "flowmods sent", "full reinstall",
         "unchanged", "saved"], rows))
    publish_json("fig9_delta_flowmods", [
        {
            "burst": p.burst,
            "table_rules": p.table_rules,
            "flowmods_sent": p.flowmods_sent,
            "full_reinstall_cost": p.full_reinstall_cost,
            "rules_unchanged": p.rules_unchanged,
            "savings": p.savings,
        }
        for p in points
    ])

    for point in points:
        # The swap always does real work (the burst dirtied the table)...
        assert point.flowmods_sent > 0
        # ...but never degenerates into a full reinstall: strictly fewer
        # FlowMods than rules in the table, and far fewer than tearing
        # everything down and reinstalling.
        assert point.flowmods_sent < point.table_rules
        assert point.flowmods_sent < point.full_reinstall_cost
        assert point.rules_unchanged > 0


def test_fig9_delta_swap_consistency():
    """Replay a packet corpus at every batch boundary of a burst's
    background swap: each packet must follow its old or its new path."""
    ixp = generate_ixp(20, scaled(200), seed=0)
    controller = ixp.build_controller(
        with_dataplane=True,
        southbound_config=SouthboundConfig(max_batch_size=8))
    install_assignments(controller, generate_policies(ixp, seed=1))
    controller.start()

    import random
    rng = random.Random(7)
    universe = ixp.all_prefixes()
    source = next(spec.name for spec in ixp.participants if spec.ports > 0)
    corpus = [
        Packet(dstip=str(prefix.first_address + 1), dstport=port,
               srcip="198.51.100.7", protocol=6)
        for prefix in rng.sample(universe, k=min(8, len(universe)))
        for port in (80, 443)
    ]
    for prefix in rng.sample(universe, k=min(10, len(universe))):
        announcer = rng.choice([name for name, p, _ in ixp.announcements
                                if p == prefix])
        controller.announce_route(
            announcer, prefix,
            AsPath([ixp.by_name(announcer).asn,
                    rng.randrange(64512, 65000), rng.randrange(1000, 60000)]))

    before = [controller.egress_of(source, p) for p in corpus]
    observed = [set() for _ in corpus]

    def replay(batch):
        for index, p in enumerate(corpus):
            observed[index].add(controller.egress_of(source, p))

    controller.southbound.add_observer(replay)
    controller.run_background_recompilation()
    after = [controller.egress_of(source, p) for p in corpus]

    assert controller.southbound.stats.batches_applied > 2
    for index in range(len(corpus)):
        assert observed[index] <= {before[index], after[index]}, (
            f"packet {corpus[index]} took a path outside "
            f"{{{before[index]}, {after[index]}}}: {observed[index]}")
