"""Table 1 — IXP dataset statistics.

Regenerates the paper's dataset table from the synthetic trace generator
(scaled down 500x by default) and validates that the generator hits the
published per-IXP statistics: update volume, table size, and the
fraction of prefixes that see any update (9.9-13.6%), plus the Section
4.3 burst statistics the incremental compiler is designed around.
"""

from conftest import publish, publish_json

from repro.experiments.harness import run_table1
from repro.experiments.metrics import render_table

SCALE = 0.002


def _run():
    return run_table1(scale=SCALE)


def test_table1_datasets(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)

    rendered = render_table(
        ["IXP", "peers (paper)", "prefixes (paper)", "updates (paper)",
         "%upd (paper)", f"prefixes (x{SCALE})", f"updates (x{SCALE})",
         "%upd (measured)", "small-burst frac", "gap>=10s frac"],
        [[row.profile.name,
          f"{row.profile.collector_peers}/{row.profile.total_peers}",
          f"{row.profile.prefixes:,}",
          f"{row.profile.bgp_updates:,}",
          f"{row.profile.fraction_prefixes_updated:.2%}",
          f"{row.measured_prefixes:,}",
          f"{row.measured_updates:,}",
          f"{row.measured_fraction_updated:.2%}",
          f"{row.measured_fraction_small_bursts:.2f}",
          f"{row.measured_fraction_gaps_over_10s:.2f}"]
         for row in rows])
    publish("table1_datasets", rendered)
    publish_json("table1_datasets", [
        {
            "ixp": row.profile.name,
            "scale": SCALE,
            "paper_prefixes": row.profile.prefixes,
            "paper_updates": row.profile.bgp_updates,
            "paper_fraction_updated": row.profile.fraction_prefixes_updated,
            "measured_prefixes": row.measured_prefixes,
            "measured_updates": row.measured_updates,
            "measured_fraction_updated": row.measured_fraction_updated,
            "fraction_small_bursts": row.measured_fraction_small_bursts,
            "fraction_gaps_over_10s": row.measured_fraction_gaps_over_10s,
        }
        for row in rows
    ])

    assert [row.profile.name for row in rows] == ["AMS-IX", "DE-CIX", "LINX"]
    for row in rows:
        # Update counts scale exactly; the churn fraction must land near
        # the paper's measurement for each IXP.
        assert row.measured_updates == row.profile.scaled(SCALE).bgp_updates
        assert abs(row.measured_fraction_updated
                   - row.profile.fraction_prefixes_updated) < 0.02
        # Section 4.3 burst shape: ~75% of bursts touch <= 3 prefixes,
        # ~75% of gaps >= 10 s.
        assert 0.6 <= row.measured_fraction_small_bursts <= 0.9
        assert 0.6 <= row.measured_fraction_gaps_over_10s <= 0.9
    # DE-CIX has the highest churn in the paper; the ordering must hold.
    churn = {row.profile.name: row.measured_fraction_updated for row in rows}
    assert churn["DE-CIX"] > churn["AMS-IX"]
