"""The chaos driver end-to-end: clean runs across every fault class,
determinism guards, convergence accounting, the soak loop, and — with a
deliberately lossy runtime queue — a failure caught and shrunk. The
subsystem's acceptance test, mirroring tests/verification/test_oracle.py.
"""

import pytest

from repro.chaos import (
    ChaosConfig,
    ChaosRunner,
    ChaosSoakConfig,
    chaos_failure,
    run_chaos,
    run_chaos_soak,
    shrink_chaos,
)
from repro.runtime.queue import OfferOutcome, RuntimeQueue
from repro.telemetry import Telemetry
from repro.verification.scenario import generate_scenario
from repro.workloads.churn import (
    FAULT_KINDS,
    ChaosFault,
    ChaosSchedule,
    generate_chaos_schedule,
)


def make_pair(seed=0, steps=16, faults=6, kinds=FAULT_KINDS):
    """A generated scenario plus a matching generated fault schedule."""
    scenario = generate_scenario(seed, participants=4, prefixes=4,
                                 policies=4, steps=steps)
    schedule = generate_chaos_schedule(
        seed + 1, scenario.participant_names(),
        prefixes=scenario.prefixes, trace_length=len(scenario.trace),
        faults=faults, kinds=kinds)
    return scenario, schedule


def targeted(scenario, *faults):
    """A hand-written schedule over ``scenario``'s participants."""
    return ChaosSchedule(seed=0, faults=tuple(faults))


def lose_announcements(monkeypatch, prefix):
    """Silently drop runtime-queue announcements of ``prefix``.

    Only the routed arm feeds a RuntimeQueue, so the loss is asymmetric
    by construction: the inline arm keeps the route, the runtime arm
    never sees it — exactly the divergence the settle assertions exist
    to catch. Stateless, so every (shrunk) replay is deterministic.
    """
    real_offer = RuntimeQueue.offer

    def lossy_offer(self, event):
        update = getattr(event, "update", None)
        if update is not None and any(
                str(announcement.prefix) == prefix
                for announcement in update.announcements):
            return OfferOutcome.ENQUEUED  # lie: the event vanishes
        return real_offer(self, event)

    monkeypatch.setattr(RuntimeQueue, "offer", lossy_offer)


class TestCleanRuns:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_generated_schedules_hold_all_assertions(self, seed):
        scenario, schedule = make_pair(seed=seed)
        report = run_chaos(scenario, schedule, telemetry=Telemetry())
        assert report.ok, report.summary()
        assert report.steps_executed + report.steps_skipped == len(
            scenario.trace)
        assert any(outcome.applied for outcome in report.outcomes)
        assert report.settle_checks > 0

    def test_deterministic_summary(self):
        scenario, schedule = make_pair(seed=4)
        first = run_chaos(scenario, schedule, telemetry=Telemetry())
        second = run_chaos(scenario, schedule, telemetry=Telemetry())
        assert first.summary() == second.summary()

    def test_peer_down_without_recovery_leaves_peer_down(self):
        scenario, _ = make_pair(seed=0, faults=0)
        peer = scenario.participant_names()[0]
        schedule = targeted(scenario, ChaosFault(
            kind="peer_down", step=3, participants=(peer,)))
        runner = ChaosRunner(scenario, schedule,
                             config=ChaosConfig(recover_at_end=False),
                             telemetry=Telemetry())
        report = runner.run()
        assert report.ok, report.summary()
        for controller in (runner.inline, runner.routed):
            session = controller.route_server.session(peer)
            assert session.is_down
            assert session.announced == frozenset()

    def test_recover_at_end_restores_the_peer(self):
        scenario, _ = make_pair(seed=0, faults=0)
        peer = scenario.participant_names()[0]
        schedule = targeted(scenario, ChaosFault(
            kind="peer_down", step=3, participants=(peer,)))
        runner = ChaosRunner(scenario, schedule, telemetry=Telemetry())
        report = runner.run()
        assert report.ok, report.summary()
        assert runner.routed.route_server.session(peer).is_established
        assert report.storm_updates > 0


class TestGuardsAndAccounting:
    def test_redundant_peer_down_is_skipped(self):
        scenario, _ = make_pair(seed=0, faults=0)
        peer = scenario.participant_names()[0]
        schedule = targeted(
            scenario,
            ChaosFault(kind="peer_down", step=2, participants=(peer,)),
            ChaosFault(kind="peer_down", step=5, participants=(peer,)))
        telemetry = Telemetry()
        report = run_chaos(scenario, schedule, telemetry=telemetry)
        assert report.ok, report.summary()
        assert [outcome.applied for outcome in report.outcomes] == [
            True, False]
        skipped = telemetry.registry.get("sdx_chaos_faults_skipped_total")
        assert skipped is not None and skipped.value == 1

    def test_steps_from_a_down_peer_are_skipped(self):
        scenario, _ = make_pair(seed=0, faults=0)
        senders = {step.participant for step in scenario.trace[1:]}
        peer = sorted(senders)[0]
        schedule = targeted(scenario, ChaosFault(
            kind="peer_down", step=0, participants=(peer,)))
        report = run_chaos(scenario, schedule,
                           config=ChaosConfig(recover_at_end=False),
                           telemetry=Telemetry())
        assert report.ok, report.summary()
        expected = sum(1 for step in scenario.trace[1:]
                       if step.participant == peer)
        assert report.steps_skipped == expected

    def test_convergence_by_kind_aggregates_applied_faults(self):
        scenario, schedule = make_pair(seed=2)
        report = run_chaos(scenario, schedule, telemetry=Telemetry())
        assert report.ok, report.summary()
        stats = report.convergence_by_kind()
        for kind, slot in stats.items():
            applied = [o for o in report.outcomes
                       if o.applied and o.kind == kind]
            assert slot["faults"] == float(len(applied))
            assert slot["events"] == float(sum(o.events for o in applied))
        assert set(stats) == {o.kind for o in report.outcomes if o.applied}

    def test_chaos_metrics_are_recorded(self):
        scenario, schedule = make_pair(seed=1)
        telemetry = Telemetry()
        report = run_chaos(scenario, schedule, telemetry=telemetry)
        assert report.ok, report.summary()
        registry = telemetry.registry
        fired = sum(
            registry.get("sdx_chaos_faults_total", kind=kind).value
            for kind in schedule.kinds()
            if registry.get("sdx_chaos_faults_total", kind=kind) is not None)
        assert fired == sum(1 for o in report.outcomes if o.applied)
        settles = registry.get("sdx_chaos_settle_checks_total")
        assert settles is not None and settles.value == report.settle_checks


class TestSoak:
    def test_soak_covers_every_kind_and_reports(self):
        report = run_chaos_soak(
            ChaosSoakConfig(seed=3, scenarios=2, steps=16),
            telemetry=Telemetry())
        assert report.ok, report.summary()
        assert report.scenarios_run == 2
        assert report.kinds_covered() == FAULT_KINDS
        assert report.faults_applied > 0
        assert "fault kinds covered" in report.summary()

    def test_soak_is_deterministic(self):
        config = ChaosSoakConfig(seed=5, scenarios=1, steps=12)
        first = run_chaos_soak(config, telemetry=Telemetry())
        second = run_chaos_soak(config, telemetry=Telemetry())
        assert first.summary() == second.summary()

    def test_time_budget_stops_early(self):
        report = run_chaos_soak(
            ChaosSoakConfig(seed=0, scenarios=50, steps=12,
                            time_budget_seconds=0.0),
            telemetry=Telemetry())
        assert report.budget_exhausted
        assert report.scenarios_run == 0


class TestInjectedDefect:
    def failing_pair(self):
        scenario, schedule = make_pair(seed=0, steps=12)
        return scenario, schedule, scenario.prefixes[0]

    def test_lossy_queue_is_caught(self, monkeypatch):
        scenario, schedule, prefix = self.failing_pair()
        lose_announcements(monkeypatch, prefix)
        failure = chaos_failure(scenario, schedule)
        assert failure is not None
        assert failure.kind.startswith("chaos-")

    def test_failure_shrinks_to_fixpoint(self, monkeypatch):
        scenario, schedule, prefix = self.failing_pair()
        lose_announcements(monkeypatch, prefix)
        shrunk_scenario, shrunk_schedule, failure, runs = shrink_chaos(
            scenario, schedule)
        assert failure is not None
        assert runs >= 1
        assert len(shrunk_scenario.trace) <= len(scenario.trace)
        assert len(shrunk_schedule.faults) <= len(schedule.faults)
        # Minimality: the shrunk pair still reproduces the failure.
        assert chaos_failure(shrunk_scenario, shrunk_schedule) is not None

    def test_shrink_refuses_passing_run(self):
        scenario, schedule = make_pair(seed=0)
        with pytest.raises(ValueError):
            shrink_chaos(scenario, schedule)

    def test_shrink_run_budget_respected(self, monkeypatch):
        scenario, schedule, prefix = self.failing_pair()
        lose_announcements(monkeypatch, prefix)
        calls = []

        def runner(candidate_scenario, candidate_schedule):
            calls.append(len(candidate_scenario.trace))
            return chaos_failure(candidate_scenario, candidate_schedule)

        *_, runs = shrink_chaos(scenario, schedule, runner=runner,
                                max_runs=3)
        assert runs <= 3
        assert len(calls) == runs

    def test_soak_finds_shrinks_and_saves(self, tmp_path, monkeypatch):
        from repro.chaos.soak import _scenario_for

        config = ChaosSoakConfig(seed=0, scenarios=1, steps=12,
                                 artifact_dir=str(tmp_path))
        prefix = _scenario_for(config, 0).prefixes[0]
        lose_announcements(monkeypatch, prefix)
        report = run_chaos_soak(config, telemetry=Telemetry())
        assert report.findings, report.summary()
        finding = report.findings[0]
        assert finding.artifact_path is not None
        assert finding.shrunk_trace_length <= finding.original_trace_length
        assert report.shrink_runs > 0
        assert "FAIL" in report.summary()
