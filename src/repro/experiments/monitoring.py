"""End-to-end monitoring-loop experiments (CLI + benchmark harness).

Two canned closed-loop runs, built from :mod:`repro.workloads.scenarios`
traffic, a :class:`~repro.monitoring.driver.MonitoredTrafficDriver`, and
the reactive apps in :mod:`repro.apps.reactive`:

* :func:`run_shifting_loop` — the counter-driven inbound-TE loop: slice
  rates flip mid-run, the egress-imbalance watch raises, and the
  :class:`~repro.apps.reactive.ReactiveInboundBalancer` re-packs slices
  onto the eyeball's two ports. Reports reaction latency (traffic shift
  → first corrective FlowMod batch, in simulated seconds), convergence,
  and per-port estimation accuracy.
* :func:`run_skewed_loop` — the heavy-hitter offload loop: one prefix
  surges, the detector raises at FEC granularity, and
  :class:`~repro.apps.reactive.HeavyHitterSteering` drills down and
  steers the surging prefix to the alternate transit. Reports reaction
  latency, what was offloaded/released, and per-FEC estimation accuracy
  against the driver's ground truth.

Accuracy semantics: a sample taken at clock time ``t`` covers the ticks
in ``(t - cadence, t]`` — the driver stamps a tick *before* advancing
the clock, so the sample's instantaneous rates line up with ground
truth over ``until=t - tick`` shifted windows. Both runners compare at
steady state (no phase boundary inside the window), where the collector
should agree with the truth to float/rounding precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.reactive import HeavyHitterSteering, ReactiveInboundBalancer
from repro.monitoring.detect import HeavyHitterDetector
from repro.monitoring.driver import MonitoredTrafficDriver, TickRecord
from repro.monitoring.loop import DataPlaneMonitor
from repro.monitoring.stats import MonitorSample
from repro.runtime.clock import ManualClock
from repro.workloads.scenarios import (
    SKEWED_PREFIXES,
    build_shifting_controller,
    build_skewed_controller,
    shifting_flows,
    skewed_flows,
)

#: ``on_sample`` callback signature: invoked once per *fresh* sample.
SampleHook = Callable[[MonitorSample], None]


@dataclass(frozen=True)
class LoopConfig:
    """Shared knobs for both closed-loop runs."""

    duration: float = 40.0
    shift_time: float = 10.0
    cadence_seconds: float = 1.0
    tick_seconds: float = 1.0
    seed: int = 0
    statics_mode: str = "strict"
    rate_scale: float = 1.0


def _percent_error(estimated: float, true: float) -> float:
    """|estimated - true| as a percentage of the true value."""
    if true == 0.0:
        return 0.0 if estimated == 0.0 else float("inf")
    return abs(estimated - true) / true * 100.0


@dataclass
class ShiftingResult:
    """What the inbound-balancing loop did and how well it measured."""

    config: LoopConfig
    rebalances: int
    first_rebalance_at: Optional[float]
    #: Simulated seconds from the traffic shift to the first corrective
    #: FlowMod batch hitting the table (None: no reaction).
    reaction_seconds: Optional[float]
    #: Ground-truth per-port share over the trailing 5 s window.
    final_share: Tuple[float, ...]
    #: max/mean of the final share (1.0 = perfectly balanced).
    final_imbalance: float
    #: Worst per-port instantaneous-rate error (%) at the final sample.
    port_rate_error_pct: float
    samples: int
    runtime_submitted: Dict[str, int]

    def converged(self, *, within_ticks: int,
                  imbalance_bound: float = 1.25) -> bool:
        """Did the balancer react in time and actually balance?"""
        if self.reaction_seconds is None:
            return False
        ticks = self.reaction_seconds / self.config.tick_seconds
        return ticks <= within_ticks and self.final_imbalance <= imbalance_bound

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary of the run (the ``--json`` payload)."""
        return {
            "scenario": "shifting",
            "duration_seconds": self.config.duration,
            "shift_time_seconds": self.config.shift_time,
            "cadence_seconds": self.config.cadence_seconds,
            "seed": self.config.seed,
            "rebalances": self.rebalances,
            "first_rebalance_at": self.first_rebalance_at,
            "reaction_seconds": self.reaction_seconds,
            "final_share": [round(s, 4) for s in self.final_share],
            "final_imbalance": round(self.final_imbalance, 4),
            "port_rate_error_pct": round(self.port_rate_error_pct, 4),
            "samples": self.samples,
            "runtime_submitted": dict(self.runtime_submitted),
        }


@dataclass
class SkewedResult:
    """What the heavy-hitter loop did and how well it measured."""

    config: LoopConfig
    offloaded: Tuple[str, ...]
    declined: Tuple[str, ...]
    offload_at: Optional[float]
    #: Simulated seconds from the surge to the offloading FlowMod batch.
    reaction_seconds: Optional[float]
    #: Worst per-FEC instantaneous-rate error (%) at steady state.
    fec_rate_error_pct: float
    #: Worst per-FEC cumulative-byte error (%) over the whole run.
    fec_bytes_error_pct: float
    #: Estimated EWMA rate toward each participant at the end.
    participant_rates: Dict[str, float]
    samples: int
    runtime_submitted: Dict[str, int]

    def converged(self, *, within_ticks: int, **_ignored) -> bool:
        """Did the steering offload the hitter in time?"""
        if self.reaction_seconds is None or not self.offloaded:
            return False
        return self.reaction_seconds / self.config.tick_seconds <= within_ticks

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary of the run (the ``--json`` payload)."""
        return {
            "scenario": "skewed",
            "duration_seconds": self.config.duration,
            "surge_time_seconds": self.config.shift_time,
            "cadence_seconds": self.config.cadence_seconds,
            "seed": self.config.seed,
            "offloaded": list(self.offloaded),
            "declined": list(self.declined),
            "offload_at": self.offload_at,
            "reaction_seconds": self.reaction_seconds,
            "fec_rate_error_pct": round(self.fec_rate_error_pct, 4),
            "fec_bytes_error_pct": round(self.fec_bytes_error_pct, 4),
            "participant_rates": {
                name: round(rate, 3)
                for name, rate in sorted(self.participant_rates.items())},
            "samples": self.samples,
            "runtime_submitted": dict(self.runtime_submitted),
        }


@dataclass
class _ReactionProbe:
    """Stamps the first corrective FlowMod batch after the shift."""

    clock: ManualClock
    shift_time: float
    reaction_at: Optional[float] = None

    def __call__(self, batch) -> None:
        if not batch or self.reaction_at is not None:
            return
        now = self.clock.now()
        if now > self.shift_time:
            self.reaction_at = now


@dataclass
class _SampleRelay:
    """Forwards each *fresh* sample to a hook (ticks may outpace cadence)."""

    monitor: DataPlaneMonitor
    hook: Optional[SampleHook]
    count: int = 0
    _last_at: Optional[float] = field(default=None, repr=False)

    def __call__(self, record: TickRecord) -> None:
        sample = self.monitor.last_sample
        if sample is None or sample.sampled_at == self._last_at:
            return
        self._last_at = sample.sampled_at
        self.count += 1
        if self.hook is not None:
            self.hook(sample)


def run_shifting_loop(config: LoopConfig = LoopConfig(), *,
                      on_sample: Optional[SampleHook] = None
                      ) -> ShiftingResult:
    """Drive the shifting scenario through the reactive inbound balancer."""
    sdx = build_shifting_controller(statics_mode=config.statics_mode)
    clock = ManualClock()
    runtime = sdx.build_runtime(clock=clock)

    monitor = DataPlaneMonitor(sdx, cadence_seconds=config.cadence_seconds)
    balancer = ReactiveInboundBalancer(sdx.participant("Eyeball"), monitor)
    monitor.add_detector(balancer.make_watch())
    balancer.install()
    runtime.attach_monitor(monitor)
    runtime.add_monitoring_handler(balancer.handle_event)

    probe = _ReactionProbe(clock, config.shift_time)
    sdx.southbound.add_observer(probe)

    flows = shifting_flows(
        shift_time=config.shift_time, duration=config.duration,
        seed=config.seed, rate_scale=config.rate_scale)
    driver = MonitoredTrafficDriver(
        sdx, runtime, flows, tick_seconds=config.tick_seconds)

    relay = _SampleRelay(monitor, on_sample)
    first_rebalance: List[float] = []

    def watch(record: TickRecord) -> None:
        relay(record)
        if balancer.rebalances and not first_rebalance:
            first_rebalance.append(record.time)

    driver.run(config.duration, on_tick=watch)
    sdx.southbound.remove_observer(probe)

    window = min(5.0, config.duration / 4)
    share = driver.port_share(balancer.ports, window_seconds=window)
    mean = sum(share) / len(share) if share else 0.0
    imbalance = (max(share) / mean) if mean > 0 else 1.0

    sample = monitor.last_sample
    truth = driver.ground_truth_port_rates(
        config.cadence_seconds,
        until=sample.sampled_at - config.tick_seconds)
    error = max(
        (_percent_error(sample.port_rate(port), truth.get(port, 0.0))
         for port in balancer.ports), default=0.0)

    return ShiftingResult(
        config=config,
        rebalances=balancer.rebalances,
        first_rebalance_at=first_rebalance[0] if first_rebalance else None,
        reaction_seconds=(None if probe.reaction_at is None
                          else probe.reaction_at - config.shift_time),
        final_share=share,
        final_imbalance=imbalance,
        port_rate_error_pct=error,
        samples=relay.count,
        runtime_submitted=runtime.stats()["submitted"])


def run_skewed_loop(config: LoopConfig = LoopConfig(), *,
                    threshold_mbps: float = 50.0,
                    on_sample: Optional[SampleHook] = None) -> SkewedResult:
    """Drive the skewed scenario through the heavy-hitter steering app."""
    sdx = build_skewed_controller(statics_mode=config.statics_mode)
    clock = ManualClock()
    runtime = sdx.build_runtime(clock=clock)

    detector = HeavyHitterDetector(
        threshold_mbps=threshold_mbps * config.rate_scale)
    monitor = DataPlaneMonitor(
        sdx, cadence_seconds=config.cadence_seconds, detectors=[detector])
    steering = HeavyHitterSteering(
        sdx.participant("Sender"), monitor, prefixes=SKEWED_PREFIXES,
        primary="Primary", alternate="Alternate")
    steering.install()
    runtime.attach_monitor(monitor)
    runtime.add_monitoring_handler(steering.handle_event)

    probe = _ReactionProbe(clock, config.shift_time)
    sdx.southbound.add_observer(probe)

    flows = skewed_flows(
        surge_time=config.shift_time, duration=config.duration,
        seed=config.seed, rate_scale=config.rate_scale)
    driver = MonitoredTrafficDriver(
        sdx, runtime, flows, tick_seconds=config.tick_seconds)

    relay = _SampleRelay(monitor, on_sample)
    first_offload: List[float] = []

    def watch(record: TickRecord) -> None:
        relay(record)
        if steering.offloaded() and not first_offload:
            first_offload.append(record.time)

    driver.run(config.duration, on_tick=watch)
    sdx.southbound.remove_observer(probe)

    sample = monitor.last_sample
    # Steady-state instantaneous rates (the surge holds until the end).
    truth_rates = driver.ground_truth_rates(
        config.cadence_seconds,
        until=sample.sampled_at - config.tick_seconds)
    rate_error = max(
        (_percent_error(sample.fec_rate(label), rate)
         for label, rate in truth_rates.items()), default=0.0)

    # Whole-run cumulative bytes: every tick the driver recorded should
    # be visible in the collector's accumulated per-FEC totals.
    truth_bytes: Dict[str, int] = {}
    for record in driver.history:
        for label, count in record.fec_bytes.items():
            truth_bytes[label] = truth_bytes.get(label, 0) + count
    estimated_bytes = {view.key: view.bytes for view in sample.fecs}
    bytes_error = max(
        (_percent_error(float(estimated_bytes.get(label, 0)), float(count))
         for label, count in truth_bytes.items()), default=0.0)

    return SkewedResult(
        config=config,
        offloaded=steering.offloaded(),
        declined=tuple(steering.declined),
        offload_at=first_offload[0] if first_offload else None,
        reaction_seconds=(None if probe.reaction_at is None
                          else probe.reaction_at - config.shift_time),
        fec_rate_error_pct=rate_error,
        fec_bytes_error_pct=bytes_error,
        participant_rates={
            view.key: view.ewma_mbps for view in sample.participants},
        samples=relay.count,
        runtime_submitted=runtime.stats()["submitted"])
