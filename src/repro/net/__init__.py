"""Addressing and packet primitives used by every other subpackage."""

from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress
from repro.net.packet import Packet

__all__ = ["IPv4Address", "IPv4Prefix", "MacAddress", "Packet"]
