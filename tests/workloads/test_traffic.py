"""Tests for the traffic-matrix generator and its locality statistics."""

from repro.workloads.topology import generate_ixp
from repro.workloads.traffic import (
    LocalityStats,
    generate_traffic_matrix,
    locality_stats,
)


def make_matrix(flows=400, participants=80, prefixes=1_000, seed=0):
    ixp = generate_ixp(participants, prefixes, seed=seed)
    return ixp, generate_traffic_matrix(ixp, flows=flows, seed=seed + 1)


class TestGenerateTrafficMatrix:
    def test_deterministic(self):
        _, first = make_matrix()
        _, second = make_matrix()
        assert first == second

    def test_flow_count(self):
        _, demands = make_matrix(flows=300)
        assert len(demands) == 300

    def test_no_self_flows(self):
        _, demands = make_matrix()
        assert all(d.source != d.destination for d in demands)

    def test_destinations_own_their_prefixes(self):
        ixp, demands = make_matrix()
        for demand in demands:
            spec = ixp.by_name(demand.destination)
            assert demand.dst_prefix in spec.prefixes
            assert demand.dst_prefix.contains_address(demand.packet["dstip"])

    def test_rates_positive_and_heavy_tailed(self):
        _, demands = make_matrix()
        rates = sorted((d.rate_mbps for d in demands), reverse=True)
        assert all(rate > 0 for rate in rates)
        # The top decile carries a large share (Pareto tail).
        top = sum(rates[:len(rates) // 10])
        assert top > 0.3 * sum(rates)

    def test_paper_pair_concentration(self):
        """Ager et al. via the paper: ~95% of traffic between ~5% of the
        participants — our matrix must be similarly concentrated."""
        _, demands = make_matrix(flows=600, participants=120)
        stats = locality_stats(demands)
        assert stats.pair_fraction_for_95_percent < 0.5
        # Traffic touches far fewer heavy pairs than total pairs exist.
        possible_pairs = stats.participants * (stats.participants - 1)
        assert stats.pairs_for_95_percent < 0.1 * possible_pairs


class TestLocalityStats:
    def test_empty_matrix(self):
        stats = locality_stats([])
        assert stats.pairs == 0
        assert stats.pair_fraction_for_95_percent == 0.0

    def test_single_pair(self):
        _, demands = make_matrix(flows=5, participants=10, prefixes=50)
        stats = locality_stats(demands)
        assert stats.pairs_for_95_percent >= 1
        assert stats.total_mbps > 0


class TestMatrixThroughDataplane:
    def test_flows_deliver_at_destination(self):
        ixp, demands = make_matrix(flows=60, participants=30, prefixes=200)
        controller = ixp.build_controller(with_dataplane=True)
        controller.start()
        delivered = 0
        for demand in demands[:40]:
            egress = controller.egress_of(demand.source, demand.packet)
            if egress is None:
                continue
            delivered += 1
            # Default forwarding delivers to some announcer of the prefix.
            announcers = {
                name for name, prefix, _path in ixp.announcements
                if prefix == demand.dst_prefix
            }
            assert egress in announcers
        assert delivered >= 35  # nearly everything has a route
