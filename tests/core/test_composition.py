"""Tests for the composition layer, chiefly that the optimised operators
agree exactly with the naive ones (hypothesis-driven)."""

from hypothesis import given, settings

from repro.net.packet import Packet
from repro.policy.classifier import (
    Classifier,
    ComposeStats,
    Rule,
    sequential_compose,
)
from repro.policy.headerspace import WILDCARD
from repro.policy.policies import fwd, match, modify
from repro.core.composition import (
    sequential_compose_indexed,
    stack_disjoint,
    stack_fallback,
    strip_drop_tail,
)

from tests.policy.strategies import packets, policies


class TestStripDropTail:
    def test_strips_wildcard_drops(self):
        classifier = (match(dstport=80) >> fwd(2)).compile()
        rules = strip_drop_tail(classifier)
        assert all(not (r.is_drop and r.match.is_wildcard) for r in rules)

    def test_keeps_specific_drops(self):
        from repro.policy.headerspace import HeaderSpace
        classifier = Classifier([
            Rule(HeaderSpace(dstport=80), ()),
            Rule(WILDCARD, ()),
        ])
        rules = strip_drop_tail(classifier)
        assert len(rules) == 1
        assert rules[0].is_drop


class TestStackFallback:
    def test_primary_shadows_secondary(self):
        primary = (match(dstport=80) >> fwd(2)).compile()
        secondary = fwd(9).compile()
        stacked = stack_fallback([primary, secondary])
        assert stacked.eval(Packet(port=1, dstport=80)) == {Packet(port=2, dstport=80)}
        assert stacked.eval(Packet(port=1, dstport=22)) == {Packet(port=9, dstport=22)}

    def test_explicit_drop_in_primary_shadows(self):
        from repro.policy.headerspace import HeaderSpace
        primary = Classifier([Rule(HeaderSpace(dstport=80), ())])
        secondary = fwd(9).compile()
        stacked = stack_fallback([primary, secondary])
        assert stacked.eval(Packet(port=1, dstport=80)) == frozenset()

    def test_empty_stack_drops(self):
        stacked = stack_fallback([])
        assert stacked.is_total
        assert stacked.eval(Packet(port=1)) == frozenset()

    def test_stack_disjoint_preserves_parts(self):
        part_a = (match(port=1) >> fwd(5)).compile()
        part_b = (match(port=2) >> fwd(6)).compile()
        stacked = stack_disjoint([part_a, part_b])
        assert stacked.eval(Packet(port=1)) == {Packet(port=5)}
        assert stacked.eval(Packet(port=2)) == {Packet(port=6)}
        assert stacked.eval(Packet(port=3)) == frozenset()


class TestIndexedSequentialCompose:
    def test_matches_plain_on_port_structured_stages(self):
        stage1 = stack_disjoint([
            (match(port=1, dstport=80) >> fwd(10_000)).compile(),
            (match(port=1) >> fwd(10_001)).compile(),
        ])
        stage2 = stack_disjoint([
            (match(port=10_000) >> fwd(2)).compile(),
            (match(port=10_001) >> fwd(3)).compile(),
        ])
        plain = sequential_compose(stage1, stage2)
        indexed = sequential_compose_indexed(stage1, stage2)
        for packet in (Packet(port=1, dstport=80), Packet(port=1, dstport=22),
                       Packet(port=9, dstport=80)):
            assert plain.eval(packet) == indexed.eval(packet)

    def test_handles_multicast_left_rules(self):
        left = (fwd(4) + fwd(5)).compile()
        right = stack_disjoint([
            (match(port=4) >> modify(dstport=80)).compile(),
            (match(port=5) >> modify(dstport=443)).compile(),
        ])
        plain = sequential_compose(left, right)
        indexed = sequential_compose_indexed(left, right)
        packet = Packet(port=1)
        assert plain.eval(packet) == indexed.eval(packet)

    def test_counts_fewer_pairs(self):
        stage1 = stack_disjoint([
            (match(port=p, dstport=80) >> fwd(10_000 + p)).compile()
            for p in range(1, 20)
        ])
        stage2 = stack_disjoint([
            (match(port=10_000 + p) >> fwd(100 + p)).compile()
            for p in range(1, 20)
        ])
        plain_stats, indexed_stats = ComposeStats(), ComposeStats()
        sequential_compose(stage1, stage2, plain_stats)
        sequential_compose_indexed(stage1, stage2, indexed_stats)
        assert indexed_stats.rule_pairs_examined < plain_stats.rule_pairs_examined

    @settings(max_examples=80, deadline=None)
    @given(policies(max_depth=3), policies(max_depth=3), packets())
    def test_agrees_with_plain_property(self, left, right, packet):
        left_c = left.compile()
        right_c = right.compile()
        plain = sequential_compose(left_c, right_c)
        indexed = sequential_compose_indexed(left_c, right_c)
        assert plain.eval(packet) == indexed.eval(packet)
