"""System-level invariants from Sections 3-4, checked over randomized
SDX configurations with hypothesis:

* isolation — one participant's policies never affect another's traffic
  beyond its own virtual switch;
* BGP consistency — traffic is never delivered to a participant that did
  not announce (and export) a route for the destination;
* no loops / totality — every packet either egresses at a physical port
  or is dropped, in one pass through the fabric.

The invariant logic lives in :mod:`repro.verification.invariants` (the
same checkers the differential fuzzer runs after every trace step); this
suite drives them over hypothesis-generated exchanges and keeps direct
``egress_of``/``send`` assertions as anchors so the checkers themselves
stay honest.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.policies import fwd, match
from repro.verification.invariants import (
    check_bgp_consistency,
    check_default_conformance,
    check_single_delivery,
)
from repro.verification.oracle import compare_controllers

NAMES = ["A", "B", "C", "D"]
PREFIXES = [IPv4Prefix(f"{n}.0.0.0/8") for n in (30, 40, 50, 60)]


@st.composite
def sdx_configs(draw):
    """A random small SDX: who announces what, who polices what."""
    announcements = draw(st.lists(
        st.tuples(st.sampled_from(NAMES), st.sampled_from(PREFIXES),
                  st.integers(min_value=1, max_value=3)),
        min_size=2, max_size=8))
    policies = draw(st.lists(
        st.tuples(st.sampled_from(NAMES), st.sampled_from(NAMES),
                  st.sampled_from([80, 443, 53])),
        max_size=4))
    return announcements, policies


def build(announcements, policies):
    sdx = SdxController()
    for index, name in enumerate(NAMES):
        sdx.add_participant(name, 65001 + index)
    for sender, prefix, path_length in announcements:
        asn = 65001 + NAMES.index(sender)
        path = AsPath([asn] + [64000 + i for i in range(path_length)])
        sdx.announce_route(sender, prefix, path)
    for owner, target, port in policies:
        if owner == target:
            continue
        sdx.participant(owner).add_outbound(match(dstport=port) >> fwd(target))
    sdx.start()
    return sdx


def probe_packets():
    for prefix in PREFIXES:
        for port in (80, 443, 53, 22):
            yield Packet(dstip=prefix.first_address + 1, dstport=port,
                         srcip="10.0.0.1", protocol=6)


class TestInvariants:
    @settings(max_examples=25, deadline=None)
    @given(sdx_configs())
    def test_bgp_consistency_property(self, config):
        """Delivered traffic always has an announced+exported route at
        the egress participant (Section 4.1's first invariant)."""
        announcements, policies = config
        sdx = build(announcements, policies)
        probes = list(probe_packets())
        assert check_bgp_consistency(sdx, probes) == []
        # Anchor: the invariant stated directly for one delivered probe.
        for probe in probes:
            egress = sdx.egress_of("A", probe)
            if egress is None:
                continue
            covering = [
                prefix for prefix in sdx.route_server.announced_by(egress)
                if prefix.contains_address(probe["dstip"])
            ]
            assert covering and sdx.route_server.exports_to(egress, "A")
            break

    @settings(max_examples=25, deadline=None)
    @given(sdx_configs())
    def test_single_pass_delivery_property(self, config):
        """One fabric pass: every probe yields at most one delivery and
        that delivery is at a physical port (no loops, no vport leaks)."""
        announcements, policies = config
        sdx = build(announcements, policies)
        probes = list(probe_packets())
        assert check_single_delivery(sdx, probes) == []
        # Anchor: the raw delivery-shape assertions for one sender.
        physical = set(sdx.topology.physical_ports())
        for probe in probes:
            deliveries = sdx.send("B", probe)
            assert len(deliveries) <= 1
            for delivery in deliveries:
                assert delivery.switch_port in physical
                assert delivery.accepted

    @settings(max_examples=25, deadline=None)
    @given(sdx_configs())
    def test_default_conformance_property(self, config):
        """Border-router FIBs and VMAC tags agree with the route server
        and VNH allocator (the Section 4.2 tag encoding)."""
        announcements, policies = config
        sdx = build(announcements, policies)
        assert check_default_conformance(sdx) == []

    @settings(max_examples=25, deadline=None)
    @given(sdx_configs())
    def test_isolation_property(self, config):
        """Removing one participant's policies never changes how *other*
        participants' own outbound traffic is forwarded, except through
        BGP (which policies cannot alter)."""
        announcements, policies = config
        sdx_with = build(announcements, policies)
        sdx_without = build(announcements, [])
        policy_owners = {owner for owner, _target, _port in policies}
        bystanders = [name for name in NAMES if name not in policy_owners]
        probes = list(probe_packets())
        assert compare_controllers(sdx_without, sdx_with, probes,
                                   senders=bystanders) == []
        # Anchor: the direct pairwise egress comparison.
        for probe in probes:
            for sender in bystanders:
                assert (sdx_with.egress_of(sender, probe)
                        == sdx_without.egress_of(sender, probe))

    @settings(max_examples=15, deadline=None)
    @given(sdx_configs())
    def test_modes_equivalent_property(self, config):
        """Optimised and naive compilation, with and without VNH tags,
        forward identically (the Section 4 machinery is pure speedup)."""
        announcements, policies = config
        reference = build(announcements, policies)
        probes = list(probe_packets())
        for use_vnh, optimized in ((True, False), (False, True)):
            sdx = SdxController(use_vnh=use_vnh, optimized=optimized)
            for index, name in enumerate(NAMES):
                sdx.add_participant(name, 65001 + index)
            for sender, prefix, path_length in announcements:
                asn = 65001 + NAMES.index(sender)
                sdx.announce_route(
                    sender, prefix,
                    AsPath([asn] + [64000 + i for i in range(path_length)]))
            for owner, target, port in policies:
                if owner == target:
                    continue
                sdx.participant(owner).add_outbound(
                    match(dstport=port) >> fwd(target))
            sdx.start()
            violations = compare_controllers(reference, sdx, probes,
                                             senders=NAMES)
            assert not violations, (
                f"mode (vnh={use_vnh}, opt={optimized}): {violations[0]}")
            # Anchor: one direct comparison per prefix.
            for probe in probes[::4]:
                assert (sdx.egress_of("A", probe)
                        == reference.egress_of("A", probe))
