"""The process-wide metrics registry: counters, gauges, histograms.

Every pipeline stage records into a :class:`MetricsRegistry` — one per
:class:`~repro.core.controller.SdxController` by default, so concurrent
controllers (tests, ablations) never share state. Three metric kinds
cover the paper's evaluation axes:

* :class:`Counter` — monotonic event counts (updates processed, FlowMods
  sent, spans dropped);
* :class:`Gauge` — instantaneous levels (installed rules, live VNH
  pairs);
* :class:`Histogram` — *streaming* latency/size distributions. Samples
  land in logarithmic buckets (5% relative width), so p50/p99/max come
  out of O(buckets) memory without storing a single raw sample — the
  property that lets the registry run inside the update hot path.

Event-loss accounting rides on a naming convention: counters ending in
``_dropped_total``, ``_misses_total``, or ``_skipped_total`` count events
the pipeline *lost* (trace-buffer overflow, flow-table misses, ARP
failures, re-advertisements to down sessions); :meth:`MetricsRegistry.losses`
collects them so one call answers "did anything fall on the floor?".
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

#: Label sets are stored canonically as sorted (key, value) tuples.
LabelItems = Tuple[Tuple[str, str], ...]

#: Suffixes marking a counter as part of the event-loss account.
LOSS_SUFFIXES = ("_dropped_total", "_misses_total", "_skipped_total")


def _canonical_labels(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common identity shared by every metric kind."""

    kind = "metric"

    def __init__(self, name: str, help_text: str, labels: LabelItems):
        self.name = name
        self.help = help_text
        self._labels = labels

    @property
    def labels(self) -> Dict[str, str]:
        """The metric's label set as a plain dict."""
        return dict(self._labels)

    @property
    def full_name(self) -> str:
        """``name{k=v,...}`` — the unique series identity."""
        if not self._labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self._labels)
        return f"{self.name}{{{inner}}}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.full_name})"


class Counter(Metric):
    """A monotonically increasing event count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, labels: LabelItems):
        super().__init__(name, help_text, labels)
        self._value = 0

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self._value += amount

    def set(self, value: int) -> None:
        """Force the count to ``value`` (must not decrease).

        Exists for stats facades that mirror an externally-owned total
        (the southbound queue's coalescing count) into the registry.
        """
        if value < self._value:
            raise ValueError(
                f"counter {self.name} cannot decrease "
                f"({self._value} -> {value})")
        self._value = value


class Gauge(Metric):
    """An instantaneous level that may go up and down."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labels: LabelItems):
        super().__init__(name, help_text, labels)
        self._value = 0.0

    @property
    def value(self) -> float:
        """The current level."""
        return self._value

    def set(self, value: float) -> None:
        """Set the level."""
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        """Raise the level by ``amount``."""
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Lower the level by ``amount``."""
        self._value -= amount


#: Bucket boundaries grow by this factor — ~5% relative quantile error.
_HISTOGRAM_BASE = 1.1
_LOG_BASE = math.log(_HISTOGRAM_BASE)


class Histogram(Metric):
    """A streaming distribution over non-negative samples.

    Each sample lands in the logarithmic bucket ``floor(log_b(value))``
    (``b`` = 1.1), so memory is proportional to the sample *range*, not
    the sample count, and any quantile is recoverable to within one
    bucket (~5% relative error). ``min`` and ``max`` are tracked exactly,
    and :meth:`quantile` returns them exactly at q=0 and q=1 — matching
    the exact-endpoint contract of
    :meth:`repro.experiments.metrics.Cdf.quantile`.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str, labels: LabelItems):
        super().__init__(name, help_text, labels)
        self._buckets: Dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    @classmethod
    def from_samples(cls, name: str, samples: Iterable[float],
                     help_text: str = "") -> "Histogram":
        """A standalone histogram pre-filled with ``samples``.

        The benchmark scripts use this to push their measured
        distributions through the same percentile implementation the
        runtime telemetry reports from.
        """
        histogram = cls(name, help_text, ())
        for sample in samples:
            histogram.observe(sample)
        return histogram

    @staticmethod
    def _bucket_of(value: float) -> int:
        if value <= 0:
            return -(10 ** 6)  # dedicated underflow bucket
        return math.floor(math.log(value) / _LOG_BASE)

    def observe(self, value: float) -> None:
        """Record one sample."""
        self._count += 1
        self._sum += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        index = self._bucket_of(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        """Samples observed."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of every observed sample."""
        return self._sum

    @property
    def min(self) -> float:
        """Smallest sample (0.0 before any observation)."""
        return 0.0 if self._min is None else self._min

    @property
    def max(self) -> float:
        """Largest sample (0.0 before any observation)."""
        return 0.0 if self._max is None else self._max

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile by nearest rank over the bucketed samples.

        Exact at the endpoints (``q=0`` → min, ``q=1`` → max); interior
        quantiles return the geometric midpoint of the owning bucket,
        clamped into ``[min, max]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = max(1, min(self._count, math.ceil(q * self._count)))
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                if index <= -(10 ** 6):
                    return max(0.0, self.min)
                low = _HISTOGRAM_BASE ** index
                high = _HISTOGRAM_BASE ** (index + 1)
                mid = math.sqrt(low * high)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - rank always reached

    def percentiles(self) -> Dict[str, float]:
        """The standard summary quantiles: p50, p90, p99, and max."""
        return {
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p99": self.quantile(0.99),
            "max": self.max,
        }


class MetricsRegistry:
    """Creates, deduplicates, and snapshots metrics.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create: asking
    twice for the same ``(name, labels)`` returns the same object, so
    distant pipeline stages can share a series without passing handles
    around. Re-registering a name under a different kind raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, help_text: str,
                       labels: Dict[str, str]) -> Metric:
        key = (name, _canonical_labels(labels))
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}")
                return existing
            metric = cls(name, help_text, key[1])
            self._metrics[key] = metric
            return metric

    def counter(self, name: str, help_text: str = "", **labels: str) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get_or_create(Counter, name, help_text, labels)

    def gauge(self, name: str, help_text: str = "", **labels: str) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get_or_create(Gauge, name, help_text, labels)

    def histogram(self, name: str, help_text: str = "",
                  **labels: str) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get_or_create(Histogram, name, help_text, labels)

    def metrics(self) -> List[Metric]:
        """Every registered metric, ordered by (name, labels)."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def get(self, name: str, **labels: str) -> Optional[Metric]:
        """The metric at ``(name, labels)``, or ``None``."""
        return self._metrics.get((name, _canonical_labels(labels)))

    def losses(self) -> Dict[str, int]:
        """Every loss-accounting counter (see module docstring), by
        full name — nonzero values mean the pipeline dropped events."""
        out: Dict[str, int] = {}
        for metric in self.metrics():
            if isinstance(metric, Counter) and metric.name.endswith(LOSS_SUFFIXES):
                out[metric.full_name] = metric.value
        return out

    def snapshot(self) -> Dict[str, object]:
        """A JSON-serialisable dump of every metric.

        Counters and gauges map to their value; histograms to a dict of
        count/sum/min/mean/percentiles.
        """
        out: Dict[str, object] = {}
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                out[metric.full_name] = {
                    "count": metric.count,
                    "sum": metric.sum,
                    "min": metric.min,
                    "mean": metric.mean,
                    **metric.percentiles(),
                }
            else:
                out[metric.full_name] = metric.value  # type: ignore[union-attr]
        return out

    def render(self) -> str:
        """A plain-text table of every metric (the ``repro stats`` view)."""
        rows: List[Tuple[str, str]] = []
        for metric in self.metrics():
            if isinstance(metric, Histogram):
                if metric.count == 0:
                    rows.append((metric.full_name, "(no samples)"))
                    continue
                p = metric.percentiles()
                rows.append((
                    metric.full_name,
                    f"count={metric.count} p50={p['p50']:.6g} "
                    f"p99={p['p99']:.6g} max={p['max']:.6g}"))
            else:
                value = metric.value  # type: ignore[union-attr]
                rows.append((metric.full_name, f"{value:g}"))
        if not rows:
            return "(no metrics)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name.ljust(width)}  {value}"
                        for name, value in rows)

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._metrics)} metrics)"
