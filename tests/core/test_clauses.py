"""Tests for clause-form policy normalisation."""

import pytest

from repro.exceptions import PolicyError
from repro.policy.policies import drop, fwd, identity, match, modify
from repro.core.clauses import Clause, normalize_policy


class TestBasicForms:
    def test_single_forward_clause(self):
        clauses = normalize_policy(match(dstport=80) >> fwd("B"))
        assert len(clauses) == 1
        clause = clauses[0]
        assert clause.target == "B"
        assert not clause.drops
        assert clause.modifications == ()

    def test_parallel_sum_of_clauses(self):
        policy = (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C"))
        clauses = normalize_policy(policy)
        assert [clause.target for clause in clauses] == ["B", "C"]

    def test_modify_then_forward(self):
        clauses = normalize_policy(
            match(dstip="74.125.1.1") >> modify(dstip="10.0.0.9") >> fwd("B"))
        clause = clauses[0]
        assert dict(clause.modifications)["dstip"] is not None
        assert clause.target == "B"

    def test_drop_clause(self):
        clauses = normalize_policy(match(srcip="6.6.6.0/24") >> drop)
        assert clauses[0].drops
        assert clauses[0].target is None

    def test_bare_drop_is_inert(self):
        assert normalize_policy(drop) == []

    def test_bare_identity_is_inert(self):
        assert normalize_policy(identity) == []

    def test_bare_predicate_clause(self):
        clauses = normalize_policy(match(dstport=80))
        assert len(clauses) == 1
        assert clauses[0].target is None
        assert not clauses[0].has_action

    def test_bare_forward(self):
        clauses = normalize_policy(fwd("B"))
        assert clauses[0].target == "B"

    def test_bare_modify(self):
        clauses = normalize_policy(modify(dstport=8080))
        assert dict(clauses[0].modifications) == {"dstport": 8080}


class TestDistribution:
    def test_predicate_distributes_over_parallel(self):
        """The paper's load-balancer shape: outer match over inner sum."""
        policy = match(dstip="74.125.1.1") >> (
            (match(srcip="96.0.0.0/8") >> modify(dstip="74.1.1.1"))
            + (match(srcip="128.0.0.0/8") >> modify(dstip="74.2.2.2")))
        clauses = normalize_policy(policy)
        assert len(clauses) == 2
        for clause in clauses:
            # Outer predicate folded into each branch.
            from repro.net.packet import Packet
            assert not clause.predicate.holds(
                Packet(dstip="9.9.9.9", srcip="96.1.1.1"))

    def test_nested_sequential_flattens(self):
        policy = (match(dstport=80) >> (match(protocol=6) >> fwd("B")))
        clauses = normalize_policy(policy)
        assert len(clauses) == 1
        from repro.net.packet import Packet
        assert clauses[0].predicate.holds(Packet(dstport=80, protocol=6))
        assert not clauses[0].predicate.holds(Packet(dstport=80, protocol=17))

    def test_clause_order_preserved(self):
        policy = (match(dstport=1) >> fwd("B")) + (match(dstport=2) >> fwd("C")) + (
            match(dstport=3) >> fwd("D"))
        assert [c.target for c in normalize_policy(policy)] == ["B", "C", "D"]


class TestClauseDstip:
    def test_single_match(self):
        from repro.core.clauses import clause_dstip
        clauses = normalize_policy(match(dstip="20.0.0.0/8") >> fwd("B"))
        assert str(clause_dstip(clauses[0].predicate)) == "20.0.0.0/8"

    def test_conjunction_intersects(self):
        from repro.core.clauses import clause_dstip
        pred = match(dstip="20.0.0.0/8") & match(dstip="20.1.0.0/16")
        assert str(clause_dstip(pred)) == "20.1.0.0/16"

    def test_no_dstip_constraint(self):
        from repro.core.clauses import clause_dstip
        assert clause_dstip(match(dstport=80)) is None

    def test_disjunction_gives_up(self):
        from repro.core.clauses import clause_dstip
        pred = match(dstip="20.0.0.0/8") | match(dstip="30.0.0.0/8")
        assert clause_dstip(pred) is None

    def test_negation_gives_up(self):
        from repro.core.clauses import clause_dstip
        assert clause_dstip(~match(dstip="20.0.0.0/8")) is None

    def test_mixed_conjunction(self):
        from repro.core.clauses import clause_dstip
        pred = match(dstport=80) & match(dstip="20.0.0.0/8")
        assert str(clause_dstip(pred)) == "20.0.0.0/8"


class TestRejectedShapes:
    def test_match_after_modify_rejected(self):
        with pytest.raises(PolicyError):
            normalize_policy(modify(dstport=80) >> match(dstport=80) >> fwd("B"))

    def test_two_targets_rejected(self):
        with pytest.raises(PolicyError):
            normalize_policy(match(dstport=80) >> fwd("B") >> fwd("C"))

    def test_anything_after_drop_rejected(self):
        with pytest.raises(PolicyError):
            normalize_policy(match(dstport=80) >> drop >> fwd("B"))
        with pytest.raises(PolicyError):
            normalize_policy(match(dstport=80) >> drop >> modify(dstport=1))

    def test_drop_plus_modify_impossible(self):
        with pytest.raises(PolicyError):
            normalize_policy(match(dstport=80) >> modify(dstport=1) >> drop)

    def test_describe_is_readable(self):
        clause = normalize_policy(match(dstport=80) >> fwd("B"))[0]
        assert "fwd('B')" in clause.describe()
        dropped = normalize_policy(match(dstport=80) >> drop)[0]
        assert "drop" in dropped.describe()
