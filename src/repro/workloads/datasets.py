"""The Table 1 dataset profiles.

The paper analyses RIPE RIS BGP update traces collected at the three
largest IXPs for January 1-6, 2014 (resets removed per Zhang et al.).
These profiles carry the published summary statistics; the trace
generator targets them, and the Table 1 benchmark regenerates the table
from synthetic traces to validate the generator.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class IxpProfile:
    """Summary statistics of one IXP's BGP dataset (Table 1)."""

    name: str
    collector_peers: int
    total_peers: int
    prefixes: int
    bgp_updates: int
    fraction_prefixes_updated: float
    duration_days: int = 6

    @property
    def updates_per_second(self) -> float:
        """Mean update rate over the collection window."""
        return self.bgp_updates / (self.duration_days * 86_400)

    def scaled(self, factor: float) -> "IxpProfile":
        """A proportionally smaller profile for laptop-scale runs.

        Counts scale by ``factor``; the updated-prefix *fraction* is scale
        free and stays fixed.
        """
        if not 0 < factor <= 1:
            raise ValueError(f"scale factor must be in (0, 1], got {factor}")
        return replace(
            self,
            collector_peers=max(2, round(self.collector_peers * factor)),
            total_peers=max(2, round(self.total_peers * factor)),
            prefixes=max(10, round(self.prefixes * factor)),
            bgp_updates=max(10, round(self.bgp_updates * factor)),
        )


#: Table 1, column "AMS-IX".
AMS_IX = IxpProfile(
    name="AMS-IX",
    collector_peers=116,
    total_peers=639,
    prefixes=518_082,
    bgp_updates=11_161_624,
    fraction_prefixes_updated=0.0988,
)

#: Table 1, column "DE-CIX".
DE_CIX = IxpProfile(
    name="DE-CIX",
    collector_peers=92,
    total_peers=580,
    prefixes=518_391,
    bgp_updates=30_934_525,
    fraction_prefixes_updated=0.1364,
)

#: Table 1, column "LINX".
LINX = IxpProfile(
    name="LINX",
    collector_peers=71,
    total_peers=496,
    prefixes=503_392,
    bgp_updates=16_658_819,
    fraction_prefixes_updated=0.1267,
)

#: All three profiles in the paper's column order.
ALL_PROFILES: Tuple[IxpProfile, ...] = (AMS_IX, DE_CIX, LINX)
