"""Hand-built federated scenarios shared across the federation tests.

Three canonical shapes:

* :func:`loop_scenario` — the two-exchange, two-transit pair whose
  composed outbound policies forward port-80 traffic in a cycle
  (the SDX008 witness case);
* :func:`blackhole_scenario` — a sender steers traffic into a shared
  transit whose policy at the *next* exchange drops it (the SDX009
  witness case);
* :func:`clean_scenario` — a stitched path that terminates at the
  destination prefix's registered origin (no findings).
"""

from repro.federation import (
    FederatedAnnouncement,
    FederatedParticipant,
    FederatedPolicy,
    FederatedScenario,
)

PREFIX = "198.51.100.0/24"
PORT = 80


def loop_scenario() -> FederatedScenario:
    """Two shared transits steering port-80 traffic at each other."""
    return FederatedScenario(
        seed=1,
        exchanges=("IXP-A", "IXP-B"),
        participants=(
            FederatedParticipant(name="West", asn=65001,
                                 exchanges=("IXP-A", "IXP-B")),
            FederatedParticipant(name="East", asn=65002,
                                 exchanges=("IXP-B", "IXP-A")),
        ),
        prefixes=(PREFIX,),
        owners=(),
        announcements=(
            FederatedAnnouncement(exchange="IXP-A", participant="West",
                                  prefix=PREFIX, as_path=(65001, 64700)),
            FederatedAnnouncement(exchange="IXP-B", participant="East",
                                  prefix=PREFIX, as_path=(65002, 64700)),
        ),
        policies=(
            FederatedPolicy(exchange="IXP-A", participant="East",
                            direction="out", field="dstport", value=PORT,
                            target="West"),
            FederatedPolicy(exchange="IXP-B", participant="West",
                            direction="out", field="dstport", value=PORT,
                            target="East"),
        ),
        trace=(),
    )


def blackhole_scenario() -> FederatedScenario:
    """A sender steers traffic into a transit that drops it one IXP later.

    ``Sender`` (IXP-A only) forwards port-80 traffic to the shared
    ``Transit``, which resells ``Relay``'s route from IXP-B at IXP-A.
    At IXP-B, ``Transit`` drops exactly that traffic — locally a
    legitimate scrubbing policy, but composed with IXP-A's steering it
    blackholes traffic IXP-A accepted.
    """
    return FederatedScenario(
        seed=2,
        exchanges=("IXP-A", "IXP-B"),
        participants=(
            FederatedParticipant(name="Sender", asn=65001,
                                 exchanges=("IXP-A",)),
            FederatedParticipant(name="Transit", asn=65002,
                                 exchanges=("IXP-A", "IXP-B")),
            FederatedParticipant(name="Relay", asn=65003,
                                 exchanges=("IXP-B",)),
        ),
        prefixes=(PREFIX,),
        owners=(),
        announcements=(
            FederatedAnnouncement(exchange="IXP-A", participant="Transit",
                                  prefix=PREFIX, as_path=(65002, 64700)),
            FederatedAnnouncement(exchange="IXP-B", participant="Relay",
                                  prefix=PREFIX, as_path=(65003, 64700)),
        ),
        policies=(
            FederatedPolicy(exchange="IXP-A", participant="Sender",
                            direction="out", field="dstport", value=PORT,
                            target="Transit"),
            FederatedPolicy(exchange="IXP-B", participant="Transit",
                            direction="out", field="dstport", value=PORT,
                            target=None),
        ),
        trace=(),
    )


def clean_scenario() -> FederatedScenario:
    """A stitched path that terminates: the destination has an origin.

    ``Eyeball`` (IXP-B) steers port-80 traffic into the shared
    ``Transit``, which carries it to IXP-A where ``Content`` — the
    registered origin of the prefix — announces it. Delivered via
    origin; nothing to report.
    """
    return FederatedScenario(
        seed=3,
        exchanges=("IXP-A", "IXP-B"),
        participants=(
            FederatedParticipant(name="Transit", asn=65010,
                                 exchanges=("IXP-A", "IXP-B")),
            FederatedParticipant(name="Content", asn=65020,
                                 exchanges=("IXP-A",)),
            FederatedParticipant(name="Eyeball", asn=65030,
                                 exchanges=("IXP-B",)),
        ),
        prefixes=(PREFIX,),
        owners=((PREFIX, "Content"),),
        announcements=(
            FederatedAnnouncement(exchange="IXP-A", participant="Content",
                                  prefix=PREFIX, as_path=(65020, 64900)),
            FederatedAnnouncement(exchange="IXP-B", participant="Transit",
                                  prefix=PREFIX,
                                  as_path=(65010, 65020, 64900)),
        ),
        policies=(
            FederatedPolicy(exchange="IXP-B", participant="Eyeball",
                            direction="out", field="dstport", value=PORT,
                            target="Transit"),
        ),
        trace=(),
    )
