"""Federation-aware static checks: SDX008 and SDX009.

Both checks reason about the *cross-exchange reachability graph*: the
state machine whose nodes are ``(exchange, sender)`` pairs and whose
edges are induced by composed outbound policies plus BGP next-hops (the
same walk both dataplane arms execute — see
:func:`repro.federation.dataplane.walk_federation`).

* **SDX008 — inter-exchange forwarding loop** (error): a witness packet
  admitted by an outbound forwarding clause walks the graph back into a
  state it already visited. Each hop of the composed path is locally
  valid (every clause's target exports an eligible route), which is
  exactly why no single exchange can see the cycle.
* **SDX009 — stitched-path blackhole** (warning): a witness packet
  steered out of exchange A into a shared participant is dropped by a
  policy at the participant's next exchange — the first exchange
  accepted traffic that the stitched path can never deliver.

**Soundness contract.** Verdicts are point-wise: a walk only produces a
finding when every clause consulted along it was evaluated exactly on
the concrete witness packet (``predicate.holds``) and none was dynamic,
when every hop's FIB gate and default route were derived from a *unique*
covering announced prefix (nested announced prefixes abort the walk),
and when every re-entry decision used the same presence-preference rule
the dataplane drivers use. Walks that touch a dynamic clause or an
ambiguous covering return no verdict at all. The fuzz harness
(:mod:`repro.verification.federation`) holds both checks to this
contract by re-executing every witness in the federated reference
interpreter: SDX008 witnesses must actually loop, SDX009 witnesses must
actually drop beyond their first exchange.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.participant import Participant
from repro.exceptions import ParticipantError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.packet import Packet
from repro.policy.headerspace import HeaderSpace
from repro.statics.analyzer import analyze_controller
from repro.statics.checks import Check, StaticsContext
from repro.statics.diagnostics import (
    Diagnostic,
    Severity,
    SourceLocation,
    StaticsReport,
)
from repro.statics.regions import witness_packet


class FederationContext:
    """Everything one federation analysis looks at, with caches."""

    def __init__(self, federation) -> None:
        self.federation = federation
        self._contexts: Dict[str, StaticsContext] = {}
        self._members: Dict[str, Dict[str, Participant]] = {}
        self._walks: Dict[Tuple[str, str, Tuple], "FederatedWalkResult"] = {}

    def exchanges(self) -> Tuple[str, ...]:
        """Member exchange names, in registration order."""
        return self.federation.exchanges()

    def statics(self, exchange: str) -> StaticsContext:
        """The cached single-exchange statics context of one exchange."""
        context = self._contexts.get(exchange)
        if context is None:
            context = StaticsContext.from_controller(
                self.federation.exchange(exchange))
            self._contexts[exchange] = context
        return context

    def member(self, exchange: str, name: str) -> Participant:
        """The participant record of ``name`` at one exchange."""
        members = self._members.get(exchange)
        if members is None:
            members = {participant.name: participant
                       for participant in self.statics(exchange).participants()}
            self._members[exchange] = members
        return members[name]

    def presence(self, name: str) -> Tuple[str, ...]:
        """The exchanges ``name`` attends, in preference order."""
        return self.federation.presence(name)

    def origin_of(self, dstip: IPv4Address) -> Optional[str]:
        """The registered origin participant of ``dstip``, if any."""
        return self.federation.origin_of(dstip)

    def walk(self, exchange: str, sender: str,
             packet: Packet) -> "FederatedWalkResult":
        """The (cached) static walk of one witness packet."""
        key = (exchange, sender,
               tuple(sorted((name, str(value))
                            for name, value in packet.items())))
        result = self._walks.get(key)
        if result is None:
            result = walk_statically(self, exchange, sender, packet)
            self._walks[key] = result
        return result


@dataclass(frozen=True)
class HopDecision:
    """How one exchange disposes of one concrete packet.

    ``kind`` is ``"fwd"`` (policy clause wins; ``clause_index`` and
    ``target`` set), ``"default"`` (best-route default; ``target`` set),
    ``"drop"`` (a drop clause wins), ``"selfport"`` (a raw-port forward
    returns the packet to the sender's own interface), ``"nofib"`` (no
    unique announced covering prefix with a best route — the border
    router never emits the packet), ``"inbound-drop"`` (the chosen
    egress's inbound policy refuses it), ``"dynamic"`` (a dynamic clause
    blocks point-wise reasoning), or ``"ambiguous"`` (nested announced
    prefixes make the FIB gate order-dependent).
    """

    kind: str
    clause_index: Optional[int] = None
    target: Optional[str] = None


#: Decision kinds that end a walk without any verdict.
_UNSOUND = ("dynamic", "ambiguous")


def _unique_covering(context: StaticsContext,
                     dstip: IPv4Address) -> Tuple[Optional[IPv4Prefix], bool]:
    """(the single announced prefix covering ``dstip``, soundness flag).

    Returns ``(None, True)`` when nothing covers the address and
    ``(None, False)`` when several announced prefixes nest over it (the
    reference resolves that by list order the analyzer cannot see, so
    the walk must give up).
    """
    covering = [prefix for prefix in context.route_server.all_prefixes()
                if prefix.contains_address(dstip)]
    if not covering:
        return None, True
    if len(set(covering)) > 1:
        return None, False
    return covering[0], True


def decide_hop(context: StaticsContext, sender: Participant,
               packet: Packet) -> HopDecision:
    """Point-wise outbound disposition of one packet at one exchange.

    Mirrors the reference interpreter's rule bands exactly: the border
    FIB gate first, then outbound clauses in installation order (a
    forwarding clause wins only when an eligible prefix of its target
    covers the destination), then the per-prefix best-route default.
    """
    dstip = packet.get("dstip")
    if dstip is None:
        return HopDecision(kind="nofib")
    covering, sound = _unique_covering(context, dstip)
    if not sound:
        return HopDecision(kind="ambiguous")
    if covering is None or context.route_server.best_route_for(
            sender.name, covering) is None:
        return HopDecision(kind="nofib")
    for index, info in enumerate(context.clause_info(sender, "out")):
        if info.dynamic:
            return HopDecision(kind="dynamic", clause_index=index)
        clause = info.clause
        if not clause.predicate.holds(packet):
            continue
        if clause.drops:
            return HopDecision(kind="drop", clause_index=index)
        if isinstance(clause.target, str):
            try:
                eligible = context.route_server.reachable_prefixes(
                    sender.name, via=clause.target)
            except ParticipantError:
                continue
            if any(prefix.contains_address(dstip) for prefix in eligible):
                return HopDecision(kind="fwd", clause_index=index,
                                   target=clause.target)
            continue
        return HopDecision(kind="selfport", clause_index=index)
    best = context.route_server.best_route_for(sender.name, covering)
    if best is None:  # pragma: no cover - gated above
        return HopDecision(kind="nofib")
    return HopDecision(kind="default", target=best.learned_from)


def _inbound_refuses(context: StaticsContext, egress: Participant,
                     packet: Packet) -> Optional[bool]:
    """Whether the egress's inbound policy drops the packet.

    ``None`` means a dynamic inbound clause was reached before any
    static match, so the disposition is unknowable point-wise.
    """
    for info in context.clause_info(egress, "in"):
        if info.dynamic:
            return None
        if info.clause.predicate.holds(packet):
            return info.clause.drops
    return False


@dataclass(frozen=True)
class FederatedWalkResult:
    """The statically predicted fate of one witness packet.

    ``kind`` mirrors :class:`~repro.federation.dataplane.\
FederatedOutcome` (``"delivered"``/``"dropped"``/``"loop"``) plus
    ``"unknown"`` when the walk aborted without a sound verdict. Hops
    are ``(exchange, sender)`` states; ``decisions`` records each hop's
    :class:`HopDecision`; ``cycle`` holds the repeating segment of a
    loop; for drops, ``drop_exchange`` / ``drop_participant`` /
    ``drop_clause`` / ``drop_reason`` name the killer.
    """

    kind: str
    hops: Tuple[Tuple[str, str], ...]
    decisions: Tuple[HopDecision, ...] = ()
    cycle: Tuple[Tuple[str, str], ...] = ()
    via: Optional[str] = None
    participant: Optional[str] = None
    drop_exchange: Optional[str] = None
    drop_participant: Optional[str] = None
    drop_clause: Optional[int] = None
    drop_reason: Optional[str] = None

    @property
    def has_policy_hop(self) -> bool:
        """True when any hop's disposition came from a policy clause."""
        return any(decision.kind == "fwd" for decision in self.decisions)


def walk_statically(fcontext: FederationContext, exchange: str, sender: str,
                    packet: Packet) -> FederatedWalkResult:
    """Walk one concrete packet through the cross-exchange graph.

    Implements the same hop-state machine as the dataplane drivers, but
    through point-wise exact reasoning over live controller state; any
    unsound step yields ``kind="unknown"`` instead of a verdict.
    """
    dstip = packet.get("dstip")
    hops: List[Tuple[str, str]] = []
    decisions: List[HopDecision] = []
    seen: Dict[Tuple[str, str], int] = {}
    current = (exchange, sender)
    while True:
        if current in seen:
            return FederatedWalkResult(
                kind="loop", hops=tuple(hops), decisions=tuple(decisions),
                cycle=tuple(hops[seen[current]:]))
        seen[current] = len(hops)
        hops.append(current)
        here, name = current
        context = fcontext.statics(here)
        decision = decide_hop(context, fcontext.member(here, name), packet)
        decisions.append(decision)
        if decision.kind in _UNSOUND:
            return FederatedWalkResult(
                kind="unknown", hops=tuple(hops), decisions=tuple(decisions))
        if decision.kind == "drop":
            return FederatedWalkResult(
                kind="dropped", hops=tuple(hops), decisions=tuple(decisions),
                drop_exchange=here, drop_participant=name,
                drop_clause=decision.clause_index, drop_reason="outbound-drop")
        if decision.kind == "nofib":
            return FederatedWalkResult(
                kind="dropped", hops=tuple(hops), decisions=tuple(decisions),
                drop_exchange=here, drop_participant=name,
                drop_reason="no-route")
        if decision.kind == "selfport":
            return FederatedWalkResult(
                kind="delivered", hops=tuple(hops),
                decisions=tuple(decisions), via="upstream", participant=name)
        egress = decision.target
        assert egress is not None
        refused = _inbound_refuses(
            context, fcontext.member(here, egress), packet)
        if refused is None:
            return FederatedWalkResult(
                kind="unknown", hops=tuple(hops), decisions=tuple(decisions))
        if refused:
            return FederatedWalkResult(
                kind="dropped", hops=tuple(hops), decisions=tuple(decisions),
                drop_exchange=here, drop_participant=egress,
                drop_reason="inbound-drop")
        if dstip is not None and fcontext.origin_of(dstip) == egress:
            return FederatedWalkResult(
                kind="delivered", hops=tuple(hops),
                decisions=tuple(decisions), via="origin", participant=egress)
        onward = _next_exchange(fcontext, egress, here, dstip)
        if onward == "?":
            return FederatedWalkResult(
                kind="unknown", hops=tuple(hops), decisions=tuple(decisions))
        if onward is None:
            return FederatedWalkResult(
                kind="delivered", hops=tuple(hops),
                decisions=tuple(decisions), via="upstream",
                participant=egress)
        current = (onward, egress)


def _next_exchange(fcontext: FederationContext, participant: str,
                   arrived_at: str, dstip) -> Optional[str]:
    """The re-entry exchange, ``None`` for upstream exit, ``"?"`` when
    nested announced prefixes make the choice unsound."""
    if dstip is None:
        return None
    for exchange in fcontext.presence(participant):
        if exchange == arrived_at:
            continue
        context = fcontext.statics(exchange)
        covering, sound = _unique_covering(context, dstip)
        if not sound:
            return "?"
        if covering is not None and context.route_server.best_route_for(
                participant, covering) is not None:
            return exchange
    return None


def _probes(context: StaticsContext, regions: Sequence[HeaderSpace],
            prefixes: Sequence[IPv4Prefix]) -> List[Packet]:
    """Witness packets concretised from effective clause regions.

    Regions without a destination constraint are refined with each
    announced prefix first, so every probe survives the border FIB gate
    (mirroring the single-exchange cross-check's probe rule).
    """
    probes: List[Packet] = []
    for region in regions:
        if "dstip" in region:
            probes.append(witness_packet(region))
            continue
        for prefix in prefixes:
            refined = region.intersect(HeaderSpace(dstip=prefix))
            if refined is not None:
                probes.append(witness_packet(refined))
    return probes


def _iter_clause_probes(fcontext: FederationContext):
    """Yield (exchange, sender participant, clause index, probe packet)
    for every non-dynamic outbound forwarding clause in the federation."""
    for exchange in fcontext.exchanges():
        context = fcontext.statics(exchange)
        prefixes = context.route_server.all_prefixes()
        for participant in context.participants():
            if participant.is_remote:
                continue
            infos = context.clause_info(participant, "out")
            effective = context.effective(participant, "out")
            for index, info in enumerate(infos):
                if (info.dynamic or info.clause.drops
                        or not isinstance(info.clause.target, str)):
                    continue
                for probe in _probes(context, effective[index], prefixes):
                    yield exchange, participant, index, probe


def _walk_data(walk: FederatedWalkResult,
               origin: Tuple[str, str]) -> List[Tuple[str, object]]:
    """Diagnostic payload entries shared by both federation checks."""
    return [
        ("origin_exchange", origin[0]),
        ("origin_participant", origin[1]),
        ("hops", [f"{exchange}:{name}" for exchange, name in walk.hops]),
    ]


class FederationCheck(Check):
    """Base class for checks over a whole federation.

    Subclasses implement :meth:`run` over a :class:`FederationContext`
    instead of a single-exchange
    :class:`~repro.statics.checks.StaticsContext`.
    """

    def run(self, context: FederationContext) -> Iterator[Diagnostic]:  # type: ignore[override]
        """Yield findings over the federation."""
        raise NotImplementedError


class InterExchangeLoopCheck(FederationCheck):
    """SDX008: composed outbound policies forward a packet in a cycle."""

    check_id = "SDX008"
    name = "inter-exchange-loop"
    default_severity = Severity.ERROR

    def run(self, context: FederationContext) -> Iterator[Diagnostic]:
        """Walk every forwarding clause's witnesses; report each cycle once."""
        reported = set()
        for exchange, participant, index, probe in _iter_clause_probes(context):
            walk = context.walk(exchange, participant.name, probe)
            if walk.kind != "loop" or not walk.has_policy_hop:
                continue
            first = walk.decisions[0]
            anchor = first.clause_index if first.kind == "fwd" else index
            key = (exchange, participant.name, anchor)
            if key in reported:
                continue
            reported.add(key)
            ring = " -> ".join(f"{ex}:{name}" for ex, name in walk.cycle)
            ring += f" -> {walk.cycle[0][0]}:{walk.cycle[0][1]}"
            yield self._diagnostic(
                SourceLocation(participant=participant.name, direction="out",
                               clause_index=anchor),
                f"outbound clause #{anchor} at {exchange} steers traffic "
                f"into an inter-exchange forwarding loop [{ring}]; every "
                f"hop is locally valid, so no single exchange can see the "
                f"cycle",
                witness=probe,
                data=_walk_data(walk, (exchange, participant.name)) + [
                    ("cycle", [f"{ex}:{name}" for ex, name in walk.cycle]),
                ])


class StitchedBlackholeCheck(FederationCheck):
    """SDX009: traffic steered across exchanges into a policy drop."""

    check_id = "SDX009"
    name = "stitched-path-blackhole"
    default_severity = Severity.WARNING

    def run(self, context: FederationContext) -> Iterator[Diagnostic]:
        """Walk every forwarding clause's witnesses; report stitched drops.

        Only drops *beyond the first exchange* are stitched blackholes —
        same-exchange drops are SDX005's single-exchange territory — and
        only policy-inflicted drops are reported (a missing route at a
        later exchange never admits the packet in the first place, by
        the re-entry rule).
        """
        reported = set()
        for exchange, participant, index, probe in _iter_clause_probes(context):
            walk = context.walk(exchange, participant.name, probe)
            if walk.kind != "dropped" or len(walk.hops) < 2:
                continue
            if walk.drop_reason not in ("outbound-drop", "inbound-drop"):
                continue
            first = walk.decisions[0]
            anchor = first.clause_index if first.kind == "fwd" else index
            key = (exchange, participant.name, anchor,
                   walk.drop_exchange, walk.drop_participant)
            if key in reported:
                continue
            reported.add(key)
            clause_text = (f" clause #{walk.drop_clause}"
                           if walk.drop_clause is not None else "")
            yield self._diagnostic(
                SourceLocation(participant=participant.name, direction="out",
                               clause_index=anchor),
                f"outbound clause #{anchor} at {exchange} steers traffic "
                f"onto a stitched path that {walk.drop_participant!r}'s "
                f"{walk.drop_reason.replace('-', ' ')}{clause_text} at "
                f"{walk.drop_exchange} blackholes",
                witness=probe,
                data=_walk_data(walk, (exchange, participant.name)) + [
                    ("drop_exchange", walk.drop_exchange),
                    ("drop_participant", walk.drop_participant),
                    ("drop_reason", walk.drop_reason),
                    ("drop_clause", walk.drop_clause),
                ])


#: The federation check battery, in execution order.
DEFAULT_FEDERATION_CHECKS: Tuple[FederationCheck, ...] = (
    InterExchangeLoopCheck(),
    StitchedBlackholeCheck(),
)


def analyze_federation(federation, *,
                       checks: Sequence[FederationCheck] = DEFAULT_FEDERATION_CHECKS,
                       telemetry=None) -> StaticsReport:
    """Lint a whole federation: per-exchange battery + SDX008/SDX009.

    Every member exchange runs the full single-exchange check catalogue
    (each finding tagged with an ``exchange`` data entry), then the
    federation checks run over the cross-exchange graph. Returns one
    merged :class:`~repro.statics.diagnostics.StaticsReport`.
    """
    if telemetry is None:
        telemetry = getattr(federation, "telemetry", None)
    report = StaticsReport()
    check_ids: List[str] = []
    for exchange in federation.exchanges():
        member = analyze_controller(
            federation.exchange(exchange), telemetry=telemetry)
        for diagnostic in member.diagnostics:
            report.diagnostics.append(replace(
                diagnostic,
                data=diagnostic.data + (("exchange", exchange),)))
        report.participants_analyzed += member.participants_analyzed
        report.clauses_analyzed += member.clauses_analyzed
        for check_id in member.checks_run:
            if check_id not in check_ids:
                check_ids.append(check_id)
    fcontext = FederationContext(federation)
    for check in checks:
        report.extend(list(check.run(fcontext)))
        check_ids.append(check.check_id)
    report.checks_run = tuple(check_ids)
    if telemetry is not None:
        telemetry.registry.counter(
            "sdx_statics_federation_runs_total",
            "Federation-wide static-analysis runs").inc()
        telemetry.registry.counter(
            "sdx_statics_federation_diagnostics_total",
            "Diagnostics emitted by federation-wide analysis").inc(
            len(report.diagnostics))
    return report
