"""Failure injection: the SDX under churn, staleness, and misbehaviour.

Covers the failure modes DESIGN.md calls out: session resets mid-flow,
ARP staleness, unknown VNH queries, policies naming missing participants,
and churn racing the background re-optimisation.
"""

import pytest

from repro.bgp.asn import AsPath
from repro.exceptions import PolicyError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.policy.policies import fwd, match

from tests.core.scenarios import P1, P3, P5, figure1_controller, packet


class TestSessionChurn:
    def test_reset_mid_flow_blackholes_then_recovers(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        assert sdx.egress_of("A", packet("15.0.0.1")) == "E"
        sdx.route_server.reset_session("E")
        # The withdrawal reaches A's router immediately: traffic stops.
        assert sdx.egress_of("A", packet("15.0.0.1")) is None
        sdx.announce_route("E", P5, AsPath([65005, 600]))
        assert sdx.egress_of("A", packet("15.0.0.1")) == "E"

    def test_flapping_route_remains_consistent(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        for _ in range(5):
            sdx.withdraw_route("B", P1)
            assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "C"
            sdx.announce_route("B", P1, AsPath([65002, 300, 100]))
            assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "B"

    def test_background_recompilation_between_flaps(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        for _ in range(3):
            sdx.withdraw_route("B", P1)
            sdx.run_background_recompilation()
            sdx.announce_route("B", P1, AsPath([65002, 300, 100]))
            sdx.run_background_recompilation()
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "B"
        assert sdx.engine.fast_path_rules_live == 0

    def test_remove_peer_cleans_forwarding(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.route_server.remove_peer("E")
        sdx.run_background_recompilation()
        assert sdx.egress_of("A", packet("15.0.0.1")) is None


class TestArpAndVnhStaleness:
    def test_unknown_vnh_query_unanswered(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        ghost = IPv4Address("172.16.200.200")
        assert sdx.allocator.responder.owns(ghost)
        assert sdx.fabric.arp.resolve(ghost) is None

    def test_stale_arp_cache_recovers_after_refresh(self):
        """A router with a flushed ARP cache re-resolves the VNHs it
        already knows from the RIB."""
        sdx, *_ = figure1_controller()
        sdx.start()
        router = sdx.fabric.router("A")
        router.flush_arp()
        router.refresh_fib()
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "B"

    def test_released_vnh_is_unresolvable(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.withdraw_route("C", P1)          # fast path assigns new VNH
        ephemeral_vnh = sdx.allocator.next_hop_for_prefix(P1)
        sdx.run_background_recompilation()   # reclaims the ephemeral
        new_vnh = sdx.allocator.next_hop_for_prefix(P1)
        assert new_vnh is not None
        assert new_vnh != ephemeral_vnh
        # The reclaimed ephemeral no longer resolves; the steady-state
        # binding does. (The prefix's *pre-update* group VNH may still
        # resolve — stable assignment keeps it for the prefixes that
        # stayed behind in that group.)
        live = set(sdx.allocator.responder.bindings())
        assert new_vnh in live
        assert ephemeral_vnh not in live


class TestBadPolicies:
    def test_policy_to_unknown_participant_rejected(self):
        sdx, a, *_ = figure1_controller()
        sdx.start()
        with pytest.raises(PolicyError):
            a.add_outbound(match(dstport=80) >> fwd("Nonexistent"))
        # The rejection left no partial state behind.
        assert len(a.participant.outbound_policies) == 1

    def test_inbound_policy_to_unknown_participant_rejected(self):
        sdx, *_ = figure1_controller()
        remote = sdx.add_participant("R", 65099, ports=0)
        with pytest.raises(PolicyError):
            remote.add_inbound(match(dstport=80) >> fwd("Nonexistent"))

    def test_policy_toward_peer_that_never_announces(self):
        """Forwarding to a silent participant is legal but matches no
        traffic: the eligibility guard is empty."""
        sdx, a, *_ = figure1_controller()
        silent = sdx.add_participant("Silent", 65050)
        sdx.start()
        a.add_outbound(match(dstport=8080) >> fwd("Silent"))
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=8080)) == "C"

    def test_failed_install_keeps_table_consistent(self):
        sdx, a, *_ = figure1_controller()
        sdx.start()
        rules_before = len(sdx.table)
        with pytest.raises(PolicyError):
            a.add_outbound(match(dstport=80))  # no fwd()
        assert len(sdx.table) == rules_before
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "B"


class TestTrafficDuringChurn:
    def test_forwarding_consistent_at_every_step_of_a_burst(self):
        """After every single update the data plane agrees with the
        control plane's current best routes — the paper's core
        correctness claim for the incremental path."""
        sdx, *_ = figure1_controller()
        sdx.start()
        moves = [
            ("withdraw", "C", P1),
            ("withdraw", "B", P3),
            ("announce", "C", P1),
            ("announce", "B", P3),
            ("withdraw", "C", P1),
        ]
        for action, who, prefix in moves:
            if action == "withdraw":
                sdx.withdraw_route(who, prefix)
            else:
                sdx.announce_route(who, prefix, AsPath([65000 + 2, 1, 100]))
            probe = packet(str(prefix.first_address + 1), dstport=22)
            expected = sdx.route_server.best_route_for("A", prefix)
            observed = sdx.egress_of("A", probe)
            if expected is None:
                assert observed is None
            else:
                assert observed == expected.learned_from
