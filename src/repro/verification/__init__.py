"""Differential fuzzing and invariant verification for the SDX pipeline.

The paper's correctness story rests on two claims that are easy to break
and hard to eyeball: the two-stage incremental compiler is *semantically
transparent* (Section 4.3 — "the fast path trades space, never
correctness"), and the southbound table swap is *consistency preserving*
(every packet follows the old or the new path at every intermediate
state). This package turns both claims into executable oracles:

- :mod:`repro.verification.scenario` — seeded, replayable scenarios:
  a small exchange, a policy mix, and a BGP update trace drawn from the
  same calibrated distributions as :mod:`repro.workloads.updates`;
- :mod:`repro.verification.corpus` — a deterministic packet corpus
  biased toward the scenario's policy match values and announced
  prefixes;
- :mod:`repro.verification.reference` — an independent packet-level
  interpreter built on the real :class:`~repro.dataplane.switch
  .SoftwareSwitch` / :class:`~repro.dataplane.flowtable.FlowTable`
  machinery but sharing no compiler code;
- :mod:`repro.verification.oracle` — three lockstep executions per trace
  (full recompilation, incremental engine, reference interpreter) diffed
  after every update, plus standing invariants;
- :mod:`repro.verification.invariants` — isolation, BGP consistency,
  default-route conformance via VNH/VMAC tags, and loss-free two-phase
  southbound swaps;
- :mod:`repro.verification.runtime` — runtime-vs-inline equivalence:
  canonical (VNH/VMAC-renaming-insensitive) state snapshots and the
  coalescing oracle behind ``python -m repro fuzz --runtime``;
- :mod:`repro.verification.statics` — cross-validation of the static
  policy verifier: dead-clause and route-less-forward verdicts checked
  packet-by-packet against the reference interpreter
  (``python -m repro fuzz --statics``);
- :mod:`repro.verification.dataplane` — cross-validation of the
  incremental dataplane verifier: byte-identity with a fresh
  whole-table analysis plus the SDX010-SDX012 witness contracts,
  checked against the real flow table on every trace step
  (``python -m repro fuzz --dataplane``);
- :mod:`repro.verification.federation` — cross-validation of the
  federation layer: SDX008/SDX009 witness contracts plus the
  real-vs-reference federated walk comparison
  (``python -m repro fuzz --federation``);
- :mod:`repro.verification.shrink` — trace minimisation to a minimal
  failing prefix (truncate, then greedy event removal);
- :mod:`repro.verification.artifact` — replayable JSON failure
  artifacts (seed + shrunk trace);
- :mod:`repro.verification.fuzz` — the budgeted fuzzing loop behind
  ``python -m repro fuzz`` and ``make fuzz``.
"""

from repro.verification.artifact import FailureArtifact, replay_artifact
from repro.verification.corpus import generate_corpus
from repro.verification.dataplane import dataplane_crosscheck
from repro.verification.federation import (
    FederationCrosscheckResult,
    federation_crosscheck,
)
from repro.verification.fuzz import FuzzConfig, FuzzReport, run_fuzz
from repro.verification.invariants import (
    SwapMonitor,
    Violation,
    check_all,
    check_bgp_consistency,
    check_default_conformance,
    check_single_delivery,
)
from repro.verification.oracle import (
    DifferentialOracle,
    OracleFailure,
    compare_controllers,
    forwarding_outcomes,
)
from repro.verification.reference import ReferenceInterpreter
from repro.verification.runtime import (
    CanonicalState,
    canonical_state,
    check_runtime_equivalence,
)
from repro.verification.scenario import (
    Scenario,
    ScenarioAnnouncement,
    ScenarioParticipant,
    ScenarioPolicy,
    TraceStep,
    generate_scenario,
)
from repro.verification.shrink import shrink_scenario
from repro.verification.statics import statics_crosscheck

__all__ = [
    "CanonicalState",
    "DifferentialOracle",
    "FailureArtifact",
    "FederationCrosscheckResult",
    "FuzzConfig",
    "FuzzReport",
    "OracleFailure",
    "ReferenceInterpreter",
    "Scenario",
    "ScenarioAnnouncement",
    "ScenarioParticipant",
    "ScenarioPolicy",
    "SwapMonitor",
    "TraceStep",
    "Violation",
    "canonical_state",
    "check_all",
    "check_bgp_consistency",
    "check_default_conformance",
    "check_runtime_equivalence",
    "check_single_delivery",
    "compare_controllers",
    "dataplane_crosscheck",
    "federation_crosscheck",
    "forwarding_outcomes",
    "generate_corpus",
    "generate_scenario",
    "replay_artifact",
    "run_fuzz",
    "shrink_scenario",
    "statics_crosscheck",
]
