"""The phase profiler: memory and CPU capture riding telemetry spans.

:class:`PhaseProfiler` attaches to a tracer as a span listener (see
:meth:`repro.telemetry.trace.Tracer.add_listener`) and, while attached:

- tags every finished span with its net allocation delta and its peak
  allocation high-water mark (``mem_net_bytes`` / ``mem_peak_bytes``),
  taken from :mod:`tracemalloc` snapshots at the span boundaries — the
  peak is tracked correctly across nesting by resetting the tracemalloc
  peak at every boundary and folding each child's observed peak back
  into its parent;
- optionally scopes a :mod:`cProfile` capture to the first occurrence
  of one named span (``cprofile_span="compile"``), so a single stage
  can be drilled into at function granularity without paying profiler
  overhead for the whole run;
- on :meth:`report`, folds the finished-span buffer through
  :func:`repro.profiling.phases.attribute_spans` and publishes the
  ``sdx_profile_*`` metric family into the telemetry registry.

The profiler is deterministic given a span buffer: attribution is a
pure function of the recorded spans, so two runs of the same seeded
workload produce the same phase structure (timings differ, shares
agree).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import threading
import tracemalloc
from typing import Dict, List, Optional

from repro.profiling.phases import PhaseReport, attribute_spans
from repro.telemetry import Telemetry
from repro.telemetry.trace import Span


class PhaseProfiler:
    """Profile pipeline phases over one :class:`~repro.telemetry.Telemetry`.

    Use as a context manager around the workload to profile::

        profiler = PhaseProfiler(controller.telemetry, memory=True)
        with profiler:
            controller.start()
            ...
        report = profiler.report()

    ``memory=True`` starts :mod:`tracemalloc` while attached (and stops
    it again on detach if this profiler started it). ``cprofile_span``
    names one span to capture under :mod:`cProfile`;
    :meth:`cprofile_stats` renders the result.
    """

    def __init__(self, telemetry: Telemetry, *, memory: bool = False,
                 cprofile_span: Optional[str] = None):
        self.telemetry = telemetry
        self.memory = memory
        self.cprofile_span = cprofile_span
        self._local = threading.local()
        self._attached = False
        self._started_tracemalloc = False
        self._cprofile: Optional[cProfile.Profile] = None
        self._cprofile_span_id: Optional[int] = None
        self._cprofile_done = False

    # ------------------------------------------------------------------
    # Attachment lifecycle
    # ------------------------------------------------------------------

    def attach(self) -> "PhaseProfiler":
        """Start listening (and tracing memory, when enabled)."""
        if self._attached:
            return self
        if self.memory and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self.telemetry.tracer.add_listener(self)
        self._attached = True
        return self

    def detach(self) -> None:
        """Stop listening; leaves the span buffer for :meth:`report`."""
        if not self._attached:
            return
        self.telemetry.tracer.remove_listener(self)
        if self._cprofile is not None and self._cprofile_span_id is not None:
            # A capture left open (span never closed) is abandoned.
            self._cprofile_span_id = None
        if self._started_tracemalloc:
            tracemalloc.stop()
            self._started_tracemalloc = False
        self._attached = False

    def __enter__(self) -> "PhaseProfiler":
        return self.attach()

    def __exit__(self, *exc_info) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # Tracer listener protocol
    # ------------------------------------------------------------------

    def _mem_stack(self) -> List[Dict[str, int]]:
        stack = getattr(self._local, "mem_stack", None)
        if stack is None:
            stack = []
            self._local.mem_stack = stack
        return stack

    def span_opened(self, span: Span) -> None:
        """Snapshot memory and maybe arm the scoped cProfile capture."""
        if self.memory and tracemalloc.is_tracing():
            current, peak = tracemalloc.get_traced_memory()
            stack = self._mem_stack()
            if stack:
                # Fold the interval since the parent's last boundary
                # into the parent before resetting the peak for the
                # child's exclusive window.
                stack[-1]["peak"] = max(stack[-1]["peak"], peak)
            stack.append({"open": current, "peak": current})
            tracemalloc.reset_peak()
        if (self.cprofile_span is not None and not self._cprofile_done
                and span.name == self.cprofile_span
                and self._cprofile_span_id is None):
            self._cprofile = cProfile.Profile()
            self._cprofile_span_id = span.span_id
            self._cprofile.enable()

    def span_closed(self, span: Span) -> None:
        """Tag the span with memory deltas; close the cProfile capture."""
        if (self._cprofile is not None
                and span.span_id == self._cprofile_span_id):
            self._cprofile.disable()
            self._cprofile_span_id = None
            self._cprofile_done = True
        if self.memory and tracemalloc.is_tracing():
            stack = self._mem_stack()
            if stack:
                entry = stack.pop()
                current, peak = tracemalloc.get_traced_memory()
                peak = max(entry["peak"], peak)
                span.tags["mem_net_bytes"] = current - entry["open"]
                span.tags["mem_peak_bytes"] = max(0, peak - entry["open"])
                if stack:
                    stack[-1]["peak"] = max(stack[-1]["peak"], peak)
                tracemalloc.reset_peak()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def report(self, total_seconds: Optional[float] = None) -> PhaseReport:
        """Attribute the tracer's finished spans into a phase report.

        Publishes the ``sdx_profile_*`` family into the registry:
        per-phase self-time totals and call counts, the attribution
        coverage, and the peak-memory high-water mark.
        """
        report = attribute_spans(
            self.telemetry.tracer.finished(), total_seconds)
        registry = self.telemetry.registry
        for stat in report.phases.values():
            registry.gauge(
                "sdx_profile_phase_seconds",
                "Self wall time attributed to a pipeline phase",
                phase=stat.name).set(stat.self_seconds)
            registry.gauge(
                "sdx_profile_phase_calls",
                "Spans attributed to a pipeline phase",
                phase=stat.name).set(stat.calls)
            if self.memory:
                registry.gauge(
                    "sdx_profile_phase_peak_bytes",
                    "Peak allocation high-water mark within the phase",
                    phase=stat.name).set(stat.peak_bytes)
        registry.gauge(
            "sdx_profile_coverage_ratio",
            "Fraction of profiled wall time attributed to named "
            "stages").set(report.coverage)
        registry.gauge(
            "sdx_profile_total_seconds",
            "Wall time of the profiled region").set(report.total_seconds)
        return report

    def cprofile_stats(self, limit: int = 25,
                       sort: str = "cumulative") -> str:
        """The scoped cProfile capture as a rendered stats table.

        Returns an explanatory placeholder when no capture ran (no
        ``cprofile_span`` configured, or the span never fired).
        """
        if self._cprofile is None or not self._cprofile_done:
            return (f"(no cProfile capture: span "
                    f"{self.cprofile_span!r} never completed)")
        buffer = io.StringIO()
        stats = pstats.Stats(self._cprofile, stream=buffer)
        stats.sort_stats(sort).print_stats(limit)
        return buffer.getvalue()

    def __repr__(self) -> str:
        state = "attached" if self._attached else "detached"
        return (f"PhaseProfiler({state}, memory={self.memory}, "
                f"cprofile_span={self.cprofile_span!r})")
