"""The fuzzing loop: reports, artifacts, telemetry, and determinism.

The small-budget cases run in tier-1; the longer soak is marked ``fuzz``
and runs in the dedicated CI job (``make fuzz`` / ``pytest -m fuzz``).
"""

import pytest

from repro.core.incremental import IncrementalEngine
from repro.telemetry import Telemetry
from repro.verification.fuzz import FuzzConfig, run_fuzz

QUICK = FuzzConfig(seed=0, scenarios=2, steps=6, corpus_size=6)


def counter_value(telemetry, name):
    return telemetry.registry.counter(name, "").value


class TestRunFuzz:
    def test_clean_session(self):
        telemetry = Telemetry()
        report = run_fuzz(QUICK, telemetry=telemetry)
        assert report.ok
        assert report.scenarios_run == 2
        assert report.steps_executed == 12
        assert "no divergence found" in report.summary()
        assert counter_value(telemetry, "sdx_fuzz_scenarios_total") == 2
        assert counter_value(telemetry, "sdx_fuzz_steps_total") == 12
        assert counter_value(telemetry, "sdx_fuzz_comparisons_total") > 0
        assert counter_value(telemetry, "sdx_fuzz_failures_total") == 0

    def test_summary_is_deterministic(self):
        assert (run_fuzz(QUICK, telemetry=Telemetry()).summary()
                == run_fuzz(QUICK, telemetry=Telemetry()).summary())

    def test_finding_shrunk_and_saved(self, tmp_path, monkeypatch):
        monkeypatch.setattr(IncrementalEngine, "_fast_path_for_prefix",
                            lambda self, prefix, views=None: 0)
        telemetry = Telemetry()
        config = FuzzConfig(seed=3, scenarios=1, steps=8, corpus_size=6,
                            recompile_every=100,
                            artifact_dir=str(tmp_path))
        report = run_fuzz(config, telemetry=telemetry)
        assert not report.ok
        finding = report.findings[0]
        assert finding.failure.kind == "incremental-vs-reference"
        assert finding.shrunk_trace_length <= finding.original_trace_length
        assert finding.artifact_path is not None
        assert (tmp_path / finding.artifact_path.split("/")[-1]).exists()
        assert "FAIL scenario#0" in report.summary()
        assert counter_value(telemetry, "sdx_fuzz_failures_total") == 1
        assert counter_value(telemetry, "sdx_fuzz_shrink_runs_total") > 0

    def test_time_budget_zero_runs_nothing(self):
        report = run_fuzz(
            FuzzConfig(seed=0, scenarios=5, time_budget_seconds=0.0),
            telemetry=Telemetry())
        assert report.budget_exhausted
        assert report.scenarios_run == 0
        assert "time budget exhausted" in report.summary()


@pytest.mark.fuzz
class TestFuzzSoak:
    def test_longer_session_is_clean(self):
        """The real fuzz entry point: more scenarios, longer traces,
        default corpus — any finding here is a genuine pipeline bug."""
        report = run_fuzz(
            FuzzConfig(seed=0, scenarios=8, steps=16, corpus_size=16),
            telemetry=Telemetry())
        assert report.ok, report.summary()
        assert report.scenarios_run == 8
