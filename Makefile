# Convenience targets for the SDX reproduction.

PYTHON ?= python

.PHONY: install test lint lint-policies-smoke dataplane-lint-smoke federation-smoke bench bench-results bench-compare perf-smoke examples docs telemetry-smoke fuzz soak-smoke chaos-smoke monitor-smoke clean

# Differential fuzzing session knobs (see docs/TESTING.md).
FUZZ_SEED ?= 0
FUZZ_BUDGET ?= 60
FUZZ_ARTIFACTS ?= artifacts/fuzz

# Chaos soak session knobs (see docs/TESTING.md).
CHAOS_SEED ?= 0
CHAOS_BUDGET ?= 60
CHAOS_ARTIFACTS ?= artifacts/chaos

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Runs ruff and mypy when available (config in pyproject.toml); falls
# back to a byte-compile pass so the target still catches syntax errors
# on machines without the linters.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src/ tests/ benchmarks/ tools/ examples/; \
	else \
		echo "ruff not installed; falling back to compileall"; \
		$(PYTHON) -m compileall -q src/ tests/ benchmarks/ tools/ examples/; \
	fi
	@if $(PYTHON) -m mypy --version >/dev/null 2>&1; then \
		$(PYTHON) -m mypy; \
	else \
		echo "mypy not installed; skipping type check"; \
	fi

# The static policy verifier over every linting surface: the example
# apps, a generated Section 6.1 workload, and a seeded defect-injection
# run that must detect all six defect classes. Drops a JSON artifact
# (CI uploads it) and exits non-zero on any error-severity diagnostic.
lint-policies-smoke:
	@mkdir -p artifacts
	PYTHONPATH=src $(PYTHON) -m repro lint-policies --examples \
		--output artifacts/lint-policies-examples.json
	PYTHONPATH=src $(PYTHON) -m repro lint-policies --workload \
		--participants 12 --prefixes 80
	PYTHONPATH=src $(PYTHON) -m repro lint-policies --defects \
		--participants 8 --prefixes 16 \
		--output artifacts/lint-policies-defects.json
	PYTHONPATH=src $(PYTHON) -m repro lint-policies --federation-defects \
		--output artifacts/lint-policies-federation-defects.json
	PYTHONPATH=src $(PYTHON) -m repro lint-dataplane --defects \
		--participants 8 --prefixes 16 \
		--output artifacts/lint-dataplane-defects.json

# The dataplane verifier over its linting surfaces: the flow rules a
# compiled Section 6.1 workload actually installs, plus a seeded
# dataplane defect-injection run (compiled blackhole + shadowed
# install) that must detect both defect classes. Drops JSON artifacts
# (CI uploads them) and exits non-zero on any error-severity
# diagnostic or a missed defect.
dataplane-lint-smoke:
	@mkdir -p artifacts
	PYTHONPATH=src $(PYTHON) -m repro lint-dataplane --workload \
		--participants 12 --prefixes 80 \
		--output artifacts/lint-dataplane-workload.json
	PYTHONPATH=src $(PYTHON) -m repro lint-dataplane --defects \
		--participants 8 --prefixes 16 \
		--output artifacts/lint-dataplane-defects.json
	PYTHONPATH=src $(PYTHON) -m repro fuzz --dataplane \
		--seed $(FUZZ_SEED) --scenarios 40 --participants 4 \
		--prefixes 4 --policies 4 --steps 8 --time-budget $(FUZZ_BUDGET) \
		--artifact-dir $(FUZZ_ARTIFACTS)

# Multi-SDX federation cross-validation: a time-boxed federated fuzz
# session (SDX008/SDX009 witness contracts + real-vs-reference walk
# differential at every churn step) over 2- and 3-exchange shapes, plus
# the federation defect-recall gate. Failure artifacts (raw federated
# scenario JSON) land under artifacts/federation for CI upload.
FEDERATION_SEED ?= 0
FEDERATION_BUDGET ?= 60
FEDERATION_ARTIFACTS ?= artifacts/federation

federation-smoke:
	@mkdir -p $(FEDERATION_ARTIFACTS)
	PYTHONPATH=src $(PYTHON) -m repro fuzz --federation \
		--seed $(FEDERATION_SEED) --scenarios 40 --steps 6 \
		--time-budget $(FEDERATION_BUDGET) \
		--artifact-dir $(FEDERATION_ARTIFACTS)
	PYTHONPATH=src $(PYTHON) -m repro fuzz --federation --exchanges 3 \
		--seed $(FEDERATION_SEED) --scenarios 10 --steps 4 \
		--time-budget $(FEDERATION_BUDGET) \
		--artifact-dir $(FEDERATION_ARTIFACTS)
	PYTHONPATH=src $(PYTHON) -m repro lint-policies --federation-defects \
		--output $(FEDERATION_ARTIFACTS)/defect-recall.json

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-results: bench
	@cat benchmarks/results/*.txt
	@PYTHONPATH=src $(PYTHON) -m repro bench results

# Re-measures the quick family subset and compares it against the
# committed baselines under benchmarks/baselines/; exits non-zero on a
# regression beyond the per-metric tolerance band (see
# docs/PERFORMANCE.md for the policy). Drops the comparison report under
# artifacts/ so CI can upload it.
bench-compare:
	@mkdir -p artifacts
	PYTHONPATH=src $(PYTHON) -m repro bench compare --quick \
		--output artifacts/bench-compare.json

# The CI perf gate: the quick benchmark families plus a profiler
# coverage check — `repro profile` must attribute >=90% of wall time to
# named pipeline phases on a small fig8-sized workload.
perf-smoke: bench-compare
	@mkdir -p artifacts
	PYTHONPATH=src $(PYTHON) -m repro profile --participants 40 \
		--prefixes 400 --updates 20 --min-coverage 0.9 --json \
		--output artifacts/profile-smoke.json

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script; \
		echo; \
	done

docs:
	$(PYTHON) tools/gen_api_docs.py

# Time-boxed differential fuzzing of the update pipeline: the marked
# soak tests, then a budgeted `repro fuzz` session that drops replayable
# artifacts under $(FUZZ_ARTIFACTS) on divergence.
fuzz:
	PYTHONPATH=src $(PYTHON) -m pytest -m fuzz
	PYTHONPATH=src $(PYTHON) -m repro fuzz --seed $(FUZZ_SEED) \
		--scenarios 1000 --time-budget $(FUZZ_BUDGET) \
		--artifact-dir $(FUZZ_ARTIFACTS)

# Short control-plane runtime soaks: every overload policy plus the
# threaded worker, small enough for CI, loud enough to catch a hang or
# an unconverged (degraded / fast-path-debt) final state.
soak-smoke:
	PYTHONPATH=src $(PYTHON) -m repro soak --participants 12 \
		--prefixes 100 --updates 400 --burst-size 100 --hot-prefixes 12
	PYTHONPATH=src $(PYTHON) -m repro soak --participants 12 \
		--prefixes 100 --updates 400 --burst-size 100 --hot-prefixes 12 \
		--queue-depth 64 --overload shed-oldest --no-coalesce
	PYTHONPATH=src $(PYTHON) -m repro soak --participants 12 \
		--prefixes 100 --updates 400 --burst-size 100 --hot-prefixes 12 \
		--queue-depth 64 --overload degrade --threaded

# Time-boxed BGP churn/failure chaos soak: the chaos test package (the
# golden replay among it), then a budgeted seeded `repro soak --chaos`
# session covering all six fault classes. A failed settle assertion
# shrinks to a minimal schedule and drops a replayable artifact under
# $(CHAOS_ARTIFACTS).
chaos-smoke:
	PYTHONPATH=src $(PYTHON) -m pytest tests/chaos -q
	PYTHONPATH=src $(PYTHON) -m repro soak --chaos --seed $(CHAOS_SEED) \
		--scenarios 1000 --time-budget $(CHAOS_BUDGET) \
		--artifact-dir $(CHAOS_ARTIFACTS)

# Closed-loop monitoring gate: both canned scenarios must converge —
# the balancer evens out the shifted load, the steering offloads the
# heavy hitter — within the reaction budget. Each run drops its JSON
# report under artifacts/ (CI uploads them) and exits non-zero on a
# miss.
monitor-smoke:
	@mkdir -p artifacts
	PYTHONPATH=src $(PYTHON) -m repro monitor --smoke \
		--output artifacts/monitor-shifting.json
	PYTHONPATH=src $(PYTHON) -m repro monitor --smoke --scenario skewed \
		--output artifacts/monitor-skewed.json

# Runs a small workload, dumps the Prometheus exposition, and checks
# that every core metric family reported activity.
telemetry-smoke:
	@PYTHONPATH=src $(PYTHON) -m repro stats --format prometheus \
		--participants 12 --prefixes 100 --updates 10 > /tmp/telemetry-smoke.prom
	@for family in sdx_bgp_updates_total sdx_compile_total \
		sdx_compile_stage_seconds sdx_fastpath_invocations_total \
		sdx_vnh_allocated_total sdx_southbound_flowmods_total \
		sdx_southbound_apply_seconds sdx_flowtable_rules \
		sdx_trace_spans_total; do \
		grep -q "^$$family" /tmp/telemetry-smoke.prom \
			|| { echo "missing metric family: $$family"; exit 1; }; \
	done
	@echo "telemetry smoke OK ($$(grep -c '^sdx_' /tmp/telemetry-smoke.prom) sample lines)"

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
