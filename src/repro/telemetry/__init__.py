"""End-to-end telemetry: metrics, tracing spans, exporters, logging.

The observability substrate every other layer records into:

- :mod:`repro.telemetry.registry` — counters, gauges, and streaming
  histograms in a :class:`MetricsRegistry`;
- :mod:`repro.telemetry.trace` — nested tracing spans with a bounded,
  loss-accounted buffer;
- :mod:`repro.telemetry.export` — JSON snapshot and Prometheus text
  exposition;
- :mod:`repro.telemetry.log` — structured ``key=value`` stdlib logging.

:class:`Telemetry` bundles one registry with one tracer; the controller
creates one per instance and threads it through the route server,
compiler, VNH allocator, incremental engine, southbound engine, flow
table, and ARP responder — so a single BGP update can be followed from
ingest to FlowMod apply in one connected span tree, and ``repro stats``
can report every stage from one place.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.trace import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "Tracer",
    "get_telemetry",
    "set_telemetry",
]


class Telemetry:
    """One metrics registry plus one tracer, wired together.

    The tracer records its span/drop counters into the same registry, so
    a single snapshot covers measurements *and* measurement losses.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 trace_capacity: int = 8192):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = (tracer if tracer is not None
                       else Tracer(capacity=trace_capacity,
                                   registry=self.registry))

    def span(self, name: str, **tags: object):
        """Open a tracing span (see :meth:`Tracer.span`)."""
        return self.tracer.span(name, **tags)

    def counter(self, name: str, description: str = "", **labels: str) -> Counter:
        """Get-or-create a counter (see :meth:`MetricsRegistry.counter`)."""
        return self.registry.counter(name, description, **labels)

    def gauge(self, name: str, description: str = "", **labels: str) -> Gauge:
        """Get-or-create a gauge (see :meth:`MetricsRegistry.gauge`)."""
        return self.registry.gauge(name, description, **labels)

    def histogram(self, name: str, description: str = "",
                  **labels: str) -> Histogram:
        """Get-or-create a histogram (see
        :meth:`MetricsRegistry.histogram`)."""
        return self.registry.histogram(name, description, **labels)

    def snapshot(self) -> Dict[str, object]:
        """The JSON snapshot (metrics, losses, spans); see
        :func:`repro.telemetry.export.json_snapshot`."""
        from repro.telemetry.export import json_snapshot
        return json_snapshot(self)

    def __repr__(self) -> str:
        return (f"Telemetry({len(self.registry)} metrics, "
                f"{len(self.tracer.finished())} spans)")


_default: Optional[Telemetry] = None


def get_telemetry() -> Telemetry:
    """The process-default :class:`Telemetry`, created on first use.

    Components built outside a controller fall back to this, so their
    measurements are never silently discarded.
    """
    global _default
    if _default is None:
        _default = Telemetry()
    return _default


def set_telemetry(telemetry: Optional[Telemetry]) -> None:
    """Replace the process default (``None`` resets to a fresh one)."""
    global _default
    _default = telemetry
