"""BGP peering sessions between participant routers and the route server.

A deliberately small finite-state machine: the evaluation (Table 1) needs
session *resets* — RIPE collector traces are cleaned of reset-induced
churn, and our synthetic trace generator injects and then discards resets
the same way — but not keepalive timers or TCP emulation. States follow
RFC 4271 naming with the connect-phase states collapsed.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional

from repro.bgp.messages import Update
from repro.exceptions import SessionStateError


class SessionState(enum.Enum):
    """Collapsed RFC 4271 session states."""

    IDLE = "idle"
    OPEN_SENT = "open_sent"
    ESTABLISHED = "established"


class BgpSession:
    """One peering session, counting traffic and enforcing state rules.

    ``on_update`` is invoked for every update received while ESTABLISHED —
    the route server wires this to its RIB processing.
    """

    def __init__(self, peer: str, asn: int,
                 on_update: Optional[Callable[[Update], None]] = None):
        self.peer = peer
        self.asn = asn
        self.state = SessionState.IDLE
        self.updates_received = 0
        self.updates_sent = 0
        self.resets = 0
        self._on_update = on_update
        self._sent_log: List[Update] = []

    def open(self) -> None:
        """Begin session establishment (IDLE -> OPEN_SENT)."""
        if self.state is not SessionState.IDLE:
            raise SessionStateError(f"cannot open session to {self.peer} in {self.state}")
        self.state = SessionState.OPEN_SENT

    def establish(self) -> None:
        """Complete establishment (OPEN_SENT -> ESTABLISHED)."""
        if self.state is not SessionState.OPEN_SENT:
            raise SessionStateError(
                f"cannot establish session to {self.peer} in {self.state}")
        self.state = SessionState.ESTABLISHED

    def connect(self) -> None:
        """Convenience: open and establish in one call."""
        self.open()
        self.establish()

    @property
    def is_established(self) -> bool:
        """True when updates may flow."""
        return self.state is SessionState.ESTABLISHED

    def receive(self, update: Update) -> None:
        """Process an update arriving from the peer."""
        if not self.is_established:
            raise SessionStateError(
                f"update from {self.peer} while session {self.state.value}")
        if update.sender != self.peer:
            raise SessionStateError(
                f"session with {self.peer} received update from {update.sender}")
        self.updates_received += 1
        if self._on_update is not None:
            self._on_update(update)

    def send(self, update: Update) -> None:
        """Record an update sent to the peer (kept for inspection)."""
        if not self.is_established:
            raise SessionStateError(
                f"cannot send to {self.peer} while session {self.state.value}")
        self.updates_sent += 1
        self._sent_log.append(update)

    @property
    def sent_log(self) -> List[Update]:
        """Updates sent on this session, oldest first."""
        return list(self._sent_log)

    def reset(self) -> None:
        """Tear the session down (any state -> IDLE), counting the reset."""
        self.state = SessionState.IDLE
        self.resets += 1

    def __repr__(self) -> str:
        return (f"BgpSession(peer={self.peer!r}, asn={self.asn}, "
                f"state={self.state.value})")
