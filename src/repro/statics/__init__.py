"""Static policy verification: pre-compilation lint for the SDX.

``repro.statics`` analyses (participant policies x route-server RIB
state x fabric topology) *before* compilation and reports
misconfigurations the composition pipeline would otherwise resolve
silently — dead clauses, forwards the BGP join erases, isolation
violations, inter-participant blackholes, unreachable defaults, and
malformed raw policy documents.

Entry points:

* :func:`analyze_controller` — lint everything installed in a live (or
  not-yet-started) :class:`~repro.core.controller.SdxController`;
* :func:`lint_config` — lint a JSON configuration document, including
  raw-document checks that run before any policy is installed;
* ``repro lint-policies`` — the CLI frontend (text + JSON output,
  non-zero exit on error-severity diagnostics).

The *dataplane* layer (:mod:`repro.statics.dataplane`, checks
``SDX010``..``SDX014``) verifies the other end of the pipeline — the
compiled flow rules actually installed in the table — incrementally on
every southbound FlowMod window, with :func:`analyze_flowtable` /
``repro lint-dataplane`` as the one-shot frontends.

Every diagnostic carries a stable check ID (``SDX001``..), a severity,
and a source clause location; the check catalogue lives in
``docs/ANALYSIS.md``. Dead-clause and route-less-forward verdicts are
cross-validated against the reference interpreter by the fuzz harness
(:mod:`repro.verification.statics`), so the analyzer itself is a
fuzz-tested artifact.
"""

from repro.statics.analyzer import (
    DEFAULT_CHECKS,
    StaticsContext,
    analyze_context,
    analyze_controller,
    lint_config,
)
from repro.statics.checks import (
    BlackholeCheck,
    DeadClauseCheck,
    FieldSanityCheck,
    IsolationCheck,
    RoutelessForwardCheck,
    ShadowOverlapCheck,
    UnreachableDefaultCheck,
)
from repro.statics.dataplane import (
    DATAPLANE_CHECK_IDS,
    CommittedSpace,
    DataplaneVerifier,
    HeaderClass,
    Subpartition,
    analyze_controller_dataplane,
    analyze_flowtable,
    committed_spaces_from_controller,
)
from repro.statics.diagnostics import (
    Diagnostic,
    RawPolicyDocument,
    Severity,
    SourceLocation,
    StaticsReport,
)
from repro.statics.regions import ClauseRegions, clause_regions, effective_regions

__all__ = [
    "DATAPLANE_CHECK_IDS",
    "CommittedSpace",
    "DataplaneVerifier",
    "HeaderClass",
    "Subpartition",
    "analyze_controller_dataplane",
    "analyze_flowtable",
    "committed_spaces_from_controller",
    "DEFAULT_CHECKS",
    "StaticsContext",
    "analyze_context",
    "analyze_controller",
    "lint_config",
    "BlackholeCheck",
    "DeadClauseCheck",
    "FieldSanityCheck",
    "IsolationCheck",
    "RoutelessForwardCheck",
    "ShadowOverlapCheck",
    "UnreachableDefaultCheck",
    "Diagnostic",
    "RawPolicyDocument",
    "Severity",
    "SourceLocation",
    "StaticsReport",
    "ClauseRegions",
    "clause_regions",
    "effective_regions",
]
