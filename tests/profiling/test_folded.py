"""Tests for the folded-stack (flamegraph input) exporter."""

from repro.profiling import folded_stacks
from repro.telemetry.trace import Span, Tracer


def make_span(name, span_id, parent_id, start, end, trace_id=1):
    """A finished span literal for exporter tests."""
    return Span(name=name, span_id=span_id, parent_id=parent_id,
                trace_id=trace_id, start=start, end=end)


class TestFoldedStacks:
    def test_paths_are_semicolon_joined_root_to_leaf(self):
        spans = [
            make_span("root", 1, None, 0.0, 1.0),
            make_span("mid", 2, 1, 0.0, 0.6),
            make_span("leaf", 3, 2, 0.0, 0.2),
        ]
        lines = folded_stacks(spans).splitlines()
        assert "root;mid;leaf 200000" in lines
        assert "root;mid 400000" in lines  # 0.6 - 0.2 self time
        assert "root 400000" in lines      # 1.0 - 0.6 self time

    def test_identical_paths_aggregate(self):
        spans = [
            make_span("root", 1, None, 0.0, 1.0),
            make_span("step", 2, 1, 0.0, 0.2),
            make_span("step", 3, 1, 0.3, 0.6),
        ]
        lines = folded_stacks(spans).splitlines()
        assert "root;step 500000" in lines

    def test_minimum_filter_drops_trivial_paths(self):
        spans = [
            make_span("root", 1, None, 0.0, 1.0),
            make_span("blip", 2, 1, 0.0, 0.0000001),
        ]
        text = folded_stacks(spans, minimum_microseconds=10)
        assert "blip" not in text
        assert "root" in text

    def test_evicted_parent_roots_its_own_stack(self):
        spans = [make_span("orphan", 7, 999, 0.0, 0.5)]
        assert folded_stacks(spans) == "orphan 500000"

    def test_accepts_a_live_tracer(self):
        tracer = Tracer()
        with tracer.span("outer"), tracer.span("inner"):
            pass
        text = folded_stacks(tracer, minimum_microseconds=0)
        assert any(line.startswith("outer;inner ")
                   for line in text.splitlines())

    def test_every_line_parses_as_flamegraph_input(self):
        spans = [
            make_span("a", 1, None, 0.0, 0.5),
            make_span("b", 2, 1, 0.0, 0.25),
        ]
        for line in folded_stacks(spans).splitlines():
            path, _, count = line.rpartition(" ")
            assert path and int(count) >= 0
