"""Tests for the policy what-if preview."""

import pytest

from repro.exceptions import ParticipantError, PolicyError
from repro.policy.policies import drop, fwd, match, modify

from tests.core.scenarios import figure1_controller, packet


class TestPreviewPolicy:
    def test_preview_reports_eligibility(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        preview = sdx.preview_policy("A", match(dstport=8080) >> fwd("B"))
        assert preview.participant == "A"
        assert len(preview.clauses) == 1
        clause = preview.clauses[0]
        assert clause.eligible_prefixes == 3       # p1..p3 via B
        assert clause.eligible_groups is not None
        assert preview.estimated_rules == clause.eligible_groups
        assert "fwd('B')" in preview.render()

    def test_preview_does_not_install(self):
        sdx, a, *_ = figure1_controller(with_policies=False)
        sdx.start()
        rules_before = len(sdx.table)
        sdx.preview_policy("A", match(dstport=8080) >> fwd("B"))
        assert len(sdx.table) == rules_before
        assert not a.participant.has_policies
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=8080)) == "C"

    def test_preview_before_start_uses_prefix_counts(self):
        sdx, *_ = figure1_controller()
        preview = sdx.preview_policy("A", match(dstport=80) >> fwd("C"))
        assert preview.clauses[0].eligible_prefixes == 4
        assert preview.clauses[0].eligible_groups == 0  # nothing compiled

    def test_preview_drop_clause(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        preview = sdx.preview_policy("A", match(srcip="6.0.0.0/8") >> drop)
        assert preview.clauses[0].eligible_prefixes is None
        assert preview.estimated_rules == 1

    def test_preview_inbound(self):
        sdx, a, b, *_ = figure1_controller()
        sdx.start()
        preview = sdx.preview_policy(
            "B", match(srcport=53) >> fwd(b.port(1)), direction="in")
        assert preview.direction == "in"
        assert preview.estimated_rules == 1

    def test_preview_validates_like_install(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        with pytest.raises(PolicyError):
            sdx.preview_policy("A", match(dstport=80))        # no fwd
        with pytest.raises(PolicyError):
            sdx.preview_policy("A", match(dstport=80) >> fwd("A"))
        with pytest.raises(ParticipantError):
            sdx.preview_policy("A", match(dstport=80) >> fwd("Ghost"))

    def test_preview_multi_clause_policy(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        preview = sdx.preview_policy(
            "A", (match(dstport=80) >> fwd("B"))
            + (match(dstport=443) >> modify(dstport=8443) >> fwd("C")))
        assert len(preview.clauses) == 2
        rendered = preview.render()
        assert "#0" in rendered and "#1" in rendered


class TestCheckCommand:
    def test_check_cli(self, tmp_path, capsys):
        from repro.__main__ import main
        from repro.config import save_config
        sdx, *_ = figure1_controller()
        sdx.start()
        path = tmp_path / "exchange.json"
        save_config(sdx, path)
        assert main(["check", str(path)]) == 0
        out = capsys.readouterr().out
        assert "compiled:" in out
        assert "statics:" in out
        assert "0 error(s)" in out
