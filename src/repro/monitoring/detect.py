"""Detectors over monitor samples: heavy hitters, watermarks, imbalance.

Each detector consumes a :class:`~repro.monitoring.stats.MonitorSample`
and returns zero or more edge-triggered
:class:`~repro.monitoring.events.MonitoringEvent`\\ s. All three apply
hysteresis — a condition raises at one threshold and clears at a lower
one — so a rate hovering at the bar cannot flap the control plane with
alternating raise/clear edges (the same discipline the runtime's degrade
mode uses on queue depth).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.monitoring.events import (
    EgressImbalance,
    HeavyHitter,
    MonitoringEvent,
    UtilizationAlarm,
)
from repro.monitoring.stats import UNATTRIBUTED, MonitorSample


class SpaceSavingSketch:
    """Metwally et al.'s space-saving top-k over a weighted stream.

    Tracks at most ``capacity`` keys. A new key past capacity evicts the
    current minimum and inherits its count as overestimation error, so
    every tracked count is an upper bound and any key with true weight
    above ``total / capacity`` is guaranteed to be tracked — the
    property that makes the sketch safe for heavy-hitter detection at
    O(capacity) memory however many FECs exist.
    """

    def __init__(self, capacity: int = 32):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._counts: Dict[str, float] = {}
        self._errors: Dict[str, float] = {}
        self.total = 0.0

    def offer(self, key: str, weight: float) -> None:
        """Add ``weight`` observed for ``key``."""
        if weight <= 0:
            return
        self.total += weight
        if key in self._counts:
            self._counts[key] += weight
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = weight
            self._errors[key] = 0.0
            return
        victim = min(self._counts, key=lambda k: self._counts[k])
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + weight
        self._errors[key] = floor

    def top(self, k: Optional[int] = None) -> List[Tuple[str, float, float]]:
        """The ``k`` heaviest tracked keys as (key, count, error)."""
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        if k is not None:
            ranked = ranked[:k]
        return [(key, count, self._errors[key]) for key, count in ranked]

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def __len__(self) -> int:
        return len(self._counts)


class HeavyHitterDetector:
    """Flags FECs whose smoothed rate crosses the heavy-hitter bar.

    A space-saving sketch over per-sample byte deltas keeps candidate
    selection O(capacity); the actual raise/clear decision uses the
    collector's EWMA rate (the sketch alone cannot express "no longer
    heavy" — its counts are cumulative). A FEC raises when its EWMA rate
    is at least ``threshold_mbps`` *and* at least ``min_share`` of the
    total, and clears below ``clear_fraction`` of the threshold.
    """

    def __init__(self, *, threshold_mbps: float = 100.0,
                 min_share: float = 0.0, clear_fraction: float = 0.6,
                 capacity: int = 32):
        if not 0.0 < clear_fraction < 1.0:
            raise ValueError("clear_fraction must be in (0, 1)")
        self.threshold_mbps = threshold_mbps
        self.min_share = min_share
        self.clear_fraction = clear_fraction
        self.sketch = SpaceSavingSketch(capacity)
        self._active: Dict[str, bool] = {}

    def observe(self, sample: MonitorSample) -> List[MonitoringEvent]:
        """Feed one sample; returns raise/clear edges."""
        events: List[MonitoringEvent] = []
        total = sum(view.ewma_mbps for view in sample.fecs) or 1.0
        rates: Dict[str, float] = {}
        for view in sample.fecs:
            if view.key == UNATTRIBUTED:
                continue
            self.sketch.offer(view.key, float(view.delta_bytes))
            rates[view.key] = view.ewma_mbps
        for key, _count, _error in self.sketch.top():
            rate = rates.get(key, 0.0)
            share = rate / total
            active = self._active.get(key, False)
            if (not active and rate >= self.threshold_mbps
                    and share >= self.min_share):
                self._active[key] = True
                events.append(HeavyHitter(
                    sampled_at=sample.sampled_at, fec=key,
                    rate_mbps=rate, share=share, raised=True))
            elif active and rate < self.threshold_mbps * self.clear_fraction:
                self._active[key] = False
                events.append(HeavyHitter(
                    sampled_at=sample.sampled_at, fec=key,
                    rate_mbps=rate, share=share, raised=False))
        return events

    def active(self) -> Tuple[str, ...]:
        """FECs currently flagged, sorted."""
        return tuple(sorted(k for k, on in self._active.items() if on))


class UtilizationWatch:
    """Watermark alarms on per-egress-port utilization.

    ``capacities`` maps switch ports to their capacity in Mbps; ports
    not named use ``default_capacity_mbps``. A port raises when its
    EWMA rate exceeds ``high`` of capacity and clears below ``low``.
    """

    def __init__(self, capacities: Optional[Dict[int, float]] = None, *,
                 default_capacity_mbps: float = 10_000.0,
                 high: float = 0.8, low: float = 0.5):
        if not 0.0 < low < high <= 1.0:
            raise ValueError(f"need 0 < low < high <= 1, got {low}/{high}")
        self.capacities = dict(capacities or {})
        self.default_capacity_mbps = default_capacity_mbps
        self.high = high
        self.low = low
        self._active: Dict[int, bool] = {}

    def observe(self, sample: MonitorSample) -> List[MonitoringEvent]:
        """Feed one sample; returns raise/clear edges."""
        events: List[MonitoringEvent] = []
        participant_of: Dict[int, str] = {}
        for view in sample.rules:
            for port, participant in view.egress:
                participant_of.setdefault(port, participant)
        for view in sample.ports:
            port = int(view.key)
            capacity = self.capacities.get(port, self.default_capacity_mbps)
            utilization = view.ewma_mbps / capacity if capacity > 0 else 0.0
            active = self._active.get(port, False)
            edge: Optional[bool] = None
            if not active and utilization >= self.high:
                edge = True
            elif active and utilization <= self.low:
                edge = False
            if edge is None:
                continue
            self._active[port] = edge
            events.append(UtilizationAlarm(
                sampled_at=sample.sampled_at, port=port,
                participant=participant_of.get(port, "?"),
                rate_mbps=view.ewma_mbps, capacity_mbps=capacity,
                utilization=utilization, raised=edge))
        return events


class EgressImbalanceWatch:
    """Detects unequal load across one participant's egress ports.

    Watches the EWMA rates of ``ports`` (typically every physical port
    of one participant) and compares the maximum to the mean. The
    imbalance raises past ``high_ratio`` and clears below ``low_ratio``
    — the hysteresis band the reactive inbound balancer keys off.
    ``min_total_mbps`` suppresses edges while aggregate traffic is too
    small to be worth rebalancing (ratios are noisy near zero).
    """

    def __init__(self, participant: str, ports: Sequence[int], *,
                 high_ratio: float = 1.5, low_ratio: float = 1.15,
                 min_total_mbps: float = 1.0):
        if len(ports) < 2:
            raise ValueError("imbalance needs at least two ports to compare")
        if not 1.0 <= low_ratio < high_ratio:
            raise ValueError(
                f"need 1 <= low_ratio < high_ratio, got {low_ratio}/{high_ratio}")
        self.participant = participant
        self.ports = tuple(ports)
        self.high_ratio = high_ratio
        self.low_ratio = low_ratio
        self.min_total_mbps = min_total_mbps
        self._active = False

    def observe(self, sample: MonitorSample) -> List[MonitoringEvent]:
        """Feed one sample; returns raise/clear edges."""
        rates = tuple(
            (port, sample.port_rate(port, smoothed=True)) for port in self.ports)
        total = sum(rate for _port, rate in rates)
        if total < self.min_total_mbps:
            return []
        mean = total / len(rates)
        imbalance = max(rate for _port, rate in rates) / mean if mean else 1.0
        edge: Optional[bool] = None
        if not self._active and imbalance >= self.high_ratio:
            edge = True
        elif self._active and imbalance <= self.low_ratio:
            edge = False
        if edge is None:
            return []
        self._active = edge
        return [EgressImbalance(
            sampled_at=sample.sampled_at, participant=self.participant,
            port_rates=rates, imbalance=imbalance, raised=edge)]
