"""One runner per table/figure of the paper's evaluation (Section 5-6).

Each ``run_*`` function regenerates the corresponding result at a
configurable scale and returns plain data (rows, series, or CDFs) that
the benchmark files print next to the paper's reported values. Scales
default to laptop-friendly sizes; pass larger parameters to approach the
paper's.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.core.fec import minimum_disjoint_subsets
from repro.experiments.metrics import Cdf, Series
from repro.experiments.traffic import FlowSpec, TimedAction, TrafficSimulation
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.policies import fwd, match, modify
from repro.workloads.datasets import ALL_PROFILES, IxpProfile
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import SyntheticIxp, generate_ixp
from repro.workloads.updates import generate_trace, trace_stats


# ----------------------------------------------------------------------
# Table 1 — dataset statistics
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Table1Row:
    """One IXP column of Table 1: paper numbers beside regenerated ones."""

    profile: IxpProfile
    measured_updates: int
    measured_prefixes: int
    measured_fraction_updated: float
    measured_fraction_small_bursts: float
    measured_fraction_gaps_over_10s: float


def run_table1(scale: float = 0.002, seed: int = 0,
               profiles: Sequence[IxpProfile] = ALL_PROFILES) -> List[Table1Row]:
    """Regenerate Table 1 from synthetic traces at ``scale``."""
    rows: List[Table1Row] = []
    for profile in profiles:
        scaled = profile.scaled(scale)
        ixp = generate_ixp(scaled.collector_peers, scaled.prefixes, seed=seed)
        events = generate_trace(
            ixp,
            duration_seconds=float(profile.duration_days * 86_400),
            seed=seed,
            fraction_prefixes_updated=profile.fraction_prefixes_updated,
            max_updates=scaled.bgp_updates)
        stats = trace_stats(events, total_prefixes=len(ixp.all_prefixes()))
        rows.append(Table1Row(
            profile=profile,
            measured_updates=stats.updates,
            measured_prefixes=stats.total_prefixes,
            measured_fraction_updated=stats.fraction_prefixes_updated,
            measured_fraction_small_bursts=stats.fraction_small_bursts,
            measured_fraction_gaps_over_10s=stats.fraction_gaps_over_10s))
    return rows


# ----------------------------------------------------------------------
# Figure 6 — prefix groups vs prefixes
# ----------------------------------------------------------------------

def run_fig6(participant_counts: Sequence[int] = (100, 200, 300),
             prefix_counts: Sequence[int] = (5_000, 10_000, 15_000, 20_000, 25_000),
             total_prefixes: int = 25_000,
             seed: int = 0) -> List[Series]:
    """Prefix groups as a function of policy-covered prefixes.

    Mirrors Section 6.2: take the top-N ASes by prefix count, sample x
    prefixes to carry SDX policies, intersect with each AS's announced
    set, and run Minimum Disjoint Subsets.
    """
    ixp = generate_ixp(max(participant_counts), total_prefixes, seed=seed)
    rng = random.Random(seed + 1)
    universe = ixp.all_prefixes()
    announced_sets: Dict[str, set] = {spec.name: set() for spec in ixp.participants}
    for name, prefix, _path in ixp.announcements:
        announced_sets[name].add(prefix)
    announced = {name: frozenset(prefixes)
                 for name, prefixes in announced_sets.items()}
    ranked = sorted(announced, key=lambda name: -len(announced[name]))
    series_list: List[Series] = []
    for count in participant_counts:
        members = ranked[:count]
        series = Series(label=f"{count} participants")
        for x in prefix_counts:
            sample = frozenset(rng.sample(universe, k=min(x, len(universe))))
            collection = [announced[name] & sample for name in members]
            groups = minimum_disjoint_subsets(
                [subset for subset in collection if subset])
            series.add(x, len(groups))
        series_list.append(series)
    return series_list


# ----------------------------------------------------------------------
# Figures 7 & 8 — flow rules and compilation time vs prefix groups
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class CompilationPoint:
    """One full compilation of a generated IXP."""

    participants: int
    prefixes: int
    prefix_groups: int
    flow_rules: int
    seconds: float


def run_compilation_sweep(
        participant_counts: Sequence[int] = (100, 200, 300),
        prefix_counts: Sequence[int] = (2_000, 5_000, 10_000, 15_000),
        seed: int = 0, *, use_vnh: bool = True,
        optimized: bool = True) -> List[CompilationPoint]:
    """Compile generated IXPs across a (participants × prefixes) grid."""
    points: List[CompilationPoint] = []
    for count in participant_counts:
        for prefixes in prefix_counts:
            ixp = generate_ixp(count, prefixes, seed=seed)
            # reduce_table=False: the post-compilation shadow-elimination
            # pass is this library's own addition; Figures 7/8 measure
            # the paper's pipeline.
            controller = ixp.build_controller(
                use_vnh=use_vnh, optimized=optimized, reduce_table=False)
            assignments = generate_policies(ixp, seed=seed + 1)
            install_assignments(controller, assignments)
            controller.start()
            # Compilation at the small end takes tens of milliseconds,
            # where GC pauses dominate single measurements. Time three
            # cold compilations and keep the minimum — the standard
            # noise-robust timing estimator (and still a full pipeline
            # run each time; the cache is invalidated between runs).
            best_seconds = None
            result = None
            for _attempt in range(3):
                controller.compiler.invalidate_inbound_cache()
                result = controller.compiler.compile()
                if best_seconds is None or result.total_seconds < best_seconds:
                    best_seconds = result.total_seconds
            points.append(CompilationPoint(
                participants=count,
                prefixes=prefixes,
                prefix_groups=result.prefix_group_count,
                flow_rules=result.flow_rule_count,
                seconds=best_seconds))
    return points


def run_fig7(**kwargs) -> List[Series]:
    """Flow rules vs prefix groups, one series per participant count."""
    points = run_compilation_sweep(**kwargs)
    return _sweep_series(points, lambda p: p.flow_rules)


def run_fig8(**kwargs) -> List[Series]:
    """Compilation time vs prefix groups, one series per participant count."""
    points = run_compilation_sweep(**kwargs)
    return _sweep_series(points, lambda p: p.seconds)


def _sweep_series(points: Sequence[CompilationPoint], value) -> List[Series]:
    by_count: Dict[int, Series] = {}
    for point in sorted(points, key=lambda p: (p.participants, p.prefix_groups)):
        series = by_count.setdefault(
            point.participants, Series(label=f"{point.participants} participants"))
        series.add(point.prefix_groups, value(point))
    return [by_count[count] for count in sorted(by_count)]


# ----------------------------------------------------------------------
# Figures 9 & 10 — incremental update behaviour
# ----------------------------------------------------------------------

def _loaded_controller(participants: int, prefixes: int,
                       seed: int) -> Tuple[SdxController, SyntheticIxp]:
    ixp = generate_ixp(participants, prefixes, seed=seed)
    controller = ixp.build_controller()
    install_assignments(controller, generate_policies(ixp, seed=seed + 1))
    controller.start()
    return controller, ixp


def run_fig9(burst_sizes: Sequence[int] = (1, 5, 10, 20, 40, 60, 80, 100),
             participant_counts: Sequence[int] = (100, 200, 300),
             prefixes: int = 2_000, seed: int = 0) -> List[Series]:
    """Additional (fast-path) rules as a function of burst size.

    Worst case, as in the paper: every update in the burst changes the
    best path of a distinct prefix.
    """
    series_list: List[Series] = []
    for count in participant_counts:
        controller, ixp = _loaded_controller(count, prefixes, seed)
        rng = random.Random(seed + 2)
        series = Series(label=f"{count} participants")
        universe = ixp.all_prefixes()
        for burst in burst_sizes:
            controller.engine.dirty = True
            controller.run_background_recompilation()
            touched = rng.sample(universe, k=min(burst, len(universe)))
            for prefix in touched:
                _perturb_prefix(controller, ixp, prefix, rng)
            series.add(burst, controller.engine.fast_path_rules_live)
        series_list.append(series)
    return series_list


def _perturb_prefix(controller: SdxController, ixp: SyntheticIxp,
                    prefix: IPv4Prefix, rng: random.Random) -> None:
    """Re-announce ``prefix`` with a fresh path so its best route moves."""
    announcers = [name for name, p, _path in ixp.announcements if p == prefix]
    name = rng.choice(announcers)
    asn = ixp.by_name(name).asn
    path = AsPath([asn, rng.randrange(64512, 65000), rng.randrange(1000, 60000)])
    controller.announce_route(name, prefix, path)


@dataclass(frozen=True)
class DeltaSwapPoint:
    """One background table swap driven through the southbound engine."""

    burst: int
    table_rules: int
    flowmods_sent: int
    full_reinstall_cost: int
    rules_unchanged: int

    @property
    def savings(self) -> float:
        """Fraction of the naive full-reinstall FlowMods avoided."""
        if self.full_reinstall_cost == 0:
            return 0.0
        return 1.0 - self.flowmods_sent / self.full_reinstall_cost


def run_fig9_delta(burst_sizes: Sequence[int] = (1, 5, 10, 20, 40, 60, 80, 100),
                   participants: int = 100, prefixes: int = 2_000,
                   seed: int = 0) -> List[DeltaSwapPoint]:
    """FlowMods per background swap on the Figure 9 burst workload.

    After each worst-case burst (every update moves a distinct prefix's
    best path), runs the background re-optimisation and counts the
    FlowMods the southbound delta engine actually sent, against the
    table size and the naive delete-everything-reinstall-everything
    cost. The delta must touch strictly fewer rules than the table holds
    — the swap never degenerates into a full reinstall.
    """
    controller, ixp = _loaded_controller(participants, prefixes, seed)
    rng = random.Random(seed + 2)
    universe = ixp.all_prefixes()
    stats = controller.southbound.stats
    points: List[DeltaSwapPoint] = []
    for burst in burst_sizes:
        touched = rng.sample(universe, k=min(burst, len(universe)))
        for prefix in touched:
            _perturb_prefix(controller, ixp, prefix, rng)
        table_rules = len(controller.table)
        sent_before = stats.mods_sent
        controller.run_background_recompilation()
        delta = controller.engine.last_delta
        points.append(DeltaSwapPoint(
            burst=burst,
            table_rules=table_rules,
            flowmods_sent=stats.mods_sent - sent_before,
            full_reinstall_cost=delta.full_reinstall_cost,
            rules_unchanged=delta.unchanged))
    return points


def run_fig10_delta(updates: int = 200, participants: int = 100,
                    prefixes: int = 2_000, seed: int = 0,
                    recompile_every: int = 50) -> Dict[str, Cdf]:
    """Southbound cost distributions under the Figure 10 update stream.

    Replays ``updates`` single-prefix perturbations (with a background
    re-optimisation every ``recompile_every`` updates, as between
    bursts) and returns CDFs of the FlowMods each update pushed, the
    batch sizes the engine applied, and per-batch apply latency.
    """
    controller, ixp = _loaded_controller(participants, prefixes, seed)
    rng = random.Random(seed + 3)
    universe = ixp.all_prefixes()
    stats = controller.southbound.stats
    mods_per_update: List[float] = []
    for index in range(updates):
        prefix = rng.choice(universe)
        sent_before = stats.mods_sent
        _perturb_prefix(controller, ixp, prefix, rng)
        mods_per_update.append(float(stats.mods_sent - sent_before))
        if (index + 1) % recompile_every == 0:
            controller.run_background_recompilation()
    return {
        "mods_per_update": Cdf(mods_per_update),
        "batch_sizes": stats.batch_size_cdf(),
        "apply_seconds": stats.apply_time_cdf(),
    }


def run_fig10(updates: int = 200,
              participant_counts: Sequence[int] = (100, 200, 300),
              prefixes: int = 2_000, seed: int = 0) -> Dict[int, Cdf]:
    """Per-update processing time CDF (fast path, end to end)."""
    cdfs: Dict[int, Cdf] = {}
    for count in participant_counts:
        controller, ixp = _loaded_controller(count, prefixes, seed)
        rng = random.Random(seed + 3)
        universe = ixp.all_prefixes()
        samples: List[float] = []
        for _ in range(updates):
            prefix = rng.choice(universe)
            started = time.perf_counter()
            _perturb_prefix(controller, ixp, prefix, rng)
            samples.append(time.perf_counter() - started)
        cdfs[count] = Cdf(samples)
    return cdfs


# ----------------------------------------------------------------------
# Figure 5a — application-specific peering (deployment experiment)
# ----------------------------------------------------------------------

AWS_PREFIX = IPv4Prefix("54.198.0.0/16")


def _fig5a_controller() -> SdxController:
    sdx = SdxController()
    sdx.add_participant("A", 65001)   # transit via Wisconsin
    sdx.add_participant("B", 65002)   # transit via Clemson
    sdx.add_participant("C", 65003)   # the client's ISP
    sdx.announce_route("A", AWS_PREFIX, AsPath([65001, 2381, 14618]))
    sdx.announce_route("B", AWS_PREFIX, AsPath([65002, 12148, 7843, 14618]))
    sdx.start()
    return sdx


def run_fig5a(duration: float = 1_800.0, policy_time: float = 565.0,
              withdrawal_time: float = 1_253.0,
              time_scale: float = 1.0) -> Tuple[Dict[str, Series], List[Tuple[float, str]]]:
    """The Figure 5a timeline: traffic per egress path over time.

    ``time_scale`` compresses the timeline (0.1 → ten times faster) while
    keeping event positions proportionally identical.
    """
    sdx = _fig5a_controller()
    web_policy = match(dstport=80) >> fwd("B")

    def install_policy(controller: SdxController) -> None:
        controller.participant("C").add_outbound(web_policy)

    def withdraw_route(controller: SdxController) -> None:
        controller.withdraw_route("B", AWS_PREFIX)

    flows = [
        FlowSpec(name=f"flow-{port}", source="C",
                 packet=Packet(dstip="54.198.0.10", dstport=port,
                               srcip="156.0.0.1", protocol=17))
        for port in (80, 81, 82)
    ]
    actions = [
        TimedAction(time=policy_time * time_scale,
                    label="application-specific peering policy",
                    apply=install_policy),
        TimedAction(time=withdrawal_time * time_scale,
                    label="route withdrawal", apply=withdraw_route),
    ]
    simulation = TrafficSimulation(
        sdx, flows, actions,
        step_seconds=max(time_scale, 1e-3) * 10.0)
    series = simulation.run(duration * time_scale)
    return series, simulation.event_log


# ----------------------------------------------------------------------
# Figure 5b — wide-area load balance (deployment experiment)
# ----------------------------------------------------------------------

ANYCAST = IPv4Prefix("74.125.1.0/24")
INSTANCE_1 = "54.198.1.1"
INSTANCE_2 = "54.198.2.2"


def _fig5b_controller() -> SdxController:
    sdx = SdxController()
    sdx.add_participant("A", 65001)   # the clients' ISP
    sdx.add_participant("B", 65002)   # transit toward AWS
    sdx.announce_route("B", AWS_PREFIX, AsPath([65002, 14618]))
    tenant = sdx.add_participant("Tenant", 65099, ports=0)
    sdx.register_ownership(ANYCAST, "Tenant")
    tenant.add_inbound(
        match(dstip="74.125.1.1") >> modify(dstip=INSTANCE_1) >> fwd("B"))
    sdx.start()
    tenant.announce(ANYCAST)
    return sdx


def run_fig5b(duration: float = 600.0, policy_time: float = 246.0,
              time_scale: float = 1.0) -> Tuple[Dict[str, Series], List[Tuple[float, str]]]:
    """The Figure 5b timeline: traffic per AWS instance over time."""
    sdx = _fig5b_controller()

    def install_balancer(controller: SdxController) -> None:
        tenant = controller.participant("Tenant")
        tenant.participant.clear_policies()
        tenant.participant.add_inbound(
            (match(dstip="74.125.1.1") & match(srcip="204.57.0.67"))
            >> modify(dstip=INSTANCE_2) >> fwd("B"))
        tenant.participant.add_inbound(
            match(dstip="74.125.1.1") >> modify(dstip=INSTANCE_1) >> fwd("B"))
        controller.notify_policy_change("Tenant")

    flows = [
        FlowSpec(name="client-1", source="A",
                 packet=Packet(dstip="74.125.1.1", dstport=80,
                               srcip="204.57.0.67", protocol=17)),
        FlowSpec(name="client-2", source="A",
                 packet=Packet(dstip="74.125.1.1", dstport=80,
                               srcip="198.51.100.9", protocol=17)),
    ]
    actions = [
        TimedAction(time=policy_time * time_scale,
                    label="load-balance policy", apply=install_balancer),
    ]

    def classify(delivery) -> str:
        dstip = str(delivery.packet.get("dstip"))
        if dstip == INSTANCE_1:
            return "AWS instance #1"
        if dstip == INSTANCE_2:
            return "AWS instance #2"
        return dstip

    simulation = TrafficSimulation(
        sdx, flows, actions, classify=classify,
        step_seconds=max(time_scale, 1e-3) * 10.0)
    series = simulation.run(duration * time_scale)
    return series, simulation.event_log
