"""ARP: address resolution for physical hosts and SDX virtual next hops.

The SDX controller "directs its own ARP server to respond to requests for
the VNH IP address with the corresponding VMAC" (Section 4.2). The
:class:`ArpService` therefore consults, in order:

1. static bindings for physical router ports at the exchange;
2. the SDX :class:`ArpResponder`, which owns the virtual next-hop space.

Participant border routers resolve BGP next hops exclusively through this
service — which is exactly the transparency trick that lets unmodified
routers tag packets with FEC VMACs.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.exceptions import FabricError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress


class ArpResponder:
    """The SDX-operated responder for virtual next-hop addresses.

    Bindings are installed by the VNH assigner; queries for addresses
    outside the VNH pool return ``None`` so the service can fall through
    to physical bindings.
    """

    def __init__(self, pool: IPv4Prefix, telemetry=None):
        self.pool = pool
        self._bindings: Dict[IPv4Address, MacAddress] = {}
        self.queries_answered = 0
        self._answered_counter = None
        self._miss_counter = None
        if telemetry is not None:
            self.bind_telemetry(telemetry)

    def bind_telemetry(self, telemetry) -> None:
        """Record resolution activity into ``telemetry``'s registry.

        Registers ``sdx_arp_queries_total`` (answered) and
        ``sdx_arp_misses_total`` — unanswerable queries for in-pool
        addresses, i.e. routers that could not resolve a VNH.
        """
        self._answered_counter = telemetry.registry.counter(
            "sdx_arp_queries_total", "VNH ARP queries answered")
        self._miss_counter = telemetry.registry.counter(
            "sdx_arp_misses_total",
            "ARP queries for in-pool addresses with no binding")

    def bind(self, vnh: IPv4Address, vmac: MacAddress) -> None:
        """Answer future queries for ``vnh`` with ``vmac``."""
        if not self.pool.contains_address(vnh):
            raise FabricError(f"VNH {vnh} outside responder pool {self.pool}")
        self._bindings[vnh] = vmac

    def unbind(self, vnh: IPv4Address) -> None:
        """Remove the binding for ``vnh`` (no-op if absent)."""
        self._bindings.pop(vnh, None)

    def owns(self, address: IPv4Address) -> bool:
        """True if ``address`` lies in the responder's VNH pool."""
        return self.pool.contains_address(address)

    def resolve(self, address: IPv4Address) -> Optional[MacAddress]:
        """The VMAC bound to ``address``, if any."""
        mac = self._bindings.get(address)
        if mac is not None:
            self.queries_answered += 1
            if self._answered_counter is not None:
                self._answered_counter.inc()
        elif self._miss_counter is not None and self.owns(address):
            self._miss_counter.inc()
        return mac

    def bindings(self) -> Dict[IPv4Address, MacAddress]:
        """A copy of every current binding."""
        return dict(self._bindings)

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:
        return f"ArpResponder(pool={self.pool}, {len(self)} bindings)"


class ArpService:
    """The exchange-wide resolution service border routers query."""

    def __init__(self) -> None:
        self._static: Dict[IPv4Address, MacAddress] = {}
        self._responder: Optional[ArpResponder] = None

    def add_static(self, address: IPv4Address, mac: MacAddress) -> None:
        """Register a physical router-port address."""
        existing = self._static.get(address)
        if existing is not None and existing != mac:
            raise FabricError(f"conflicting static ARP binding for {address}")
        self._static[address] = mac

    def attach_responder(self, responder: ArpResponder) -> None:
        """Install the SDX VNH responder."""
        self._responder = responder

    def resolve(self, address: IPv4Address) -> Optional[MacAddress]:
        """Resolve ``address`` to a MAC, or ``None`` if nobody answers."""
        mac = self._static.get(address)
        if mac is not None:
            return mac
        if self._responder is not None:
            return self._responder.resolve(address)
        return None

    def __repr__(self) -> str:
        responder = "with responder" if self._responder else "no responder"
        return f"ArpService({len(self._static)} static, {responder})"
