"""The MONITORING event class through the runtime queue and loop."""

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.monitoring.events import HeavyHitter
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.runtime import ManualClock
from repro.runtime.events import EventClass, RuntimeEvent
from repro.runtime.queue import RuntimeQueue

from tests.core.scenarios import figure1_controller

_SEQ = iter(range(1, 10_000))


def monitoring(label=""):
    observation = HeavyHitter(sampled_at=0.0, fec="60.0.0.0/8",
                              rate_mbps=120.0, share=0.9, raised=True)
    return RuntimeEvent(kind=EventClass.MONITORING, seq=next(_SEQ),
                        enqueued_wall=0.0, monitoring=observation, label=label)


def announce(sender="A", prefix="10.0.0.0/24"):
    update = Update.announce(sender, IPv4Prefix(prefix), RouteAttributes(
        next_hop=IPv4Address("172.0.0.1"), as_path=AsPath([100])))
    return RuntimeEvent(kind=EventClass.ANNOUNCEMENT, seq=next(_SEQ),
                        enqueued_wall=0.0, update=update)


def policy():
    return RuntimeEvent(kind=EventClass.POLICY, seq=next(_SEQ),
                        enqueued_wall=0.0, apply=lambda c: None, label="p")


def started_runtime():
    sdx, *_ = figure1_controller()
    sdx.start()
    return sdx, sdx.build_runtime(clock=ManualClock())


class TestQueueBehaviour:
    def test_monitoring_drains_after_every_routing_class(self):
        queue = RuntimeQueue()
        queue.offer(monitoring())
        queue.offer(announce())
        queue.offer(policy())
        kinds = [event.kind for event in queue.pop(3)]
        assert kinds == [EventClass.POLICY, EventClass.ANNOUNCEMENT,
                         EventClass.MONITORING]

    def test_monitoring_sheds_first_under_overload(self):
        queue = RuntimeQueue()
        queue.offer(announce())
        victim = monitoring()
        queue.offer(victim)
        shed = queue.shed_oldest()
        assert shed.seq == victim.seq
        assert shed.kind is EventClass.MONITORING

    def test_monitoring_events_never_coalesce(self):
        queue = RuntimeQueue()
        queue.offer(monitoring())
        queue.offer(monitoring())
        assert queue.depth == 2

    def test_describe_names_the_observation(self):
        event = monitoring()
        assert event.describe() == "monitoring:HeavyHitter"
        assert monitoring(label="hot").describe() == "monitoring:hot"


class TestRuntimeDispatch:
    def test_submit_monitoring_reaches_handlers(self):
        sdx, runtime = started_runtime()
        seen = []
        runtime.add_monitoring_handler(
            lambda observation, controller: seen.append(
                (observation, controller)))
        observation = HeavyHitter(sampled_at=1.0, fec="f", rate_mbps=9.0,
                                  share=0.5, raised=True)
        runtime.submit_monitoring(observation)
        runtime.drain()
        assert seen == [(observation, sdx)]
        assert runtime.stats()["submitted"]["monitoring"] == 1

    def test_handlers_run_in_subscription_order(self):
        _sdx, runtime = started_runtime()
        order = []
        runtime.add_monitoring_handler(lambda o, c: order.append("first"))
        runtime.add_monitoring_handler(lambda o, c: order.append("second"))
        runtime.submit_monitoring(object())
        runtime.drain()
        assert order == ["first", "second"]

    def test_attached_monitor_is_polled_and_requeued(self):
        _sdx, runtime = started_runtime()

        class OneShotMonitor:
            def __init__(self):
                self.polls = 0

            def poll(self, now):
                self.polls += 1
                if self.polls == 1:
                    return [HeavyHitter(sampled_at=now, fec="f",
                                        rate_mbps=1.0, share=1.0, raised=True)]
                return []

        monitor = OneShotMonitor()
        seen = []
        runtime.attach_monitor(monitor)
        runtime.add_monitoring_handler(lambda o, c: seen.append(o.fec))
        # An idle heartbeat polls the monitor and queues its emission;
        # drain() then dispatches it (polling again as it steps — the
        # cadence, here emit-once, is what guarantees termination).
        runtime.step()
        runtime.drain()
        assert seen == ["f"]
        assert monitor.polls >= 2

    def test_monitoring_counts_in_processed_totals(self):
        _sdx, runtime = started_runtime()
        runtime.add_monitoring_handler(lambda o, c: None)
        runtime.submit_monitoring(object())
        runtime.submit_monitoring(object())
        runtime.drain()
        stats = runtime.stats()
        assert stats["submitted"]["monitoring"] == 2
        assert stats["processed"] >= 2
