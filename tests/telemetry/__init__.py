"""Tests for the telemetry subsystem (registry, tracing, exporters)."""
