"""Tests for flow-rule emission and rendering."""

from repro.policy.classifier import Action, Classifier, Rule
from repro.policy.flowrules import FlowRule, render_flow_table, to_flow_rules
from repro.policy.headerspace import WILDCARD, HeaderSpace
from repro.policy.policies import fwd, match


class TestToFlowRules:
    def test_priorities_descend(self):
        classifier = ((match(dstport=80) >> fwd(2)) + (match(dstport=443) >> fwd(3))).compile()
        rules = to_flow_rules(classifier)
        priorities = [rule.priority for rule in rules]
        assert priorities == sorted(priorities, reverse=True)
        assert len(rules) == len(classifier)

    def test_base_priority_shifts_rules(self):
        classifier = fwd(2).compile()
        low = to_flow_rules(classifier, base_priority=0)
        high = to_flow_rules(classifier, base_priority=100)
        assert high[0].priority == low[0].priority + 100

    def test_drop_rule_emitted(self):
        classifier = Classifier([Rule(WILDCARD, ())])
        rules = to_flow_rules(classifier)
        assert rules[0].is_drop


class TestDescribe:
    def test_wildcard_match_shows_star(self):
        rule = FlowRule(priority=1, match=WILDCARD, actions=())
        assert rule.describe() == "priority=1 * -> drop"

    def test_output_action_rendered(self):
        rule = FlowRule(priority=2, match=HeaderSpace(dstport=80), actions=(Action(port=3),))
        assert rule.describe() == "priority=2 dstport=80 -> output:3"

    def test_set_field_rendered(self):
        rule = FlowRule(
            priority=2, match=WILDCARD, actions=(Action(dstip="10.0.0.9", port=3),))
        assert "set:dstip=10.0.0.9" in rule.describe()
        assert "output:3" in rule.describe()

    def test_identity_action_renders_pass(self):
        from repro.policy.classifier import IDENTITY_ACTION
        rule = FlowRule(priority=1, match=WILDCARD, actions=(IDENTITY_ACTION,))
        assert rule.describe().endswith("pass")

    def test_render_table_sorts_by_priority(self):
        rules = [
            FlowRule(priority=1, match=WILDCARD, actions=()),
            FlowRule(priority=5, match=HeaderSpace(dstport=80), actions=(Action(port=2),)),
        ]
        rendered = render_flow_table(rules)
        first_line, second_line = rendered.splitlines()
        assert first_line.startswith("priority=5")
        assert second_line.startswith("priority=1")
