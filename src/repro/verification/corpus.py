"""Deterministic packet corpora for differential comparison.

A corpus is the probe set every execution forwards after every trace
step. It mixes structured probes — one per (prefix, interesting header
value) so each policy clause has packets that hit and packets that miss
it — with seeded random packets for the combinations nobody thought of.
Everything derives from the scenario seed, so a replayed artifact
compares exactly the same packets.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple, Union

from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.verification.scenario import Scenario
from repro.workloads.seeding import SeedLike, derive_seed, make_rng

#: Destination ports always present in a corpus (hit + guaranteed miss).
_BASE_DSTPORTS = (80, 22)

#: Source addresses exercising both halves of the address space.
_BASE_SRCIPS = ("10.0.0.1", "200.0.0.1")


def _policy_values(scenario: Scenario, field: str) -> List[Union[int, str]]:
    """Distinct match values the scenario's policies use for ``field``."""
    seen: Set[Union[int, str]] = set()
    for policy in scenario.policies:
        if policy.field == field:
            seen.add(policy.value)
    return sorted(seen, key=str)


def generate_corpus(scenario: Scenario, *, size: int = 16,
                    seed: SeedLike = None) -> Tuple[Packet, ...]:
    """The probe packets for one scenario.

    Structured probes cover every announced prefix crossed with every
    destination port the policies match on (plus a port nothing matches),
    both source halves, and both transport protocols in use; ``size``
    extra packets are drawn at random from the same pools. ``seed``
    defaults to a value derived from the scenario seed.
    """
    rng = make_rng(derive_seed(scenario.seed, "corpus")
                   if seed is None else seed)
    prefixes = [IPv4Prefix(text) for text in scenario.prefixes]
    dstports = sorted(
        {int(v) for v in _policy_values(scenario, "dstport")}
        | set(_BASE_DSTPORTS))
    srcports = sorted(
        {int(v) for v in _policy_values(scenario, "srcport")} | {1234})
    protocols = sorted(
        {int(v) for v in _policy_values(scenario, "protocol")} | {6})

    packets: List[Packet] = []
    for prefix in prefixes:
        dstip = prefix.first_address + 1
        for dstport in dstports:
            for srcip in _BASE_SRCIPS:
                packets.append(Packet(
                    dstip=dstip, dstport=dstport, srcip=srcip,
                    srcport=srcports[0], protocol=protocols[0]))
        for protocol in protocols[1:]:
            packets.append(Packet(
                dstip=dstip, dstport=dstports[0], srcip=_BASE_SRCIPS[0],
                srcport=srcports[0], protocol=protocol))
        for srcport in srcports[1:]:
            packets.append(Packet(
                dstip=dstip, dstport=dstports[0], srcip=_BASE_SRCIPS[0],
                srcport=srcport, protocol=protocols[0]))

    for _ in range(size):
        prefix = rng.choice(prefixes)
        offset = rng.randrange(1, min(prefix.num_addresses, 250))
        packets.append(Packet(
            dstip=prefix.first_address + offset,
            dstport=rng.choice(dstports),
            srcip=rng.choice(_BASE_SRCIPS),
            srcport=rng.choice(srcports),
            protocol=rng.choice(protocols)))
    return tuple(packets)


def senders_for(scenario: Scenario) -> Tuple[str, ...]:
    """The participants whose outbound forwarding the oracle probes."""
    return scenario.participant_names()


__all__ = ["generate_corpus", "senders_for"]


def describe_corpus(packets: Sequence[Packet]) -> str:
    """A one-line summary used in fuzz reports."""
    return f"{len(packets)} probe packets"
