"""Counters and latency histograms for the southbound engine.

Everything the Figure 9/10 update-cost benchmarks need to report the
delta engine's behaviour: FlowMods sent per kind, coalescing savings,
batch sizes, per-batch apply latency, and how many rules each sync left
untouched (the counter-preserving majority).

Since the telemetry PR, :class:`SouthboundStats` is a *facade over the
metrics registry*: every scalar below is stored in a
:class:`~repro.telemetry.registry.Counter` (``sdx_southbound_*``
families), so the same numbers appear verbatim in ``repro stats``, the
JSON snapshot, and the Prometheus exposition. The attribute API —
including augmented assignment like ``stats.adds_sent += 1`` — is
unchanged, and distributions still come back as
:class:`~repro.experiments.metrics.Cdf` so they plug straight into the
existing rendering machinery.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.registry import MetricsRegistry


class SouthboundStats:
    """Cumulative southbound-engine measurements, registry-backed.

    Pass the controller's registry to share one namespace with the rest
    of the pipeline; the default is a private registry so standalone
    engines (and tests) stay isolated.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        flowmods = "FlowMods applied to the table, by kind"
        self._adds = self.registry.counter(
            "sdx_southbound_flowmods_total", flowmods, op="add")
        self._modifies = self.registry.counter(
            "sdx_southbound_flowmods_total", flowmods, op="modify")
        self._deletes = self.registry.counter(
            "sdx_southbound_flowmods_total", flowmods, op="delete")
        self._coalesced = self.registry.counter(
            "sdx_southbound_coalesced_total",
            "Mods absorbed by per-key coalescing before reaching the switch")
        self._syncs = self.registry.counter(
            "sdx_southbound_syncs_total",
            "Classifier syncs processed (one per recompile swap)")
        self._unchanged = self.registry.counter(
            "sdx_southbound_rules_unchanged_total",
            "Rules a sync left untouched (counters preserved)")
        self._batches = self.registry.counter(
            "sdx_southbound_batches_total", "Batches applied to the table")
        self._backpressure = self.registry.counter(
            "sdx_southbound_backpressure_flushes_total",
            "Flushes forced by queue backpressure")
        self._batch_size = self.registry.histogram(
            "sdx_southbound_batch_size", "FlowMods per applied batch")
        self._apply_latency = self.registry.histogram(
            "sdx_southbound_apply_seconds",
            "Wall-clock seconds per applied batch")
        #: Size of every batch applied, in order (exact, for the CDFs).
        self.batch_sizes: List[int] = []
        #: Wall-clock seconds each batch took to apply, in order.
        self.apply_seconds: List[float] = []

    # ------------------------------------------------------------------
    # Scalar counters (registry-backed attributes)
    # ------------------------------------------------------------------

    @property
    def adds_sent(self) -> int:
        """ADD FlowMods sent to the table."""
        return self._adds.value

    @adds_sent.setter
    def adds_sent(self, value: int) -> None:
        self._adds.set(value)

    @property
    def modifies_sent(self) -> int:
        """MODIFY FlowMods sent to the table."""
        return self._modifies.value

    @modifies_sent.setter
    def modifies_sent(self, value: int) -> None:
        self._modifies.set(value)

    @property
    def deletes_sent(self) -> int:
        """DELETE FlowMods sent to the table."""
        return self._deletes.value

    @deletes_sent.setter
    def deletes_sent(self, value: int) -> None:
        self._deletes.set(value)

    @property
    def mods_coalesced(self) -> int:
        """Mods absorbed by per-key coalescing before the switch saw them."""
        return self._coalesced.value

    @mods_coalesced.setter
    def mods_coalesced(self, value: int) -> None:
        self._coalesced.set(value)

    @property
    def syncs(self) -> int:
        """Classifier syncs processed (one per recompile swap)."""
        return self._syncs.value

    @syncs.setter
    def syncs(self, value: int) -> None:
        self._syncs.set(value)

    @property
    def rules_unchanged(self) -> int:
        """Rules syncs left untouched (counters preserved), cumulative."""
        return self._unchanged.value

    @rules_unchanged.setter
    def rules_unchanged(self, value: int) -> None:
        self._unchanged.set(value)

    @property
    def batches_applied(self) -> int:
        """Batches applied to the table."""
        return self._batches.value

    @batches_applied.setter
    def batches_applied(self, value: int) -> None:
        self._batches.set(value)

    @property
    def backpressure_flushes(self) -> int:
        """Flushes forced by queue backpressure."""
        return self._backpressure.value

    @backpressure_flushes.setter
    def backpressure_flushes(self, value: int) -> None:
        self._backpressure.set(value)

    @property
    def mods_sent(self) -> int:
        """Total FlowMods actually applied to the table."""
        return self.adds_sent + self.modifies_sent + self.deletes_sent

    # ------------------------------------------------------------------
    # Distributions
    # ------------------------------------------------------------------

    def record_batch(self, size: int, seconds: float) -> None:
        """Account one applied batch."""
        self._batches.inc()
        self.batch_sizes.append(size)
        self.apply_seconds.append(seconds)
        self._batch_size.observe(size)
        self._apply_latency.observe(seconds)

    def batch_size_cdf(self):
        """Distribution of batch sizes (a :class:`~repro.experiments.metrics.Cdf`)."""
        from repro.experiments.metrics import Cdf
        return Cdf(self.batch_sizes)

    def apply_time_cdf(self):
        """Distribution of per-batch apply latencies."""
        from repro.experiments.metrics import Cdf
        return Cdf(self.apply_seconds)

    def snapshot(self) -> Dict[str, int]:
        """The scalar counters as a plain dict (for logs and diffing)."""
        return {
            "adds_sent": self.adds_sent,
            "modifies_sent": self.modifies_sent,
            "deletes_sent": self.deletes_sent,
            "mods_sent": self.mods_sent,
            "mods_coalesced": self.mods_coalesced,
            "syncs": self.syncs,
            "rules_unchanged": self.rules_unchanged,
            "batches_applied": self.batches_applied,
            "backpressure_flushes": self.backpressure_flushes,
        }

    def render(self) -> str:
        """A printable table of counters plus latency quantiles."""
        from repro.experiments.metrics import render_table
        rows = [[name, value] for name, value in self.snapshot().items()]
        if self.apply_seconds:
            latency = self.apply_time_cdf()
            rows.append(["apply ms (median)", f"{latency.median * 1000:.3f}"])
            rows.append(["apply ms (p99)",
                         f"{latency.quantile(0.99) * 1000:.3f}"])
        if self.batch_sizes:
            sizes = self.batch_size_cdf()
            rows.append(["batch size (median)", f"{sizes.median:g}"])
            rows.append(["batch size (max)", f"{max(self.batch_sizes)}"])
        return render_table(["counter", "value"], rows)

    def __repr__(self) -> str:
        return (f"SouthboundStats({self.mods_sent} sent, "
                f"{self.mods_coalesced} coalesced, "
                f"{self.batches_applied} batches)")
