"""Timed trace replay with background re-optimisation between bursts.

Section 4.3.2: "the main recompilation algorithm is then executed in the
background between subsequent bursts of updates", exploiting the
measured inter-arrival gaps (≥ 10 s 75% of the time). The replayer walks
a timed trace with a virtual clock, drives every update through the
controller's fast path, and — whenever the virtual gap to the next event
exceeds the configured threshold — runs the background re-optimisation,
exactly the scheduling policy the paper describes.

The collected :class:`ReplayStats` expose both halves of the space/time
trade: per-update fast-path latency, and how large the table grows
between re-optimisations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.controller import SdxController
from repro.experiments.metrics import Cdf
from repro.workloads.updates import TraceEvent


@dataclass
class ReplayStats:
    """What one replay observed."""

    updates_replayed: int = 0
    background_runs: int = 0
    fast_path_seconds: List[float] = field(default_factory=list)
    background_seconds: List[float] = field(default_factory=list)
    peak_extra_rules: int = 0
    table_sizes: List[Tuple[float, int]] = field(default_factory=list)

    @property
    def fast_path_cdf(self) -> Cdf:
        """Per-update fast-path latency distribution."""
        return Cdf(self.fast_path_seconds)

    def summary(self) -> str:
        """A short printable digest."""
        cdf = self.fast_path_cdf
        background = (
            f"{self.background_runs} background runs"
            + (f", mean {sum(self.background_seconds) / len(self.background_seconds) * 1000:.0f} ms"
               if self.background_seconds else ""))
        return (f"{self.updates_replayed} updates; fast path median "
                f"{cdf.median * 1000:.1f} ms / p99 "
                f"{cdf.quantile(0.99) * 1000:.1f} ms; peak extra rules "
                f"{self.peak_extra_rules}; {background}")


class TraceReplayer:
    """Replays a timed update trace against a started controller."""

    def __init__(self, controller: SdxController, *,
                 background_gap_seconds: float = 10.0):
        if not controller.started:
            raise ValueError("start the controller before replaying a trace")
        self.controller = controller
        self.background_gap_seconds = background_gap_seconds

    def replay(self, events: Sequence[TraceEvent],
               final_background: bool = True) -> ReplayStats:
        """Walk the trace; returns the collected statistics."""
        import time as _time

        stats = ReplayStats()
        controller = self.controller
        previous_time: Optional[float] = None
        for event in events:
            gap = (event.time - previous_time
                   if previous_time is not None else 0.0)
            if (previous_time is not None
                    and gap >= self.background_gap_seconds
                    and controller.engine.dirty):
                started = _time.perf_counter()
                controller.run_background_recompilation()
                stats.background_seconds.append(_time.perf_counter() - started)
                stats.background_runs += 1
            log_length = len(controller.fast_path_log)
            controller.submit_update(event.update)
            for entry in controller.fast_path_log[log_length:]:
                stats.fast_path_seconds.append(entry.seconds)
            stats.updates_replayed += 1
            stats.peak_extra_rules = max(
                stats.peak_extra_rules,
                controller.engine.fast_path_rules_live)
            stats.table_sizes.append((event.time, len(controller.table)))
            previous_time = event.time
        if final_background and controller.engine.dirty:
            started = _time.perf_counter()
            controller.run_background_recompilation()
            stats.background_seconds.append(_time.perf_counter() - started)
            stats.background_runs += 1
        return stats
