"""OpenFlow-style flow rules emitted from compiled classifiers.

The classifier is priority-free (order *is* priority); switches want
explicit numeric priorities. :func:`to_flow_rules` assigns descending
priorities, and :func:`render_flow_table` pretty-prints the result the way
``ovs-ofctl dump-flows`` would, which the examples use for inspection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.policy.classifier import Action, Classifier, Rule
from repro.policy.headerspace import HeaderSpace


@dataclass(frozen=True)
class FlowRule:
    """One switch flow-table entry.

    ``actions`` is a tuple of :class:`~repro.policy.classifier.Action`;
    empty means drop. Higher ``priority`` wins.
    """

    priority: int
    match: HeaderSpace
    actions: Tuple[Action, ...]

    @property
    def is_drop(self) -> bool:
        """True if matching packets are dropped."""
        return not self.actions

    def describe(self) -> str:
        """A single-line human-readable rendering."""
        if self.match.is_wildcard:
            match_text = "*"
        else:
            match_text = ",".join(
                f"{field}={value!s}" for field, value in self.match.items_sorted())
        if self.is_drop:
            action_text = "drop"
        else:
            parts = []
            for action in self.actions:
                sets = [
                    f"set:{field}={value!s}"
                    for field, value in sorted(action.items())
                    if field != "port"
                ]
                port = action.output_port
                if port is not None:
                    sets.append(f"output:{port}")
                parts.append(" ".join(sets) if sets else "pass")
            action_text = " | ".join(parts)
        return f"priority={self.priority} {match_text} -> {action_text}"


def to_flow_rules(classifier: Classifier, base_priority: int = 0) -> List[FlowRule]:
    """Assign descending priorities to a classifier's rules.

    The first (highest-priority) rule gets ``base_priority + len(rules)``
    so that tables installed later with a higher base can shadow earlier
    ones — the mechanism the two-stage incremental compiler relies on.
    """
    rules = classifier.rules
    top = base_priority + len(rules)
    return [
        FlowRule(priority=top - index, match=rule.match, actions=rule.actions)
        for index, rule in enumerate(rules)
    ]


def render_flow_table(rules: Iterable[FlowRule]) -> str:
    """A printable multi-line table of flow rules, highest priority first."""
    ordered = sorted(rules, key=lambda rule: -rule.priority)
    return "\n".join(rule.describe() for rule in ordered)
