"""The PR's acceptance soak: 200 dataplane-verified scenarios, clean.

Every scenario holds the incremental verifier byte-identical to a
fresh whole-table analysis at every trace step and re-fires every
SDX010-SDX012 witness packet through the real flow table. Marked
``fuzz`` — excluded from the default test run (see ``pyproject.toml``),
executed by ``make dataplane-lint-smoke`` / ``make fuzz`` tier jobs.
"""

import pytest

from repro.verification.fuzz import FuzzConfig, run_fuzz

pytestmark = pytest.mark.fuzz


def test_two_hundred_scenario_soak_is_clean():
    config = FuzzConfig(
        seed=2014, scenarios=200, steps=8, participants=4,
        prefixes=4, policies=4, corpus_size=6, dataplane=True)
    report = run_fuzz(config)
    assert report.scenarios_run == 200
    assert report.ok, report.summary()


def test_churn_heavy_soak_is_clean():
    config = FuzzConfig(
        seed=2015, scenarios=30, steps=14, participants=6,
        prefixes=6, policies=6, corpus_size=6, dataplane=True)
    report = run_fuzz(config)
    assert report.ok, report.summary()
