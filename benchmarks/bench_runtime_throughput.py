"""Runtime throughput — the control-plane event loop under burst load.

Drives one seeded burst trace (5,000 updates hammering a small hot
prefix set) through three executions of the same exchange:

* **inline** — direct ``submit_update`` per event with periodic
  background recompilation (the pre-runtime driving style);
* **runtime** — the deterministic step-driven
  :class:`~repro.runtime.loop.ControlPlaneRuntime` with coalescing;
* **runtime-nc** — the same runtime with coalescing disabled.

Two claims are checked, not just measured. First, equivalence: after
settling, both runtime executions must reach a canonical state
(Adj-RIBs, best routes, VNH grouping, table size) identical to the
inline execution's — the oracle from
:mod:`repro.verification.runtime`. Second, absorption: coalescing must
measurably cut route-server submissions on a hot-prefix burst trace.
Throughput and ingest-to-install latency per burst size land in
``benchmarks/results/runtime_throughput.json`` alongside the rendered
table.
"""

import time

from conftest import publish, publish_json, scaled

from repro.experiments.metrics import render_table
from repro.runtime import RuntimeConfig
from repro.verification.runtime import canonical_state
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import generate_ixp
from repro.workloads.updates import generate_burst_trace

PARTICIPANTS = 20
PREFIXES = 200
TOTAL_UPDATES = 5_000
HOT_PREFIXES = 24
BURST_SIZES = (50, 250, 1_000)
BATCH_SIZE = 64
SEED = 7


def _controller(ixp):
    controller = ixp.build_controller()
    install_assignments(controller, generate_policies(ixp, seed=SEED + 1))
    controller.start()
    return controller


def _trace(ixp, burst_size, total):
    return generate_burst_trace(
        ixp, bursts=max(1, total // burst_size), burst_size=burst_size,
        hot_prefixes=HOT_PREFIXES, seed=SEED + 2)


def _run_inline(ixp, events):
    """Direct submit_update per event, recompiling every BATCH_SIZE."""
    controller = _controller(ixp)
    latencies = []
    started = time.perf_counter()
    for index, event in enumerate(events):
        began = time.perf_counter()
        controller.submit_update(event.update)
        latencies.append(time.perf_counter() - began)
        if (index + 1) % BATCH_SIZE == 0:
            controller.run_background_recompilation()
    controller.run_background_recompilation()
    elapsed = time.perf_counter() - started
    latencies.sort()
    return controller, {
        "arm": "inline",
        "updates": len(events),
        "elapsed_seconds": elapsed,
        "updates_per_second": len(events) / elapsed,
        "ingest_p50_ms": latencies[len(latencies) // 2] * 1000,
        "ingest_p99_ms": latencies[int(len(latencies) * 0.99)] * 1000,
        "rs_submissions": controller.route_server.updates_processed,
        "coalescing_ratio": 0.0,
    }


def _run_runtime(ixp, events, *, coalesce):
    """The step-driven runtime, stepping every BATCH_SIZE submissions."""
    controller = _controller(ixp)
    runtime = controller.build_runtime(RuntimeConfig(
        batch_size=BATCH_SIZE, coalesce=coalesce))
    started = time.perf_counter()
    for index, event in enumerate(events):
        runtime.submit_update(event.update)
        if (index + 1) % BATCH_SIZE == 0:
            runtime.step()
    runtime.settle()
    elapsed = time.perf_counter() - started
    stats = runtime.stats()
    ingest = stats["ingest_seconds"]
    return controller, {
        "arm": "runtime" if coalesce else "runtime-nc",
        "updates": len(events),
        "elapsed_seconds": elapsed,
        "updates_per_second": len(events) / elapsed,
        "ingest_p50_ms": ingest["p50"] * 1000,
        "ingest_p99_ms": ingest["p99"] * 1000,
        "rs_submissions": controller.route_server.updates_processed,
        "coalescing_ratio": stats["coalescing_ratio"],
    }


def _run_all():
    ixp = generate_ixp(PARTICIPANTS, PREFIXES, seed=SEED)
    total = scaled(TOTAL_UPDATES)
    rows = []
    for burst_size in BURST_SIZES:
        events = _trace(ixp, burst_size, total)
        inline, inline_row = _run_inline(ixp, events)
        routed, routed_row = _run_runtime(ixp, events, coalesce=True)
        plain, plain_row = _run_runtime(ixp, events, coalesce=False)
        want = canonical_state(inline)
        for name, controller in (("runtime", routed), ("runtime-nc", plain)):
            problems = want.diff(canonical_state(controller))
            assert not problems, f"{name} burst={burst_size}: {problems[0]}"
        for row in (inline_row, routed_row, plain_row):
            row["burst_size"] = burst_size
            rows.append(row)
    return rows


def test_runtime_throughput(benchmark):
    rows = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    table_rows = [[
        row["burst_size"], row["arm"], row["updates"],
        f"{row['updates_per_second']:.0f}",
        f"{row['ingest_p50_ms']:.1f}", f"{row['ingest_p99_ms']:.1f}",
        row["rs_submissions"], f"{row['coalescing_ratio']:.2f}",
    ] for row in rows]
    publish("runtime_throughput", render_table(
        ["burst", "arm", "updates", "upd/s", "p50 ms", "p99 ms",
         "rs subs", "coalesce"], table_rows))
    publish_json("runtime_throughput", rows)

    # Coalescing must measurably absorb the hot-prefix churn: fewer
    # route-server submissions than both the inline and the
    # non-coalescing arms, at every burst size.
    by_burst = {}
    for row in rows:
        by_burst.setdefault(row["burst_size"], {})[row["arm"]] = row
    for burst_size, arms in by_burst.items():
        runtime_row = arms["runtime"]
        assert runtime_row["coalescing_ratio"] > 0.2, (burst_size, runtime_row)
        assert (runtime_row["rs_submissions"]
                < arms["inline"]["rs_submissions"] * 0.8), (burst_size, arms)
        assert (runtime_row["rs_submissions"]
                < arms["runtime-nc"]["rs_submissions"] * 0.8), (burst_size,
                                                                arms)
