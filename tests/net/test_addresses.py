"""Unit and property tests for IPv4 address/prefix arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import AddressError
from repro.net.addresses import DEFAULT_ROUTE, IPv4Address, IPv4Prefix

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
lengths = st.integers(min_value=0, max_value=32)
prefixes = st.builds(lambda n, l: IPv4Prefix(network=n, length=l), addresses, lengths)


class TestIPv4Address:
    def test_parses_dotted_quad(self):
        assert int(IPv4Address("10.0.0.1")) == 0x0A000001

    def test_round_trips_text(self):
        assert str(IPv4Address("192.168.1.254")) == "192.168.1.254"

    def test_accepts_integer(self):
        assert str(IPv4Address(0xC0A80101)) == "192.168.1.1"

    def test_copy_constructor(self):
        original = IPv4Address("8.8.8.8")
        assert IPv4Address(original) == original

    @pytest.mark.parametrize("bad", ["10.0.0", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", ""])
    def test_rejects_malformed_text(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    @pytest.mark.parametrize("bad", [-1, 1 << 32])
    def test_rejects_out_of_range_int(self, bad):
        with pytest.raises(AddressError):
            IPv4Address(bad)

    def test_rejects_other_types(self):
        with pytest.raises(AddressError):
            IPv4Address(1.5)

    def test_ordering(self):
        assert IPv4Address("10.0.0.1") < IPv4Address("10.0.0.2")
        assert IPv4Address("10.0.0.1") <= IPv4Address("10.0.0.1")

    def test_hashable_and_equal(self):
        assert {IPv4Address("1.1.1.1"), IPv4Address("1.1.1.1")} == {IPv4Address("1.1.1.1")}

    def test_addition(self):
        assert IPv4Address("10.0.0.1") + 9 == IPv4Address("10.0.0.10")

    def test_in_prefix(self):
        assert IPv4Address("10.1.2.3").in_prefix(IPv4Prefix("10.0.0.0/8"))

    @given(addresses)
    def test_text_round_trip_property(self, value):
        assert int(IPv4Address(str(IPv4Address(value)))) == value


class TestIPv4Prefix:
    def test_parses_cidr(self):
        prefix = IPv4Prefix("10.0.0.0/8")
        assert prefix.length == 8
        assert str(prefix.network) == "10.0.0.0"

    def test_zeroes_host_bits(self):
        assert str(IPv4Prefix("10.1.2.3/8")) == "10.0.0.0/8"

    def test_network_and_length_kwargs(self):
        assert IPv4Prefix(network="10.0.0.0", length=8) == IPv4Prefix("10.0.0.0/8")

    @pytest.mark.parametrize("bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/x", "/8"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressError):
            IPv4Prefix(bad)

    def test_rejects_missing_parts(self):
        with pytest.raises(AddressError):
            IPv4Prefix(network="10.0.0.0")

    def test_netmask(self):
        assert str(IPv4Prefix("10.0.0.0/24").netmask) == "255.255.255.0"
        assert str(DEFAULT_ROUTE.netmask) == "0.0.0.0"

    def test_num_addresses(self):
        assert IPv4Prefix("10.0.0.0/30").num_addresses == 4
        assert DEFAULT_ROUTE.num_addresses == 1 << 32

    def test_first_last_address(self):
        prefix = IPv4Prefix("10.0.0.0/30")
        assert str(prefix.first_address) == "10.0.0.0"
        assert str(prefix.last_address) == "10.0.0.3"

    def test_contains_address(self):
        prefix = IPv4Prefix("10.0.0.0/8")
        assert prefix.contains_address("10.255.255.255")
        assert not prefix.contains_address("11.0.0.0")
        assert "10.0.0.1" not in IPv4Prefix("192.168.0.0/16")

    def test_contains_prefix(self):
        assert IPv4Prefix("10.0.0.0/8").contains_prefix(IPv4Prefix("10.1.0.0/16"))
        assert not IPv4Prefix("10.1.0.0/16").contains_prefix(IPv4Prefix("10.0.0.0/8"))
        assert IPv4Prefix("10.0.0.0/8") in IPv4Prefix("0.0.0.0/0")

    def test_overlaps(self):
        assert IPv4Prefix("10.0.0.0/8").overlaps(IPv4Prefix("10.2.0.0/16"))
        assert not IPv4Prefix("10.0.0.0/8").overlaps(IPv4Prefix("11.0.0.0/8"))

    def test_intersection_nests_or_empty(self):
        big = IPv4Prefix("10.0.0.0/8")
        small = IPv4Prefix("10.3.0.0/16")
        assert big.intersection(small) == small
        assert small.intersection(big) == small
        assert big.intersection(IPv4Prefix("11.0.0.0/8")) is None

    def test_supernet(self):
        assert IPv4Prefix("10.1.0.0/16").supernet(8) == IPv4Prefix("10.0.0.0/8")
        assert IPv4Prefix("10.1.0.0/16").supernet() == IPv4Prefix("10.0.0.0/15")
        with pytest.raises(AddressError):
            IPv4Prefix("10.0.0.0/8").supernet(16)

    def test_subnets(self):
        halves = list(IPv4Prefix("10.0.0.0/8").subnets())
        assert halves == [IPv4Prefix("10.0.0.0/9"), IPv4Prefix("10.128.0.0/9")]
        with pytest.raises(AddressError):
            list(IPv4Prefix("10.0.0.0/8").subnets(4))

    def test_addresses_iteration(self):
        listed = list(IPv4Prefix("10.0.0.0/31").addresses())
        assert listed == [IPv4Address("10.0.0.0"), IPv4Address("10.0.0.1")]

    def test_bit_at(self):
        prefix = IPv4Prefix("128.0.0.0/1")
        assert prefix.bit_at(0) == 1
        assert prefix.bit_at(1) == 0
        with pytest.raises(AddressError):
            prefix.bit_at(32)

    def test_ordering_and_hash(self):
        p1, p2 = IPv4Prefix("10.0.0.0/8"), IPv4Prefix("10.0.0.0/16")
        assert p1 < p2
        assert len({p1, IPv4Prefix("10.0.0.0/8")}) == 1

    @given(prefixes)
    def test_text_round_trip_property(self, prefix):
        assert IPv4Prefix(str(prefix)) == prefix

    @given(prefixes, addresses)
    def test_containment_matches_range_property(self, prefix, value):
        inside = int(prefix.first_address) <= value <= int(prefix.last_address)
        assert prefix.contains_address(value) == inside

    @given(prefixes, prefixes)
    def test_intersection_symmetric_property(self, left, right):
        assert left.intersection(right) == right.intersection(left)

    @given(prefixes, prefixes)
    def test_nest_or_disjoint_property(self, left, right):
        if left.overlaps(right):
            assert left.contains_prefix(right) or right.contains_prefix(left)
        else:
            assert left.intersection(right) is None
