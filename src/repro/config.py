"""JSON configuration: save and restore a whole exchange.

An operator adopting the SDX wants the exchange — participants, routes,
ownership registrations, export policies, and installed policies — as a
reviewable config file rather than a Python script. This module provides
a faithful round trip:

* :func:`export_config` / :func:`save_config` — snapshot a controller;
* :func:`controller_from_config` / :func:`load_config` — rebuild one.

Policies serialise in clause form with a structured predicate encoding
covering the full predicate algebra (conjunction, disjunction, negation,
prefix sets, value sets), so everything installable through the public
API survives the round trip. BGP-derived state that the controller
recomputes (FECs, VNHs, flow rules) is deliberately *not* serialised.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.bgp.asn import AsPath
from repro.core.clauses import Clause
from repro.core.controller import SdxController
from repro.exceptions import PolicyError, ReproError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.packet import IP_FIELDS
from repro.policy.policies import (
    Conjunction,
    Disjunction,
    Drop,
    Forward,
    Identity,
    Match,
    Modify,
    Negation,
    Policy,
    Predicate,
    Sequential,
    drop,
    identity,
)
from repro.policy.predicates import MatchAnyPrefix, MatchAnyValue

#: Current config schema version.
CONFIG_VERSION = 1


class ConfigError(ReproError):
    """A configuration document is malformed or unsupported."""


# ----------------------------------------------------------------------
# Predicate encoding
# ----------------------------------------------------------------------

def predicate_to_json(predicate: Predicate) -> Dict[str, Any]:
    """A JSON-safe structured encoding of a predicate tree."""
    from repro.core.dynamic import RibPrefixSet

    if isinstance(predicate, RibPrefixSet):
        return {"kind": "rib_match", "field": predicate.field,
                "attribute": predicate.attribute,
                "pattern": predicate.pattern}
    if isinstance(predicate, Identity):
        return {"kind": "true"}
    if isinstance(predicate, Drop):
        return {"kind": "false"}
    if isinstance(predicate, Match):
        return {"kind": "match",
                "fields": {field: str(value)
                           for field, value in predicate.space.items_sorted()}}
    if isinstance(predicate, MatchAnyPrefix):
        return {"kind": "any_prefix", "field": predicate.field,
                "prefixes": [str(prefix) for prefix in predicate.prefixes]}
    if isinstance(predicate, MatchAnyValue):
        return {"kind": "any_value", "field": predicate.field,
                "values": [str(value) for value in predicate.values]}
    if isinstance(predicate, Conjunction):
        return {"kind": "and",
                "parts": [predicate_to_json(part) for part in predicate.parts]}
    if isinstance(predicate, Disjunction):
        return {"kind": "or",
                "parts": [predicate_to_json(part) for part in predicate.parts]}
    if isinstance(predicate, Negation):
        return {"kind": "not", "part": predicate_to_json(predicate.inner)}
    raise ConfigError(f"cannot serialise predicate {predicate!r}")


def _parse_value(field: str, text: str) -> Any:
    if field in IP_FIELDS:
        return IPv4Prefix(text) if "/" in text else text
    try:
        return int(text)
    except ValueError:
        return text  # MAC addresses and dotted quads coerce downstream


def predicate_from_json(document: Dict[str, Any]) -> Predicate:
    """Rebuild a predicate from :func:`predicate_to_json` output."""
    kind = document.get("kind")
    if kind == "true":
        return identity
    if kind == "false":
        return drop
    if kind == "match":
        fields = {field: _parse_value(field, text)
                  for field, text in document["fields"].items()}
        from repro.policy.policies import match
        return match(**fields)
    if kind == "any_prefix":
        return MatchAnyPrefix(document["field"],
                              [IPv4Prefix(text) for text in document["prefixes"]])
    if kind == "any_value":
        return MatchAnyValue(document["field"],
                             [_parse_value(document["field"], text)
                              for text in document["values"]])
    if kind == "and":
        return Conjunction(tuple(
            predicate_from_json(part) for part in document["parts"]))
    if kind == "or":
        return Disjunction(tuple(
            predicate_from_json(part) for part in document["parts"]))
    if kind == "not":
        return Negation(predicate_from_json(document["part"]))
    if kind == "rib_match":
        from repro.core.dynamic import RibPrefixSet
        return RibPrefixSet(document["field"], document["attribute"],
                            document["pattern"])
    raise ConfigError(f"unknown predicate kind {kind!r}")


# ----------------------------------------------------------------------
# Policy (clause) encoding
# ----------------------------------------------------------------------

def clause_to_json(clause: Clause) -> Dict[str, Any]:
    """One clause as a JSON-safe dict."""
    document: Dict[str, Any] = {
        "match": predicate_to_json(clause.predicate)}
    if clause.modifications:
        document["modify"] = {
            field: str(value) for field, value in clause.modifications}
    if clause.drops:
        document["drop"] = True
    elif clause.target is not None:
        document["fwd"] = clause.target
    return document


def clause_to_policy(document: Dict[str, Any]) -> Policy:
    """Rebuild an installable policy from one clause document."""
    parts: List[Policy] = [predicate_from_json(document["match"])]
    modifications = document.get("modify", {})
    if modifications:
        parts.append(Modify(**{
            field: _parse_value(field, text)
            for field, text in modifications.items()}))
    if document.get("drop"):
        parts.append(drop)
    elif "fwd" in document:
        parts.append(Forward(document["fwd"]))
    return Sequential(tuple(parts))


# ----------------------------------------------------------------------
# Controller round trip
# ----------------------------------------------------------------------

def export_config(controller: SdxController) -> Dict[str, Any]:
    """Snapshot a controller's configuration as a JSON-safe dict."""
    participants = []
    policies = []
    # Registration order matters: it fixes port/IP assignment, which BGP
    # tie-breaking observes.
    for participant in controller.topology.participants_in_order():
        participants.append({
            "name": participant.name,
            "asn": participant.asn,
            "ports": len(participant.ports),
            "local_prefixes": [str(p) for p in participant.local_prefixes],
        })
        deny, allow = controller.route_server.export_policy(participant.name)
        if deny or allow is not None:
            participants[-1]["export_policy"] = {
                "deny": list(deny),
                "allow": None if allow is None else list(allow)}
        for direction, clauses in (
                ("out", participant.outbound_clauses()
                 if not participant.is_remote else ()),
                ("in", participant.inbound_clauses())):
            for clause in clauses:
                policies.append({
                    "participant": participant.name,
                    "direction": direction,
                    "clause": clause_to_json(clause)})
    routes = []
    for participant in controller.topology.participants_in_order():
        for entry in controller.route_server.routes_from(participant.name):
            attributes = entry.attributes
            route: Dict[str, Any] = {
                "sender": participant.name,
                "prefix": str(entry.prefix),
                "as_path": list(attributes.as_path.asns),
            }
            if attributes.med:
                route["med"] = attributes.med
            if attributes.local_pref != 100:
                route["local_pref"] = attributes.local_pref
            if attributes.communities:
                route["communities"] = sorted(
                    list(community) for community in attributes.communities)
            routes.append(route)
    ownership = [
        {"prefix": str(prefix), "owner": owner}
        for prefix, owner in controller.ownership.entries()
    ]
    return {
        "version": CONFIG_VERSION,
        "participants": participants,
        "routes": routes,
        "ownership": ownership,
        "policies": policies,
    }


def controller_from_config(document: Dict[str, Any],
                           **controller_kwargs: Any) -> SdxController:
    """Build (but do not start) a controller from a config document."""
    version = document.get("version")
    if version != CONFIG_VERSION:
        raise ConfigError(f"unsupported config version {version!r} "
                          f"(expected {CONFIG_VERSION})")
    controller = SdxController(**controller_kwargs)
    for spec in document.get("participants", ()):
        controller.add_participant(
            spec["name"], spec["asn"], ports=spec.get("ports", 1),
            local_prefixes=[IPv4Prefix(text)
                            for text in spec.get("local_prefixes", ())],
            announce=False)
        export = spec.get("export_policy")
        if export:
            controller.route_server.set_export_policy(
                spec["name"], deny=export.get("deny", ()),
                allow=export.get("allow"))
    for route in document.get("routes", ()):
        controller.announce_route(
            route["sender"], IPv4Prefix(route["prefix"]),
            AsPath(route["as_path"]),
            med=route.get("med", 0),
            local_pref=route.get("local_pref", 100),
            communities=[tuple(community)
                         for community in route.get("communities", ())])
    for entry in document.get("ownership", ()):
        # Re-registering a prefix to the same owner is idempotent (local
        # prefixes were registered by add_participant already); an exact
        # conflict raises, flagging an inconsistent document.
        controller.register_ownership(
            IPv4Prefix(entry["prefix"]), entry["owner"])
    for item in document.get("policies", ()):
        participant = controller.topology.participant(item["participant"])
        policy = clause_to_policy(item["clause"])
        if item["direction"] == "out":
            participant.add_outbound(policy)
        elif item["direction"] == "in":
            participant.add_inbound(policy)
        else:
            raise ConfigError(
                f"policy direction must be 'in' or 'out', "
                f"got {item['direction']!r}")
    return controller


def save_config(controller: SdxController,
                path: Union[str, pathlib.Path]) -> None:
    """Write a controller's configuration to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(export_config(controller), indent=2, sort_keys=True) + "\n")


def load_config(path: Union[str, pathlib.Path],
                **controller_kwargs: Any) -> SdxController:
    """Rebuild a controller from a JSON file written by :func:`save_config`."""
    document = json.loads(pathlib.Path(path).read_text())
    return controller_from_config(document, **controller_kwargs)
