"""Multi-SDX federation: several exchanges stitched by shared participants.

A federation models the deployment *Prelude* warns about: multiple SDX
instances, each with its own route server, fabric, and policy set, glued
together by ASes present at more than one exchange. A packet that
egresses exchange A through a shared participant can re-enter exchange B
as that participant's traffic and be classified again — so locally valid
outbound policies can compose into inter-exchange forwarding loops and
stitched-path blackholes that no single exchange can see.

The subsystem has four layers:

* :mod:`repro.federation.topology` — exchanges, per-exchange presence
  (shared ASes with per-exchange ports), derived inter-exchange transit
  links, and federation-wide prefix origins;
* :mod:`repro.federation.controller` — :class:`FederatedController`, one
  :class:`~repro.core.controller.SdxController` per exchange behind a
  single policy-change/settle surface with federation-aware
  ``statics_mode`` gating;
* :mod:`repro.federation.dataplane` — the cross-fabric driver walking a
  packet through real per-exchange fabrics with loop detection, plus the
  shared hop-state walk both execution arms implement;
* :mod:`repro.federation.checks` — the SDX008 (inter-exchange forwarding
  loop) and SDX009 (stitched-path blackhole) static checks over the
  cross-exchange reachability graph, and :func:`analyze_federation`;

with :mod:`repro.federation.scenario` (seeded, exactly-serialisable
federated scenarios), :mod:`repro.federation.reference` (the naive
federated reference interpreter the fuzzer cross-validates against), and
:mod:`repro.federation.config` (JSON federated configs for
``repro lint-policies``) riding on top.
"""

from repro.federation.checks import (
    DEFAULT_FEDERATION_CHECKS,
    FederationContext,
    InterExchangeLoopCheck,
    StitchedBlackholeCheck,
    analyze_federation,
)
from repro.federation.config import (
    export_federation_config,
    federation_from_config,
    is_federated_config,
    lint_federated_config,
    load_federation_config,
    save_federation_config,
)
from repro.federation.controller import FederatedController
from repro.federation.dataplane import (
    MAX_FEDERATED_HOPS,
    FederatedDataPlane,
    FederatedHop,
    FederatedOutcome,
    walk_federation,
)
from repro.federation.reference import FederatedReferenceInterpreter
from repro.federation.scenario import (
    FEDERATED_SCENARIO_VERSION,
    FederatedAnnouncement,
    FederatedParticipant,
    FederatedPolicy,
    FederatedScenario,
    FederatedTraceStep,
    generate_federated_corpus,
    generate_federated_scenario,
    wrap_scenario,
)
from repro.federation.topology import (
    ExchangePresence,
    FederatedParticipantSpec,
    FederationTopology,
    TransitLink,
)

__all__ = [
    "DEFAULT_FEDERATION_CHECKS",
    "FederationContext",
    "InterExchangeLoopCheck",
    "StitchedBlackholeCheck",
    "analyze_federation",
    "export_federation_config",
    "federation_from_config",
    "is_federated_config",
    "lint_federated_config",
    "load_federation_config",
    "save_federation_config",
    "FederatedController",
    "MAX_FEDERATED_HOPS",
    "FederatedDataPlane",
    "FederatedHop",
    "FederatedOutcome",
    "walk_federation",
    "FederatedReferenceInterpreter",
    "FEDERATED_SCENARIO_VERSION",
    "FederatedAnnouncement",
    "FederatedParticipant",
    "FederatedPolicy",
    "FederatedScenario",
    "FederatedTraceStep",
    "generate_federated_corpus",
    "generate_federated_scenario",
    "wrap_scenario",
    "ExchangePresence",
    "FederatedParticipantSpec",
    "FederationTopology",
    "TransitLink",
]
