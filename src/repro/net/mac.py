"""MAC addresses and the SDX virtual-MAC (VMAC) tag encoding.

The SDX data plane uses the destination MAC address as a forwarding tag:
the route server advertises a *virtual next-hop* IP for each forwarding
equivalence class (FEC), the SDX ARP responder resolves that IP to a
*virtual MAC*, and the participant's border router then stamps every packet
for the FEC with that VMAC (Section 4.2 of the paper).

:func:`vmac_for_fec` implements the tag layout: VMACs live under a reserved
locally-administered OUI so they can never collide with the physical MACs
of participant router ports.
"""

from __future__ import annotations

import functools
import re
from typing import Union

from repro.exceptions import AddressError

_MAX_MAC = 0xFFFFFFFFFFFF
_MAC_TEXT = re.compile(r"^([0-9a-fA-F]{2})(:[0-9a-fA-F]{2}){5}$")

#: Reserved 24-bit OUI for SDX virtual MACs. The locally-administered bit
#: (0x02 in the first octet) is set, so the space cannot collide with
#: globally unique hardware addresses.
VMAC_OUI = 0xA20000

#: How many distinct FEC tags the VMAC space can carry (24 payload bits).
VMAC_CAPACITY = 1 << 24


@functools.total_ordering
class MacAddress:
    """An immutable 48-bit MAC address.

    Accepts colon-separated hex text or a raw integer::

        >>> MacAddress("a2:00:00:00:00:01") == MacAddress((VMAC_OUI << 24) | 1)
        True
    """

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, int, "MacAddress"]):
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, str):
            if not _MAC_TEXT.match(value):
                raise AddressError(f"not a MAC address: {value!r}")
            self._value = int(value.replace(":", ""), 16)
        elif isinstance(value, int):
            if not 0 <= value <= _MAX_MAC:
                raise AddressError(f"MAC integer out of range: {value}")
            self._value = value
        else:
            raise AddressError(f"cannot build MacAddress from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The address as a 48-bit integer."""
        return self._value

    @property
    def oui(self) -> int:
        """The top 24 bits (organisationally unique identifier)."""
        return self._value >> 24

    @property
    def is_virtual(self) -> bool:
        """True if this address lives in the SDX VMAC space."""
        return self.oui == VMAC_OUI

    @property
    def is_broadcast(self) -> bool:
        """True for ff:ff:ff:ff:ff:ff."""
        return self._value == _MAX_MAC

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        raw = f"{self._value:012x}"
        return ":".join(raw[i:i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        if isinstance(other, MacAddress):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)


#: The Ethernet broadcast address.
BROADCAST_MAC = MacAddress(_MAX_MAC)


def vmac_for_fec(fec_id: int) -> MacAddress:
    """The virtual MAC that tags packets belonging to FEC ``fec_id``.

    The FEC identifier occupies the low 24 bits under :data:`VMAC_OUI`.
    """
    if not 0 <= fec_id < VMAC_CAPACITY:
        raise AddressError(f"FEC id out of VMAC range: {fec_id}")
    return MacAddress((VMAC_OUI << 24) | fec_id)


def fec_for_vmac(vmac: MacAddress) -> int:
    """Recover the FEC identifier from a virtual MAC."""
    if not vmac.is_virtual:
        raise AddressError(f"not a virtual MAC: {vmac}")
    return vmac.value & (VMAC_CAPACITY - 1)
