"""Transformation 4: compose all participants into one switch policy.

The paper composes ``(PA'' + PB'' + PC'') >> (PA'' + PB'' + PC'')`` and
then shows (Section 4.3) that almost all of that work is avoidable:

* *Disjointness*: isolated policies match disjoint flow spaces (different
  ingress/virtual ports), so parallel composition degenerates to rule
  concatenation — :func:`stack_disjoint` / :func:`stack_fallback`.
* *Pair pruning*: a stage-1 rule forwarding to virtual port v can only
  interact with stage-2 rules guarded on v, so the sequential composition
  is computed per matching pair — :func:`sequential_compose_indexed`
  indexes stage-2 rules by their port guard instead of trying every pair.
* *Memoization*: each participant's inbound pipeline is compiled once and
  reused for every sender (handled by the compiler's caching layer).

:func:`compose_naive` keeps the unoptimised cross-product path alive for
the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.policy.classifier import (
    Classifier,
    ComposeStats,
    Rule,
    _pullback,
    _cross_rules,
    parallel_compose_many,
    sequential_compose,
)
from repro.policy.headerspace import WILDCARD


def strip_drop_tail(classifier: Classifier) -> List[Rule]:
    """The classifier's rules without a trailing wildcard drop.

    Explicit drops on narrower matches are preserved — only the catch-all
    "nothing matched" tail is removed so another layer can take over.
    """
    rules = list(classifier.rules)
    while rules and rules[-1].is_drop and rules[-1].match.is_wildcard:
        rules.pop()
    return rules


def stack_fallback(layers: Sequence[Classifier]) -> Classifier:
    """Stack priority layers: earlier layers shadow later ones.

    Each layer's catch-all drop tail is removed so unmatched traffic falls
    through to the next layer; a single shared drop terminates the stack.
    This realises the paper's ``if_(matched, policy, default)`` without
    paying a negation-and-compose: within one layer the rules already
    appear before the fallback, so first-match order *is* the conditional.
    """
    rules: List[Rule] = []
    for layer in layers:
        rules.extend(strip_drop_tail(layer))
    rules.append(Rule(WILDCARD, ()))
    return Classifier(rules)


def stack_disjoint(parts: Sequence[Classifier]) -> Classifier:
    """Concatenate classifiers known to cover disjoint flow spaces.

    Sound because isolation (transformation 1) guards every participant's
    rules on ports no other participant's rules can match.
    """
    return stack_fallback(parts)


def sequential_compose_indexed(left: Classifier, right: Classifier,
                               stats: Optional[ComposeStats] = None) -> Classifier:
    """``left >> right`` with stage-2 rules indexed by their port guard.

    Semantically identical to
    :func:`repro.policy.classifier.sequential_compose`; the index merely
    skips (rule, rule) pairs whose port constraints are provably
    incompatible. Left rules that multicast or leave the port unset fall
    back to scanning every right rule.
    """
    if stats is not None:
        stats.sequential_ops += 1
    indexed: Dict[int, List[Tuple[int, Rule]]] = {}
    port_wildcards: List[Tuple[int, Rule]] = []
    for position, rule in enumerate(right.rules):
        port_constraint = rule.match.get("port")
        if port_constraint is None:
            port_wildcards.append((position, rule))
        else:
            indexed.setdefault(port_constraint, []).append((position, rule))

    out: List[Rule] = []
    for rule_l in left.rules:
        if rule_l.is_drop:
            out.append(rule_l)
            continue
        single = rule_l.actions[0] if len(rule_l.actions) == 1 else None
        if single is None or single.output_port is None:
            out.extend(_generic_sequence(rule_l, right, stats))
            continue
        candidates = sorted(
            indexed.get(single.output_port, []) + port_wildcards,
            key=lambda pair: pair[0])
        for _position, rule_r in candidates:
            if stats is not None:
                stats.rule_pairs_examined += 1
            pulled = _pullback(single, rule_r.match)
            if pulled is None:
                continue
            combined = rule_l.match.intersect(pulled)
            if combined is None:
                continue
            out.append(Rule(combined,
                            tuple(single.then(a) for a in rule_r.actions)))
    return Classifier(out)


def _generic_sequence(rule_l: Rule, right: Classifier,
                      stats: Optional[ComposeStats]) -> List[Rule]:
    """The unindexed per-rule sequential composition (multicast path)."""
    per_action: List[List[Rule]] = []
    for action in rule_l.actions:
        rules_a: List[Rule] = []
        for rule_r in right.rules:
            if stats is not None:
                stats.rule_pairs_examined += 1
            pulled = _pullback(action, rule_r.match)
            if pulled is None:
                continue
            combined = rule_l.match.intersect(pulled)
            if combined is None:
                continue
            rules_a.append(Rule(combined,
                                tuple(action.then(a) for a in rule_r.actions)))
        per_action.append(rules_a)
    combined_rules = per_action[0]
    for more in per_action[1:]:
        combined_rules = _cross_rules(combined_rules, more, stats)
    return combined_rules


@dataclass
class CompositionReport:
    """What one composition run did (feeds the Section 4.3 evaluation)."""

    stats: ComposeStats = field(default_factory=ComposeStats)
    stage1_rules: int = 0
    stage2_rules: int = 0
    final_rules: int = 0


def compose_optimized(stage1: Classifier, stage2: Classifier,
                      report: Optional[CompositionReport] = None) -> Classifier:
    """The optimised two-stage composition (index-pruned)."""
    stats = report.stats if report is not None else None
    result = sequential_compose_indexed(stage1, stage2, stats)
    if report is not None:
        report.stage1_rules = len(stage1)
        report.stage2_rules = len(stage2)
        report.final_rules = len(result)
    return result


def compose_naive(out_parts: Sequence[Classifier], in_parts: Sequence[Classifier],
                  report: Optional[CompositionReport] = None) -> Classifier:
    """The unoptimised composition for the ablation benchmark.

    Parallel-composes every participant classifier on each side (the full
    cross product the paper starts from), then runs the unindexed
    sequential composition.
    """
    stats = report.stats if report is not None else None
    stage1 = parallel_compose_many(list(out_parts), stats)
    stage2 = parallel_compose_many(list(in_parts), stats)
    result = sequential_compose(stage1, stage2, stats)
    if report is not None:
        report.stage1_rules = len(stage1)
        report.stage2_rules = len(stage2)
        report.final_rules = len(result)
    return result
