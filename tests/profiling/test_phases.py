"""Tests for phase attribution: self time, inheritance, coverage."""

import pytest

from repro.profiling.phases import (
    PHASE_BY_SPAN,
    UNATTRIBUTED,
    attribute_spans,
    self_times,
)
from repro.telemetry.trace import Span


def make_span(name, span_id, parent_id, start, end, trace_id=1, tags=None):
    """A finished span literal for attribution tests."""
    return Span(name=name, span_id=span_id, parent_id=parent_id,
                trace_id=trace_id, start=start, end=end,
                tags=dict(tags or {}))


class TestSelfTimes:
    def test_parent_excludes_direct_children(self):
        spans = [
            make_span("compile", 1, None, 0.0, 1.0),
            make_span("compile.fec", 2, 1, 0.1, 0.4),
            make_span("compile.composition", 3, 1, 0.4, 0.9),
        ]
        selfs = self_times(spans)
        assert selfs[1] == pytest.approx(0.2)  # 1.0 - 0.3 - 0.5
        assert selfs[2] == pytest.approx(0.3)
        assert selfs[3] == pytest.approx(0.5)

    def test_grandchildren_do_not_double_subtract(self):
        spans = [
            make_span("compile", 1, None, 0.0, 1.0),
            make_span("compile.composition", 2, 1, 0.0, 0.8),
            make_span("inner.helper", 3, 2, 0.0, 0.6),
        ]
        selfs = self_times(spans)
        # The root only loses its direct child's time, not the
        # grandchild's as well.
        assert selfs[1] == pytest.approx(0.2)
        assert selfs[2] == pytest.approx(0.2)
        assert selfs[3] == pytest.approx(0.6)

    def test_negative_self_time_clamps_to_zero(self):
        spans = [
            make_span("outer", 1, None, 0.0, 0.1),
            make_span("inner", 2, 1, 0.0, 0.2),  # timer skew
        ]
        assert self_times(spans)[1] == 0.0

    def test_evicted_parent_does_not_crash(self):
        spans = [make_span("child", 5, 999, 0.0, 0.3)]
        assert self_times(spans) == {5: 0.3}


class TestAttribution:
    def test_mapped_names_land_in_their_phase(self):
        spans = [
            make_span("compile", 1, None, 0.0, 1.0),
            make_span("compile.fec", 2, 1, 0.0, 0.4),
        ]
        report = attribute_spans(spans)
        assert report.phases["mds_fec_grouping"].self_seconds == 0.4
        assert report.phases["compile_overhead"].self_seconds == 0.6

    def test_unmapped_span_inherits_nearest_mapped_ancestor(self):
        spans = [
            make_span("compile", 1, None, 0.0, 1.0),
            make_span("compile.composition", 2, 1, 0.0, 0.8),
            make_span("private.helper", 3, 2, 0.0, 0.5),
        ]
        report = attribute_spans(spans)
        # The helper's self time lands under the composition's phase.
        assert (report.phases["classifier_cross_product"].self_seconds
                == 0.8)
        assert UNATTRIBUTED not in report.phases

    def test_unmapped_root_is_unattributed(self):
        spans = [make_span("mystery", 1, None, 0.0, 0.5)]
        report = attribute_spans(spans)
        assert report.phases[UNATTRIBUTED].self_seconds == 0.5
        assert report.coverage == 0.0

    def test_total_defaults_to_root_durations(self):
        spans = [
            make_span("compile", 1, None, 0.0, 1.0),
            make_span("compile.fec", 2, 1, 0.0, 0.4),
            make_span("recompile", 3, None, 2.0, 2.5, trace_id=3),
        ]
        report = attribute_spans(spans)
        assert report.total_seconds == 1.5
        assert report.coverage == 1.0

    def test_coverage_against_explicit_total(self):
        spans = [make_span("compile", 1, None, 0.0, 0.5)]
        report = attribute_spans(spans, total_seconds=1.0)
        assert report.coverage == 0.5
        assert report.attributed_seconds == 0.5

    def test_memory_tags_aggregate(self):
        spans = [
            make_span("compile", 1, None, 0.0, 1.0,
                      tags={"mem_net_bytes": 100, "mem_peak_bytes": 900}),
            make_span("compile", 2, None, 1.0, 2.0, trace_id=2,
                      tags={"mem_net_bytes": -40, "mem_peak_bytes": 300}),
        ]
        stat = attribute_spans(spans).phases["compile_overhead"]
        assert stat.calls == 2
        assert stat.net_bytes == 60
        assert stat.peak_bytes == 900  # high-water mark, not a sum

    def test_report_dict_and_render(self):
        spans = [
            make_span("compile", 1, None, 0.0, 1.0),
            make_span("unknown-root", 2, None, 1.0, 1.5, trace_id=2),
        ]
        report = attribute_spans(spans)
        document = report.to_dict()
        assert document["span_count"] == 2
        assert document["phases"][0]["phase"] == "compile_overhead"
        text = report.render()
        assert "compile_overhead" in text and "coverage" in text

    def test_every_mapped_phase_is_a_valid_identifier(self):
        # Phase names surface as Prometheus label values and folded
        # frame names; keep them shell- and label-safe.
        for phase in set(PHASE_BY_SPAN.values()):
            assert phase.replace("_", "").isalnum()
