"""Seeded defect injection: every planted defect must be recalled."""

import pytest

from repro.statics import analyze_controller
from repro.workloads.policies import (
    DEFECT_KINDS,
    defect_detected,
    defect_documents,
    generate_policies,
    inject_defects,
    install_assignments,
)
from repro.workloads.topology import generate_ixp

SEEDS = (0, 7, 23)


def seeded_controller(seed):
    ixp = generate_ixp(8, 16, seed=seed)
    controller = ixp.build_controller()
    install_assignments(controller,
                        generate_policies(ixp, seed=seed + 1))
    return controller


class TestInjection:
    def test_covers_all_six_defect_classes(self):
        assert len(DEFECT_KINDS) == 6

    def test_injection_is_deterministic(self):
        first = inject_defects(seeded_controller(3), seed=11)
        second = inject_defects(seeded_controller(3), seed=11)
        assert first == second

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            inject_defects(seeded_controller(0), kinds=("made_up",))

    def test_document_defects_get_consecutive_indices(self):
        defects = inject_defects(seeded_controller(0), seed=5)
        indices = [d.document_index for d in defects if d.document is not None]
        assert indices == list(range(len(indices)))
        assert len(defect_documents(defects)) == len(indices)


class TestRecall:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_injected_defect_is_detected(self, seed):
        controller = seeded_controller(seed)
        defects = inject_defects(controller, seed=seed)
        assert [d.kind for d in defects] == list(DEFECT_KINDS)
        report = analyze_controller(
            controller, raw_policies=defect_documents(defects))
        missed = [d.kind for d in defects if not defect_detected(d, report)]
        assert missed == []

    def test_clean_workload_has_no_errors(self):
        report = analyze_controller(seeded_controller(SEEDS[0]))
        assert [d.describe() for d in report.errors] == []
