"""Tests for the monitored traffic driver (repro.monitoring.driver)."""

import pytest

from repro.monitoring.driver import MonitoredTrafficDriver
from repro.monitoring.stats import fec_label
from repro.net.packet import Packet
from repro.runtime.clock import ManualClock
from repro.workloads.scenarios import ScenarioFlow

from tests.monitoring.conftest import EAST_PREFIX, WEST_PREFIX, make_exchange


def flow(prefix, rate_mbps, *, start=0.0, end=100.0, name="f"):
    packet = Packet(dstip=prefix.first_address + 1, srcip="10.0.0.1",
                    dstport=80, srcport=4000, protocol=6)
    return ScenarioFlow(name=name, source="Sender", packet=packet,
                        dst_prefix=prefix, rate_mbps=rate_mbps,
                        start=start, end=end)


def make_driver(flows, **kwargs):
    sdx = make_exchange()
    runtime = sdx.build_runtime(clock=ManualClock())
    return sdx, MonitoredTrafficDriver(sdx, runtime, flows, **kwargs)


class TestValidation:
    def test_tick_must_be_positive(self):
        with pytest.raises(ValueError):
            make_driver([], tick_seconds=0.0)

    def test_runtime_must_front_the_controller(self):
        sdx = make_exchange()
        other = make_exchange()
        runtime = other.build_runtime(clock=ManualClock())
        with pytest.raises(ValueError):
            MonitoredTrafficDriver(sdx, runtime, [])

    def test_clock_must_be_manual(self):
        sdx = make_exchange()
        runtime = sdx.build_runtime()  # wall-clock MonotonicClock
        with pytest.raises(ValueError):
            MonitoredTrafficDriver(sdx, runtime, [])


class TestRun:
    def test_ticks_and_clock_advance(self):
        sdx, driver = make_driver([flow(EAST_PREFIX, 8.0)])
        assert driver.run(5.0) == 5
        assert driver.clock.now() == 5.0
        assert [record.time for record in driver.history] == [0.0, 1.0, 2.0,
                                                              3.0, 4.0]

    def test_on_tick_observes_each_record(self):
        _sdx, driver = make_driver([flow(EAST_PREFIX, 8.0)])
        seen = []
        driver.run(3.0, on_tick=lambda record: seen.append(record.time))
        assert seen == [0.0, 1.0, 2.0]

    def test_flow_windows_bound_activity(self):
        # Active for the first tick only (start inclusive, end exclusive).
        _sdx, driver = make_driver([flow(EAST_PREFIX, 8.0, start=0.0, end=1.0)])
        driver.run(3.0)
        assert driver.history[0].fec_bytes and not driver.history[1].fec_bytes


class TestGroundTruth:
    def test_fec_rates_match_flow_spec(self):
        sdx, driver = make_driver([flow(EAST_PREFIX, 8.0),
                                   flow(WEST_PREFIX, 2.0, name="g")])
        driver.run(4.0)
        rates = driver.ground_truth_rates(2.0)
        assert rates[fec_label(sdx, EAST_PREFIX)] == pytest.approx(8.0)
        assert rates[fec_label(sdx, WEST_PREFIX)] == pytest.approx(2.0)

    def test_window_is_half_open(self):
        sdx, driver = make_driver([flow(EAST_PREFIX, 8.0, start=0.0, end=1.0)])
        driver.run(3.0)
        east = fec_label(sdx, EAST_PREFIX)
        # (−1, 0] holds the t=0 tick; (0, 1] starts exactly at it and
        # must exclude it.
        assert driver.ground_truth_rates(1.0, until=0.0)[east] == pytest.approx(8.0)
        assert east not in driver.ground_truth_rates(1.0, until=1.0)

    def test_port_rates_follow_deliveries(self):
        sdx, driver = make_driver([flow(EAST_PREFIX, 8.0)])
        driver.run(4.0)
        (east_port,) = sdx.participant("East").participant.switch_ports
        rates = driver.ground_truth_port_rates(2.0)
        assert rates[east_port] == pytest.approx(8.0)

    def test_port_share_normalises(self):
        sdx, driver = make_driver([flow(EAST_PREFIX, 6.0),
                                   flow(WEST_PREFIX, 2.0, name="g")])
        driver.run(4.0)
        (east_port,) = sdx.participant("East").participant.switch_ports
        (west_port,) = sdx.participant("West").participant.switch_ports
        share = driver.port_share((east_port, west_port), window_seconds=2.0)
        assert share == (pytest.approx(0.75), pytest.approx(0.25))

    def test_empty_history_reads_empty(self):
        _sdx, driver = make_driver([])
        assert driver.ground_truth_rates(5.0) == {}
        assert driver.ground_truth_port_rates(5.0) == {}
        assert driver.port_share((1, 2), window_seconds=5.0) == (0.0, 0.0)
