"""Controller-level tests: the update pipeline routed through southbound."""

from repro.core.incremental import FAST_PATH_BASE
from repro.southbound.engine import SouthboundConfig

from tests.core.scenarios import P1, figure1_controller, packet


class TestControllerSouthbound:
    def test_noop_recompile_sends_no_flowmods(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sent = sdx.southbound.stats.mods_sent
        sdx.recompile()
        assert sdx.southbound.stats.mods_sent == sent
        assert sdx.engine.last_delta.is_empty
        assert sdx.engine.last_delta.unchanged == len(sdx.table)

    def test_counters_survive_recompile(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.egress_of("A", packet("11.0.0.1", dstport=22))
        hits = [(rule, sdx.table.packets_matched(rule))
                for rule in sdx.table.rules if sdx.table.packets_matched(rule)]
        assert hits, "the probe packet must hit at least one rule"
        sdx.recompile()
        for rule, count in hits:
            assert sdx.table.packets_matched(rule) == count

    def test_fast_path_flows_through_southbound(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        adds = sdx.southbound.stats.adds_sent
        sdx.withdraw_route("C", P1)
        assert sdx.southbound.stats.adds_sent > adds
        assert sdx.engine.fast_path_rules_live > 0

    def test_background_recompile_reclaims_fast_path_as_deletes(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.withdraw_route("C", P1)
        deletes = sdx.southbound.stats.deletes_sent
        sdx.run_background_recompilation()
        assert sdx.southbound.stats.deletes_sent > deletes
        assert not any(rule.priority > FAST_PATH_BASE
                       for rule in sdx.table.rules)
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=22)) == "B"

    def test_summary_reports_flowmod_counters(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        summary = sdx.summary()
        assert summary["flowmods_sent"] > 0
        assert "flowmods_coalesced" in summary

    def test_two_phase_swap_never_misroutes(self):
        """Replay a corpus at every single-mod intermediate state of the
        background swap; each packet must follow the old or the new path."""
        sdx, a, b, c, e = figure1_controller(
            southbound_config=SouthboundConfig(max_batch_size=1))
        sdx.start()
        corpus = [
            packet("11.0.0.1", dstport=80),
            packet("11.0.0.1", dstport=443),
            packet("11.0.0.1", dstport=22),
            packet("13.0.0.1", dstport=80),
            packet("14.0.0.1", dstport=443),
            packet("15.0.0.1", dstport=22),
        ]
        sdx.withdraw_route("C", P1)
        before = [sdx.egress_of("A", p) for p in corpus]
        observed = {index: set() for index in range(len(corpus))}

        def check(batch):
            for index, p in enumerate(corpus):
                observed[index].add(sdx.egress_of("A", p))

        sdx.southbound.add_observer(check)
        sdx.run_background_recompilation()
        after = [sdx.egress_of("A", p) for p in corpus]
        for index in range(len(corpus)):
            allowed = {before[index], after[index]}
            assert observed[index] <= allowed, (
                f"packet {corpus[index]} took a path outside {allowed}: "
                f"{observed[index]}")
