"""Tests for the synthetic IXP generator: determinism, heavy tail,
category mix, and controller loading."""

import pytest

from repro.workloads.routing import PrefixPool, synthesize_as_path
from repro.workloads.topology import (
    CATEGORY_FRACTIONS,
    MULTI_PORT_FRACTION,
    SyntheticIxp,
    generate_ixp,
)


class TestPrefixPool:
    def test_distinct_prefixes(self):
        pool = PrefixPool(seed=1)
        taken = pool.take(5_000)
        assert len(set(taken)) == 5_000

    def test_non_overlapping(self):
        taken = PrefixPool(seed=2).take(2_000)
        by_16 = {}
        for prefix in taken:
            key = prefix.network_int >> 16
            by_16.setdefault(key, []).append(prefix)
        for prefixes in by_16.values():
            for i, left in enumerate(prefixes):
                for right in prefixes[i + 1:]:
                    assert not left.overlaps(right)

    def test_requested_lengths_only(self):
        taken = PrefixPool(lengths=(24,), seed=0).take(100)
        assert all(prefix.length == 24 for prefix in taken)

    def test_avoids_reserved_space(self):
        taken = PrefixPool(seed=0).take(10_000)
        for prefix in taken:
            first_octet = prefix.network_int >> 24
            assert first_octet not in (10, 172, 192)

    def test_rejects_silly_lengths(self):
        with pytest.raises(ValueError):
            PrefixPool(lengths=(4,))

    def test_deterministic(self):
        assert PrefixPool(seed=7).take(100) == PrefixPool(seed=7).take(100)


class TestSynthesizeAsPath:
    def test_starts_and_ends_correctly(self):
        import random
        path = synthesize_as_path(1234, 65001, random.Random(0))
        assert path.neighbour_asn == 65001
        assert path.origin_asn == 1234

    def test_min_length_respected(self):
        import random
        path = synthesize_as_path(1234, 65001, random.Random(0), min_length=4)
        assert path.length >= 4

    def test_same_origin_as_first_hop(self):
        import random
        path = synthesize_as_path(65001, 65001, random.Random(0))
        assert path.origin_asn == 65001


class TestGenerateIxp:
    def test_deterministic(self):
        first = generate_ixp(50, 1_000, seed=3)
        second = generate_ixp(50, 1_000, seed=3)
        assert first.announcements == second.announcements

    def test_all_prefixes_allocated(self):
        ixp = generate_ixp(50, 1_000, seed=0)
        assert len(ixp.all_prefixes()) == 1_000
        total_owned = sum(len(spec.prefixes) for spec in ixp.participants)
        assert total_owned == 1_000

    def test_heavy_tailed_ownership(self):
        """Top ~1% of ASes should own a large share of the table."""
        ixp = generate_ixp(200, 10_000, seed=0)
        sizes = sorted((len(s.prefixes) for s in ixp.participants), reverse=True)
        top_two = sum(sizes[:2])
        assert top_two > 0.35 * 10_000

    def test_paper_calibration_at_amsix_scale(self):
        """Section 6.1's AMS-IX numbers: ~1% of ASes announce more than
        50% of prefixes, and 90% of ASes combined announce little."""
        ixp = generate_ixp(600, 20_000, seed=3)
        sizes = sorted((len(s.prefixes) for s in ixp.participants), reverse=True)
        top_one_percent = sum(sizes[:6])
        assert top_one_percent > 0.45 * 20_000
        bottom_ninety = sum(sizes[60:])
        assert bottom_ninety < 0.15 * 20_000

    def test_category_mix_roughly_matches(self):
        ixp = generate_ixp(400, 2_000, seed=1)
        counts = {"eyeball": 0, "transit": 0, "content": 0}
        for spec in ixp.participants:
            counts[spec.category] += 1
        for category, fraction in CATEGORY_FRACTIONS.items():
            assert abs(counts[category] / 400 - fraction) < 0.08

    def test_multi_port_fraction(self):
        ixp = generate_ixp(400, 2_000, seed=1)
        multi = sum(1 for spec in ixp.participants if spec.ports == 2)
        assert abs(multi / 400 - MULTI_PORT_FRACTION) < 0.06

    def test_transit_cover_routes_create_multihoming(self):
        ixp = generate_ixp(100, 2_000, seed=0, transit_cover_fraction=0.5)
        announcers = {}
        for name, prefix, _path in ixp.announcements:
            announcers.setdefault(prefix, set()).add(name)
        multihomed = sum(1 for names in announcers.values() if len(names) > 1)
        assert multihomed > 0.2 * 2_000

    def test_zero_cover_fraction(self):
        ixp = generate_ixp(20, 200, seed=0, transit_cover_fraction=0.0)
        assert len(ixp.announcements) == 200

    def test_rejects_tiny_ixp(self):
        with pytest.raises(ValueError):
            generate_ixp(1, 100)

    def test_helpers(self):
        ixp = generate_ixp(20, 200, seed=0)
        spec = ixp.participants[0]
        assert ixp.by_name(spec.name) is spec
        with pytest.raises(KeyError):
            ixp.by_name("nope")
        top = ixp.top_by_prefixes(3)
        assert len(top) == 3
        assert len(top[0].prefixes) >= len(top[2].prefixes)

    def test_build_controller_loads_routes(self):
        ixp = generate_ixp(20, 200, seed=0)
        controller = ixp.build_controller()
        assert len(controller.route_server.all_prefixes()) == 200
        result = controller.start()
        assert result.flow_rule_count > 0
