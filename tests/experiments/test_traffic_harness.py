"""Tests for the traffic simulator and the per-figure experiment runners
(run at miniature scale — the benchmarks run them at full scale)."""

import pytest

from repro.experiments.harness import (
    run_compilation_sweep,
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_fig9,
    run_fig10,
    run_table1,
)
from repro.experiments.traffic import DROPPED, FlowSpec, TimedAction, TrafficSimulation
from repro.net.packet import Packet

from tests.core.scenarios import figure1_controller


class TestTrafficSimulation:
    def make(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        flows = [
            FlowSpec(name="web", source="A",
                     packet=Packet(dstip="11.0.0.1", dstport=80,
                                   srcip="10.0.0.1", protocol=17)),
            FlowSpec(name="ssh", source="A",
                     packet=Packet(dstip="11.0.0.1", dstport=22,
                                   srcip="10.0.0.1", protocol=17)),
        ]
        return sdx, flows

    def test_series_track_egress(self):
        sdx, flows = self.make()
        simulation = TrafficSimulation(sdx, flows)
        series = simulation.run(5.0)
        assert series["B"].ys() == [1.0] * 5   # web flow via policy
        assert series["C"].ys() == [1.0] * 5   # default route

    def test_timed_action_fires_once(self):
        sdx, flows = self.make()
        fired = []
        action = TimedAction(time=2.0, label="probe",
                             apply=lambda controller: fired.append(1))
        simulation = TrafficSimulation(sdx, flows, [action])
        simulation.run(5.0)
        assert fired == [1]
        assert simulation.event_log[0][1] == "probe"

    def test_flow_activity_window(self):
        sdx, flows = self.make()
        flows[0].start = 2.0
        flows[0].end = 4.0
        series = TrafficSimulation(sdx, [flows[0]]).run(5.0)
        assert series["B"].ys() == [0.0, 0.0, 1.0, 1.0, 0.0]

    def test_dropped_traffic_labelled(self):
        sdx, _ = self.make()
        flow = FlowSpec(name="void", source="A",
                        packet=Packet(dstip="99.0.0.1", dstport=80,
                                      srcip="10.0.0.1", protocol=17))
        series = TrafficSimulation(sdx, [flow]).run(2.0)
        assert series[DROPPED].ys() == [1.0, 1.0]

    def test_requires_dataplane(self):
        sdx, *_ = figure1_controller(with_dataplane=False)
        sdx.start()
        with pytest.raises(ValueError):
            TrafficSimulation(sdx, [])


class TestFigureRunners:
    def test_fig5a_shape(self):
        """Web traffic moves to B at the policy event and back to A at the
        withdrawal — the Figure 5a shape."""
        series, events = run_fig5a(time_scale=0.02)
        assert [label for _t, label in events] == [
            "application-specific peering policy", "route withdrawal"]
        a_ys, b_ys = series["A"].ys(), series["B"].ys()
        assert a_ys[0] == 3.0 and b_ys[0] == 0.0      # all via A initially
        middle = len(a_ys) // 2
        assert a_ys[middle] == 2.0 and b_ys[middle] == 1.0  # web via B
        assert a_ys[-1] == 3.0 and b_ys[-1] == 0.0    # withdrawal restores

    def test_fig5b_shape(self):
        """Traffic splits across instances after the balancer installs."""
        series, events = run_fig5b(time_scale=0.05)
        one = series["AWS instance #1"].ys()
        two = series["AWS instance #2"].ys()
        assert one[0] == 2.0 and two[0] == 0.0
        assert one[-1] == 1.0 and two[-1] == 1.0

    def test_table1_rows(self):
        rows = run_table1(scale=0.0005)
        assert [row.profile.name for row in rows] == ["AMS-IX", "DE-CIX", "LINX"]
        for row in rows:
            scaled = row.profile.scaled(0.0005)
            assert row.measured_updates == scaled.bgp_updates
            assert abs(row.measured_fraction_updated
                       - row.profile.fraction_prefixes_updated) < 0.03

    def test_fig6_sublinear_and_ordered(self):
        series_list = run_fig6(participant_counts=(25, 50),
                               prefix_counts=(500, 1_000, 2_000),
                               total_prefixes=2_000)
        small, large = series_list
        # More participants -> more groups at every x.
        for (x1, y1), (x2, y2) in zip(small.points, large.points):
            assert y2 >= y1
        # Sub-linear: groups grow slower than prefixes.
        first, last = large.points[0], large.points[-1]
        assert last[1] / first[1] < last[0] / first[0]

    def test_compilation_sweep_rules_grow_with_groups(self):
        points = run_compilation_sweep(
            participant_counts=(80,), prefix_counts=(300, 3_000))
        assert points[1].prefix_groups > points[0].prefix_groups
        assert points[1].flow_rules > points[0].flow_rules
        assert all(point.seconds > 0 for point in points)

    def test_fig9_linear_in_burst(self):
        series_list = run_fig9(burst_sizes=(1, 4, 8),
                               participant_counts=(30,), prefixes=300)
        ys = series_list[0].ys()
        assert ys[0] < ys[1] < ys[2]

    def test_fig10_sub_second(self):
        cdfs = run_fig10(updates=20, participant_counts=(30,), prefixes=300)
        cdf = cdfs[30]
        assert cdf.quantile(0.9) < 1.0  # sub-second, as in the paper
