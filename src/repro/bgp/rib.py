"""Routing information bases: prefix-indexed route storage.

:class:`PrefixTrie` is the core container. It stores one value per exact
prefix and answers longest-prefix-match queries in at most 33 probes by
keeping one hash map per prefix length — the classic flat LPM layout,
chosen over a pointer-chasing binary trie because the SDX workloads insert
and look up hundreds of thousands of prefixes and Python pointer chasing
dominates otherwise.

On top of it sit :class:`AdjRibIn` (per-peer inbound routes, fed by UPDATE
messages) and :class:`RibView` (the read-only, filterable view the SDX
policy API exposes to participants as ``RIB.filter('as_path', ...)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generic, Iterable, Iterator, List, Optional, Tuple, TypeVar, Union

from repro.bgp.asn import AsPathPattern
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.exceptions import BgpError
from repro.net.addresses import IPv4Address, IPv4Prefix

ValueT = TypeVar("ValueT")


class PrefixTrie(Generic[ValueT]):
    """A prefix-keyed map with longest-prefix-match lookup.

    Exact operations (:meth:`insert`, :meth:`remove`, :meth:`exact`) are
    O(1); :meth:`longest_match` probes each populated prefix length once,
    longest first.
    """

    def __init__(self) -> None:
        # One {masked_network_int: (prefix, value)} map per prefix length.
        self._by_length: Dict[int, Dict[int, Tuple[IPv4Prefix, ValueT]]] = {}
        self._size = 0

    def insert(self, prefix: IPv4Prefix, value: ValueT) -> None:
        """Store ``value`` under ``prefix``, replacing any previous value."""
        table = self._by_length.setdefault(prefix.length, {})
        if prefix.network_int not in table:
            self._size += 1
        table[prefix.network_int] = (prefix, value)

    def remove(self, prefix: IPv4Prefix) -> Optional[ValueT]:
        """Remove ``prefix``, returning its value (``None`` if absent)."""
        table = self._by_length.get(prefix.length)
        if table is None:
            return None
        entry = table.pop(prefix.network_int, None)
        if entry is None:
            return None
        if not table:
            del self._by_length[prefix.length]
        self._size -= 1
        return entry[1]

    def exact(self, prefix: IPv4Prefix) -> Optional[ValueT]:
        """The value stored under exactly ``prefix``, if any."""
        table = self._by_length.get(prefix.length)
        if table is None:
            return None
        entry = table.get(prefix.network_int)
        return entry[1] if entry is not None else None

    def __contains__(self, prefix: IPv4Prefix) -> bool:
        table = self._by_length.get(prefix.length)
        return table is not None and prefix.network_int in table

    def longest_match(self,
                      address: Union[IPv4Address, str, int]
                      ) -> Optional[Tuple[IPv4Prefix, ValueT]]:
        """The most-specific stored prefix containing ``address``."""
        value = int(IPv4Address(address))
        for length in sorted(self._by_length, reverse=True):
            mask = IPv4Prefix._mask_for(length)
            entry = self._by_length[length].get(value & mask)
            if entry is not None:
                return entry
        return None

    def covering(self, prefix: IPv4Prefix) -> List[Tuple[IPv4Prefix, ValueT]]:
        """Every stored prefix that contains ``prefix``, most specific first."""
        found: List[Tuple[IPv4Prefix, ValueT]] = []
        for length in sorted(self._by_length, reverse=True):
            if length > prefix.length:
                continue
            mask = IPv4Prefix._mask_for(length)
            entry = self._by_length[length].get(prefix.network_int & mask)
            if entry is not None:
                found.append(entry)
        return found

    def covered_by(self, prefix: IPv4Prefix) -> List[Tuple[IPv4Prefix, ValueT]]:
        """Every stored prefix contained in ``prefix`` (including itself)."""
        return [
            (stored, value)
            for stored, value in self.items()
            if prefix.contains_prefix(stored)
        ]

    def items(self) -> Iterator[Tuple[IPv4Prefix, ValueT]]:
        """Iterate (prefix, value) pairs in no particular order."""
        for table in self._by_length.values():
            yield from table.values()

    def __iter__(self) -> Iterator[IPv4Prefix]:
        for table in self._by_length.values():
            for prefix, _value in table.values():
                yield prefix

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"PrefixTrie({self._size} prefixes)"


@dataclass(frozen=True)
class RouteEntry:
    """One usable route: a prefix, its attributes, and who taught it to us."""

    prefix: IPv4Prefix
    attributes: RouteAttributes
    learned_from: str

    def __repr__(self) -> str:
        return (f"RouteEntry({self.prefix} via {self.attributes.next_hop} "
                f"from {self.learned_from})")


class AdjRibIn:
    """The inbound RIB for one peering session.

    Holds the latest route per prefix announced by one peer, applying
    UPDATE messages and reporting which prefixes changed.
    """

    def __init__(self, peer: str):
        self.peer = peer
        self._routes: Dict[IPv4Prefix, RouteEntry] = {}

    def apply(self, update: Update) -> List[IPv4Prefix]:
        """Apply one update; returns prefixes whose entry actually changed."""
        if update.sender != self.peer:
            raise BgpError(
                f"update from {update.sender!r} applied to Adj-RIB-In of {self.peer!r}")
        changed: List[IPv4Prefix] = []
        for withdrawal in update.withdrawals:
            if self._routes.pop(withdrawal.prefix, None) is not None:
                changed.append(withdrawal.prefix)
        for announcement in update.announcements:
            entry = RouteEntry(announcement.prefix, announcement.attributes, self.peer)
            if self._routes.get(announcement.prefix) != entry:
                self._routes[announcement.prefix] = entry
                if announcement.prefix not in changed:
                    changed.append(announcement.prefix)
        return changed

    def route(self, prefix: IPv4Prefix) -> Optional[RouteEntry]:
        """The current route for ``prefix``, if announced."""
        return self._routes.get(prefix)

    def prefixes(self) -> Iterable[IPv4Prefix]:
        """Every prefix this peer currently announces."""
        return self._routes.keys()

    def routes(self) -> Iterable[RouteEntry]:
        """Every current route from this peer."""
        return self._routes.values()

    def __len__(self) -> int:
        return len(self._routes)

    def __repr__(self) -> str:
        return f"AdjRibIn(peer={self.peer!r}, {len(self)} routes)"


class RibView:
    """A read-only, filterable view over a set of routes.

    This is the object the SDX policy API hands to participants so they
    can group traffic by BGP attributes (Section 3.2)::

        youtube_prefixes = rib.filter("as_path", r".*43515$")
    """

    def __init__(self, routes: Dict[IPv4Prefix, RouteEntry]):
        self._routes = routes

    def route(self, prefix: IPv4Prefix) -> Optional[RouteEntry]:
        """The route for ``prefix``, if present."""
        return self._routes.get(prefix)

    def prefixes(self) -> Tuple[IPv4Prefix, ...]:
        """Every prefix in the view, sorted for determinism."""
        return tuple(sorted(self._routes))

    def routes(self) -> Tuple[RouteEntry, ...]:
        """Every route in the view, sorted by prefix."""
        return tuple(self._routes[prefix] for prefix in sorted(self._routes))

    def filter(self, attribute: str, pattern: str) -> Tuple[IPv4Prefix, ...]:
        """Prefixes whose route matches a regular expression on an attribute.

        Supported attributes: ``as_path`` (space-separated path text) and
        ``next_hop`` (dotted quad).
        """
        if attribute == "as_path":
            matcher = AsPathPattern(pattern)
            return tuple(sorted(
                prefix for prefix, entry in self._routes.items()
                if matcher.matches(entry.attributes.as_path)))
        if attribute == "next_hop":
            compiled = AsPathPattern(pattern)  # plain regex over text
            return tuple(sorted(
                prefix for prefix, entry in self._routes.items()
                if compiled._pattern.search(str(entry.attributes.next_hop))))
        raise BgpError(f"unsupported RIB filter attribute {attribute!r}")

    def originated_by(self, asn: int) -> Tuple[IPv4Prefix, ...]:
        """Prefixes whose AS path originates at ``asn``."""
        return tuple(sorted(
            prefix for prefix, entry in self._routes.items()
            if entry.attributes.as_path.asns
            and entry.attributes.as_path.origin_asn == asn))

    def __len__(self) -> int:
        return len(self._routes)

    def __repr__(self) -> str:
        return f"RibView({len(self)} routes)"
