"""The differential oracle end-to-end: clean runs, a deliberately
injected incremental-engine bug caught + shrunk + replayed from its
artifact — the subsystem's acceptance test.
"""

import pytest

from repro.core.incremental import IncrementalEngine
from repro.verification.artifact import FailureArtifact, replay_artifact
from repro.verification.corpus import generate_corpus
from repro.verification.invariants import SwapMonitor, check_all
from repro.verification.oracle import DifferentialOracle
from repro.verification.scenario import generate_scenario
from repro.verification.shrink import shrink_scenario

#: A seed whose scenario diverges at step 0 once the fast path is broken
#: (keeps the acceptance test fast); see test_injected_bug_is_caught.
BUGGY_SEED = 3


def small_oracle(scenario, **kwargs):
    return DifferentialOracle(
        scenario, generate_corpus(scenario, size=6), **kwargs)


def break_fast_path(monkeypatch):
    """Disable the incremental engine's rule patching without marking the
    controller dirty — updates then silently leave stale rules installed,
    exactly the class of bug the oracle exists to catch."""
    monkeypatch.setattr(IncrementalEngine, "_fast_path_for_prefix",
                        lambda self, prefix, views=None: 0)


class TestCleanRuns:
    def test_no_false_positives(self):
        scenario = generate_scenario(0, steps=8)
        assert small_oracle(scenario).run() is None

    def test_counts_work(self):
        scenario = generate_scenario(0, steps=8)
        oracle = small_oracle(scenario)
        assert oracle.run() is None
        assert oracle.steps_executed == 8
        assert oracle.comparisons > 0

    def test_invariants_clean_on_scenario_controller(self):
        scenario = generate_scenario(2, steps=4)
        controller = scenario.build_controller()
        assert check_all(controller, generate_corpus(scenario, size=6)) == []

    def test_swap_monitor_clean_on_healthy_swap(self):
        scenario = generate_scenario(2, steps=4)
        controller = scenario.build_controller()
        for step in scenario.trace:
            controller.submit_update(scenario.step_update(step))
        probes = generate_corpus(scenario, size=4)[:8]
        with SwapMonitor(controller, probes) as monitor:
            controller.run_background_recompilation()
        assert monitor.violations() == []
        assert monitor.intermediate, "swap applied no batches to observe"


class TestInjectedBug:
    def test_injected_bug_is_caught(self, monkeypatch):
        break_fast_path(monkeypatch)
        scenario = generate_scenario(BUGGY_SEED, steps=12)
        failure = small_oracle(scenario, recompile_every=100).run()
        assert failure is not None
        assert failure.kind == "incremental-vs-reference"
        assert failure.step == 0

    def test_shrinks_to_minimal_failing_trace(self, monkeypatch):
        break_fast_path(monkeypatch)
        scenario = generate_scenario(BUGGY_SEED, steps=12)

        def runner(candidate):
            return small_oracle(candidate, recompile_every=100).run()

        failure = runner(scenario)
        shrunk, final_failure, runs = shrink_scenario(
            scenario, failure, runner=runner)
        assert len(shrunk.trace) == 1
        assert final_failure.kind == "incremental-vs-reference"
        assert runs >= 1
        # Minimality: the shrunk trace still fails, so no further
        # one-step removal can succeed (the empty trace is the base
        # state, which even the broken engine gets right).
        assert runner(shrunk) is not None

    def test_artifact_replays_to_same_failure(self, tmp_path, monkeypatch):
        break_fast_path(monkeypatch)
        scenario = generate_scenario(BUGGY_SEED, steps=12)

        def runner(candidate):
            return small_oracle(candidate, recompile_every=100).run()

        shrunk, failure, _runs = shrink_scenario(scenario, runner=runner)
        artifact = FailureArtifact(
            scenario=shrunk, kind=failure.kind, step=failure.step,
            detail=failure.detail, original_trace_length=len(scenario.trace))
        path = artifact.save(tmp_path)
        loaded = FailureArtifact.load(path)
        assert loaded == artifact

        replayed = replay_artifact(path)
        assert replayed is not None
        assert replayed.kind == failure.kind
        assert replayed.step == failure.step

    def test_artifact_clean_once_bug_is_fixed(self, tmp_path):
        """The same artifact on an unpatched tree replays clean — the
        fix-verification workflow ``repro fuzz --replay`` automates."""
        with pytest.MonkeyPatch.context() as patcher:
            break_fast_path(patcher)
            scenario = generate_scenario(BUGGY_SEED, steps=12)
            shrunk, failure, _runs = shrink_scenario(
                scenario,
                runner=lambda s: small_oracle(s, recompile_every=100).run())
            path = FailureArtifact(
                scenario=shrunk, kind=failure.kind, step=failure.step,
                detail=failure.detail,
                original_trace_length=len(scenario.trace)).save(tmp_path)
        assert replay_artifact(path) is None


class TestShrinkContract:
    def test_refuses_passing_scenario(self):
        scenario = generate_scenario(0, steps=4)
        with pytest.raises(ValueError):
            shrink_scenario(
                scenario,
                runner=lambda s: small_oracle(s).run())

    def test_run_budget_respected(self, monkeypatch):
        break_fast_path(monkeypatch)
        scenario = generate_scenario(BUGGY_SEED, steps=12)
        calls = []

        def runner(candidate):
            calls.append(len(candidate.trace))
            return small_oracle(candidate, recompile_every=100).run()

        _shrunk, _failure, runs = shrink_scenario(
            scenario, runner=runner, max_runs=3)
        assert runs <= 3
        assert len(calls) == runs
