"""End-to-end telemetry: one BGP burst must yield a connected span tree
and nonzero counters for every pipeline stage."""

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import fwd, match


def _started_controller() -> SdxController:
    controller = SdxController.build({"A": 100, "B": 200, "C": 300})
    controller.announce_route("B", IPv4Prefix("10.0.0.0/24"), AsPath([200]))
    controller.participant("A").add_outbound(match(dstport=80) >> fwd("B"))
    controller.start()
    return controller


def _span_names(node, out=None):
    if out is None:
        out = []
    out.append(node["name"])
    for child in node["children"]:
        _span_names(child, out)
    return out


class TestSpanTreeConnectivity:
    def test_one_update_forms_one_connected_tree(self):
        controller = _started_controller()
        controller.telemetry.tracer.clear()
        controller.announce_route(
            "C", IPv4Prefix("10.0.0.0/24"), AsPath([300, 400]))
        roots = controller.telemetry.tracer.span_tree()
        assert len(roots) == 1, "one BGP burst must produce one trace"
        root = roots[0]
        assert root["name"] == "bgp.ingest"
        names = _span_names(root)
        # Every stage of the update path appears in the single tree:
        # ingest -> decision, and ingest -> controller -> fast path ->
        # VNH assignment -> compile -> southbound -> flowtable apply.
        for stage in ("bgp.decision", "controller.update", "fastpath",
                      "fastpath.prefix", "vnh.assign", "compile.fastpath",
                      "southbound.push", "southbound.apply",
                      "flowtable.apply"):
            assert stage in names, f"missing span {stage!r}"
        # All spans carry the root's trace id.
        spans = controller.telemetry.tracer.finished()
        assert len({span.trace_id for span in spans}) == 1

    def test_tree_survives_json_export(self):
        controller = _started_controller()
        controller.telemetry.tracer.clear()
        controller.announce_route(
            "C", IPv4Prefix("10.0.0.0/24"), AsPath([300, 400]))
        snapshot = controller.telemetry.snapshot()
        (root,) = snapshot["spans"]
        assert root["name"] == "bgp.ingest"
        assert _span_names(root).count("flowtable.apply") >= 1

    def test_start_produces_compile_stage_spans(self):
        controller = _started_controller()
        names = []
        for root in controller.telemetry.tracer.span_tree():
            _span_names(root, names)
        for stage in ("controller.start", "compile", "compile.fec",
                      "compile.vnh", "compile.composition", "install_full",
                      "southbound.sync"):
            assert stage in names


class TestStageCounters:
    def test_every_stage_counts_activity(self):
        controller = _started_controller()
        controller.announce_route(
            "C", IPv4Prefix("10.0.0.0/24"), AsPath([300, 400]))
        controller.run_background_recompilation()
        registry = controller.telemetry.registry

        def value(name, **labels):
            metric = registry.get(name, **labels)
            assert metric is not None, f"metric {name!r} not registered"
            return metric.value

        assert value("sdx_bgp_updates_total") > 0
        assert value("sdx_bgp_announcements_total") > 0
        assert value("sdx_bgp_best_route_changes_total") > 0
        assert value("sdx_compile_total") > 0
        assert value("sdx_vnh_allocated_total") > 0
        assert value("sdx_vnh_ephemeral_total") > 0
        assert value("sdx_fastpath_invocations_total") > 0
        assert value("sdx_recompile_total") > 0
        assert value("sdx_southbound_flowmods_total", op="add") > 0
        assert value("sdx_southbound_syncs_total") > 0
        assert value("sdx_flowtable_mods_total", op="add") > 0
        assert value("sdx_flowtable_rules") > 0
        assert value("sdx_trace_spans_total") > 0
        # Histograms saw samples too.
        assert registry.get("sdx_compile_seconds").count > 0
        assert registry.get("sdx_fastpath_seconds").count > 0
        assert registry.get("sdx_southbound_apply_seconds").count > 0

    def test_controllers_do_not_share_registries(self):
        first = _started_controller()
        before = first.telemetry.registry.get("sdx_bgp_updates_total").value
        second = _started_controller()
        second.announce_route(
            "C", IPv4Prefix("10.0.0.0/24"), AsPath([300, 400]))
        assert (first.telemetry.registry.get("sdx_bgp_updates_total").value
                == before)
        assert second.telemetry.registry is not first.telemetry.registry

    def test_flowtable_miss_loss_accounting(self):
        # A started controller installs catch-all defaults, so misses can
        # only happen on a table without them: use a bare bound table.
        from repro.dataplane.flowtable import FlowTable
        from repro.net.packet import Packet
        from repro.telemetry import Telemetry
        telemetry = Telemetry()
        table = FlowTable()
        table.bind_telemetry(telemetry)
        table.process(Packet(port=999))
        losses = telemetry.registry.losses()
        assert losses["sdx_flowtable_misses_total"] == 1

    def test_summary_still_reports_southbound_numbers(self):
        controller = _started_controller()
        summary = controller.summary()
        assert summary["flowmods_sent"] > 0
        assert summary["flowmods_sent"] == controller.southbound.stats.mods_sent


class TestTracingOverheadPath:
    def test_disabled_tracer_skips_span_recording(self):
        controller = _started_controller()
        controller.telemetry.tracer.clear()
        controller.telemetry.tracer.enabled = False
        controller.announce_route(
            "C", IPv4Prefix("10.0.0.0/24"), AsPath([300, 400]))
        assert controller.telemetry.tracer.finished() == ()
        # Counters still work with tracing off.
        assert (controller.telemetry.registry
                .get("sdx_fastpath_invocations_total").value > 0)
