"""Tests for the cadenced monitor (repro.monitoring.loop)."""

import pytest

from repro.monitoring.events import MonitoringEvent
from repro.monitoring.loop import DataPlaneMonitor


class Recorder:
    """A detector stub that returns a canned event per sample."""

    def __init__(self):
        self.samples = []

    def observe(self, sample):
        self.samples.append(sample)
        return [MonitoringEvent(sampled_at=sample.sampled_at)]


class TestCadence:
    def test_cadence_validation(self, sdx):
        with pytest.raises(ValueError):
            DataPlaneMonitor(sdx, cadence_seconds=0.0)

    def test_first_poll_samples_immediately(self, sdx):
        monitor = DataPlaneMonitor(sdx, cadence_seconds=2.0)
        assert monitor.due(0.0)
        monitor.poll(0.0)
        assert monitor.last_sample is not None
        assert monitor.last_sample.sampled_at == 0.0

    def test_polls_inside_the_interval_are_noops(self, sdx):
        recorder = Recorder()
        monitor = DataPlaneMonitor(sdx, cadence_seconds=2.0,
                                   detectors=[recorder])
        monitor.poll(0.0)
        assert not monitor.due(1.0)
        assert monitor.poll(1.0) == []
        assert monitor.poll(1.9) == []
        assert len(recorder.samples) == 1  # only the t=0 sample
        assert monitor.last_sample.sampled_at == 0.0

    def test_next_sample_on_cadence(self, sdx):
        monitor = DataPlaneMonitor(sdx, cadence_seconds=2.0)
        monitor.poll(0.0)
        assert monitor.due(2.0)
        monitor.poll(2.0)
        assert monitor.last_sample.sampled_at == 2.0
        assert monitor.last_sample.interval == 2.0


class TestDetectorFanout:
    def test_every_detector_sees_each_sample(self, sdx):
        first, second = Recorder(), Recorder()
        monitor = DataPlaneMonitor(sdx, detectors=[first])
        monitor.add_detector(second)
        events = monitor.poll(0.0)
        assert len(events) == 2
        assert first.samples == second.samples == [monitor.last_sample]

    def test_events_counted_in_telemetry(self, sdx):
        monitor = DataPlaneMonitor(sdx, detectors=[Recorder()])
        monitor.poll(0.0)
        monitor.poll(1.0)
        counter = sdx.telemetry.registry.get("sdx_dataplane_events_total")
        assert counter.value == 2

    def test_force_sample_skips_detectors(self, sdx):
        recorder = Recorder()
        monitor = DataPlaneMonitor(sdx, cadence_seconds=5.0,
                                   detectors=[recorder])
        monitor.poll(0.0)
        sample = monitor.force_sample(1.0)
        assert monitor.last_sample is sample
        assert sample.sampled_at == 1.0
        # Detectors did not run on the forced sample...
        assert len(recorder.samples) == 1
        # ...and no events were booked for it.
        counter = sdx.telemetry.registry.get("sdx_dataplane_events_total")
        assert counter.value == 1

    def test_repr_names_cadence_and_detectors(self, sdx):
        monitor = DataPlaneMonitor(sdx, cadence_seconds=2.5,
                                   detectors=[Recorder()])
        assert "2.5s" in repr(monitor)
        assert "1 detectors" in repr(monitor)
