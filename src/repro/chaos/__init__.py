"""Fault injection for the BGP session lifecycle (``repro soak --chaos``).

The PR-3 fuzzer proves the incremental compiler equals a full
recompilation on *clean* traces; this package proves the same pipeline
— and the PR-4 control-plane runtime in front of it — survives the
traces operators actually see: sessions failing mid-burst, flap storms
with damping holds, correlated multi-peer outages, wedged routes, and
resets racing the southbound two-phase swap.

Faults are data (:class:`~repro.workloads.churn.ChaosSchedule`), the
driver replays them against two arms (inline controller vs runtime) and
checks settle assertions after every fault, failures shrink to minimal
schedules and save as replayable JSON artifacts, and the whole loop runs
budgeted soak sessions exactly like ``repro fuzz``.
"""

from repro.chaos.artifact import (
    CHAOS_ARTIFACT_VERSION,
    ChaosArtifact,
    replay_chaos_artifact,
)
from repro.chaos.driver import (
    ChaosConfig,
    ChaosReport,
    ChaosRunner,
    FaultOutcome,
    chaos_failure,
    run_chaos,
)
from repro.chaos.shrink import shrink_chaos
from repro.chaos.soak import (
    ChaosFinding,
    ChaosSoakConfig,
    ChaosSoakReport,
    run_chaos_soak,
)

__all__ = [
    "CHAOS_ARTIFACT_VERSION",
    "ChaosArtifact",
    "ChaosConfig",
    "ChaosFinding",
    "ChaosReport",
    "ChaosRunner",
    "ChaosSoakConfig",
    "ChaosSoakReport",
    "FaultOutcome",
    "chaos_failure",
    "replay_chaos_artifact",
    "run_chaos",
    "run_chaos_soak",
    "shrink_chaos",
]
