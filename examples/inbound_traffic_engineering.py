#!/usr/bin/env python3
"""Inbound traffic engineering: direct control over how traffic enters.

An eyeball network with two ports at the exchange splits inbound traffic
by source address — the thing BGP can only approximate with AS-path
prepending and selective advertisements (Section 2). The example also
shows what prepending *cannot* do: the split works even though senders'
outbound preferences are untouched.

Run with::

    python examples/inbound_traffic_engineering.py
"""

from repro import SdxController, fwd, match
from repro.bgp.asn import AsPath
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet


def build() -> SdxController:
    """The example exchange, policies installed but not yet compiled."""
    sdx = SdxController()
    sdx.add_participant("ContentCDN", 64500)
    sdx.add_participant("TransitX", 64501)
    eyeball = sdx.add_participant("Eyeball", 64510, ports=2)

    home = IPv4Prefix("70.0.0.0/8")
    sdx.announce_route("Eyeball", home, AsPath([64510]))

    # Split inbound load: low half of the source space on port 0 (the
    # paper's B1), high half on port 1 (B2).
    eyeball.add_inbound(
        (match(srcip="0.0.0.0/1") >> fwd(eyeball.port(0)))
        + (match(srcip="128.0.0.0/1") >> fwd(eyeball.port(1))))
    return sdx


def reactive_demo() -> None:
    """The same idea, closed-loop: re-split when the counters skew.

    Instead of a hand-written source split, the
    :class:`~repro.apps.reactive.ReactiveInboundBalancer` owns the
    partition (eight source slices, round-robin over the two ports) and
    re-packs it from measured per-slice rates when the egress imbalance
    watch raises.
    """
    from repro.apps.reactive import ReactiveInboundBalancer
    from repro.monitoring.loop import DataPlaneMonitor
    from repro.runtime.clock import ManualClock

    sdx = SdxController()
    sdx.add_participant("ContentCDN", 64500)
    sdx.add_participant("TransitX", 64501)
    eyeball = sdx.add_participant("Eyeball", 64510, ports=2)
    sdx.announce_route("Eyeball", IPv4Prefix("70.0.0.0/8"), AsPath([64510]))
    sdx.start()

    runtime = sdx.build_runtime(clock=ManualClock())
    monitor = DataPlaneMonitor(sdx)
    balancer = ReactiveInboundBalancer(eyeball, monitor)
    monitor.add_detector(balancer.make_watch())
    balancer.install()
    runtime.attach_monitor(monitor)
    runtime.add_monitoring_handler(balancer.handle_event)

    print("reactive variant: round-robin start, assignment "
          f"{dict(balancer.assignment)}")

    # All the load arrives from even-numbered source slices — which the
    # round-robin assignment pins to port 0 — so the watch must raise
    # and the balancer must re-pack.
    megabit = 1_000_000 // 8
    senders = {"10.0.0.1": 20, "66.0.0.1": 16, "130.0.0.1": 18,
               "200.0.0.1": 14}
    for _tick in range(8):
        for srcip, rate_mbps in senders.items():
            probe = Packet(dstip="70.0.0.1", dstport=443, srcip=srcip,
                           protocol=6)
            sdx.send("ContentCDN", probe, size_bytes=rate_mbps * megabit)
        runtime.clock.advance(1.0)
        runtime.step()
        runtime.drain()

    print(f"after {balancer.rebalances} rebalance(s): assignment "
          f"{dict(balancer.assignment)}")
    if monitor.last_sample is not None:
        for view in monitor.last_sample.ports:
            print(f"  port {view.key}: {view.rate_mbps:.1f} Mbps measured")


def main() -> None:
    sdx = build()
    eyeball = sdx.participant("Eyeball")
    sdx.start()
    print(f"Eyeball's ports on the fabric: {eyeball.participant.switch_ports}")
    print()

    for sender in ("ContentCDN", "TransitX"):
        for srcip in ("23.1.2.3", "185.44.55.66"):
            probe = Packet(dstip="70.0.0.1", dstport=443, srcip=srcip,
                           protocol=6)
            delivery = sdx.send(sender, probe)[0]
            print(f"{sender:>10} srcip={srcip:<13} -> enters Eyeball on "
                  f"switch port {delivery.switch_port} "
                  f"(dstmac {delivery.packet['dstmac']})")

    print()
    print("counters:")
    for index, port in enumerate(eyeball.participant.router.ports):
        stats = sdx.fabric.switch.stats(port.switch_port)
        print(f"  port {index} (switch {port.switch_port}): "
              f"{stats.tx_packets} packets delivered")

    print()
    reactive_demo()


if __name__ == "__main__":
    main()
