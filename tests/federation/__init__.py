"""Tests for the multi-SDX federation subsystem (``repro.federation``)."""
