"""The SDX controller — the paper's primary contribution.

The pipeline (Figure 3) turns per-participant Pyretic-style policies plus
live BGP state into one flow table for the IXP switch:

1. :mod:`repro.core.isolation` — restrict each policy to the owner's
   virtual switch (Section 4.1, transformation 1);
2. :mod:`repro.core.augmentation` — insert BGP reachability guards on
   every outbound forwarding action (transformation 2);
3. :mod:`repro.core.defaults` — default forwarding along the best BGP
   route via virtual-MAC tags (transformation 3, Section 4.2);
4. :mod:`repro.core.composition` — compose all participants into one
   policy with the Section 4.3 optimisations (transformation 4);

supported by :mod:`repro.core.fec` (prefix grouping / minimum disjoint
subsets), :mod:`repro.core.vnh` (virtual next-hop and VMAC allocation),
:mod:`repro.core.incremental` (the two-stage update path), and
:mod:`repro.core.controller` (the top-level :class:`SdxController`).
"""

from repro.core.participant import Participant
from repro.core.vswitch import VirtualTopology
from repro.core.fec import PrefixGroup, compute_prefix_groups
from repro.core.vnh import VnhAllocator
from repro.core.compiler import CompilationResult, SdxCompiler
from repro.core.controller import SdxController

__all__ = [
    "CompilationResult",
    "Participant",
    "PrefixGroup",
    "SdxCompiler",
    "SdxController",
    "VirtualTopology",
    "VnhAllocator",
    "compute_prefix_groups",
]
