"""Tests for CDFs, series, and table rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.experiments.metrics import Cdf, Series, render_series, render_table


class TestCdf:
    def test_requires_samples(self):
        with pytest.raises(ValueError):
            Cdf([])

    def test_fraction_below(self):
        cdf = Cdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_below(2.0) == 0.5
        assert cdf.fraction_below(0.5) == 0.0
        assert cdf.fraction_below(10.0) == 1.0

    def test_quantiles(self):
        cdf = Cdf(range(1, 101))
        assert cdf.quantile(0.0) == 1
        assert cdf.quantile(1.0) == 100
        assert cdf.median == 50

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            Cdf([1.0]).quantile(1.5)

    @pytest.mark.parametrize("size", [1, 2, 3, 7, 10, 99, 100, 101, 1000])
    def test_quantile_endpoints_exact_for_any_size(self, size):
        samples = [float(v) for v in range(size)]
        cdf = Cdf(samples)
        assert cdf.quantile(0.0) == min(samples)
        assert cdf.quantile(1.0) == max(samples)

    def test_quantile_endpoints_unsorted_input(self):
        cdf = Cdf([5.0, 1.0, 9.0, 3.0])
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 9.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6),
                    min_size=1, max_size=200))
    def test_quantile_endpoints_property(self, samples):
        cdf = Cdf(samples)
        assert cdf.quantile(0.0) == min(samples)
        assert cdf.quantile(1.0) == max(samples)

    def test_points_cover_range(self):
        cdf = Cdf(range(1000))
        points = cdf.points(count=10)
        assert points[-1] == (999, 1.0)
        fractions = [fraction for _value, fraction in points]
        assert fractions == sorted(fractions)

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50))
    def test_fraction_below_max_is_one_property(self, samples):
        cdf = Cdf(samples)
        assert cdf.fraction_below(max(samples)) == 1.0

    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=50),
           st.floats(min_value=0, max_value=1))
    def test_quantile_is_a_sample_property(self, samples, q):
        assert Cdf(samples).quantile(q) in samples


class TestSeries:
    def test_add_and_accessors(self):
        series = Series(label="x")
        series.add(1, 10)
        series.add(2, 20)
        assert series.xs() == [1, 2]
        assert series.ys() == [10, 20]


class TestRenderChart:
    def test_renders_grid_and_legend(self):
        from repro.experiments.metrics import render_chart
        series = Series(label="mine", points=[(0, 0), (10, 5), (20, 10)])
        chart = render_chart([series], x_label="in", y_label="out",
                             width=20, height=5)
        lines = chart.splitlines()
        assert lines[0].startswith("out [0 .. 10]")
        assert lines[-2].strip() == "in [0 .. 20]"
        assert "o=mine" in lines[-1]
        assert sum(line.count("o") for line in lines[1:-3]) >= 3

    def test_two_series_two_markers(self):
        from repro.experiments.metrics import render_chart
        chart = render_chart([
            Series(label="a", points=[(0, 0), (1, 1)]),
            Series(label="b", points=[(0, 1), (1, 0)]),
        ])
        assert "o=a" in chart and "x=b" in chart

    def test_empty_chart(self):
        from repro.experiments.metrics import render_chart
        assert render_chart([]) == "(no data)"

    def test_flat_series_no_division_error(self):
        from repro.experiments.metrics import render_chart
        chart = render_chart([Series(label="flat", points=[(1, 5), (2, 5)])])
        assert "flat" in chart


class TestRendering:
    def test_render_table_aligns(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_render_table_empty_rows(self):
        text = render_table(["only", "headers"], [])
        assert "only" in text

    def test_render_series(self):
        series = Series(label="mine", points=[(1.0, 2.0)])
        text = render_series([series], "x", "y")
        assert "mine" in text
        assert "1" in text and "2" in text
