"""The naive federated reference interpreter.

One :class:`~repro.verification.reference.ReferenceInterpreter` per
exchange — each a direct, unoptimized compilation of that exchange's
policies and BGP view — glued together by the same hop-state walk the
real cross-fabric driver runs (:func:`~repro.federation.dataplane.\
walk_federation`). It shares no code with the production compiler or the
region algebra of the statics checks, which is what makes it a usable
oracle: an SDX008 diagnostic is only *confirmed* when this interpreter
actually forwards the witness packet in a cycle, and an SDX009
diagnostic only when it actually drops the witness beyond the first
exchange.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bgp.messages import Update
from repro.federation.dataplane import (
    FederatedOutcome,
    covering_prefix,
    walk_federation,
)
from repro.federation.scenario import FederatedScenario
from repro.net.addresses import IPv4Address
from repro.net.packet import Packet
from repro.verification.reference import ReferenceInterpreter


class FederatedReferenceInterpreter:
    """Per-exchange naive interpreters joined by the shared federation walk."""

    def __init__(self, scenario: FederatedScenario):
        self.scenario = scenario
        self._references: Dict[str, ReferenceInterpreter] = {
            exchange: ReferenceInterpreter(scenario.project(exchange))
            for exchange in scenario.exchanges
        }
        self._owners = {prefix: name for prefix, name in scenario.owners}

    def reference(self, exchange: str) -> ReferenceInterpreter:
        """The member interpreter of one exchange."""
        return self._references[exchange]

    def apply(self, exchange: str, update: Update) -> None:
        """Feed one BGP update into one exchange's reference view."""
        self._references[exchange].apply(update)

    def winning_outbound_clause(self, exchange: str, sender: str,
                                packet: Packet) -> Optional[int]:
        """Which outbound clause of ``sender`` wins at one exchange."""
        return self._references[exchange].winning_outbound_clause(
            sender, packet)

    # ------------------------------------------------------------------
    # The walk
    # ------------------------------------------------------------------

    def origin_of(self, dstip: IPv4Address) -> Optional[str]:
        """The scenario-declared origin of ``dstip``, if any (longest
        match)."""
        best_name: Optional[str] = None
        best_length = -1
        for prefix_text, name in self._owners.items():
            prefix = self._prefix(prefix_text)
            if prefix.contains_address(dstip) and prefix.length > best_length:
                best_name = name
                best_length = prefix.length
        return best_name

    @staticmethod
    def _prefix(text: str):
        from repro.net.addresses import IPv4Prefix

        return IPv4Prefix(text)

    def _classify(self, exchange: str, sender: str,
                  packet: Packet) -> Optional[str]:
        """One naive classification pass at one exchange."""
        result = self._references[exchange].forward(sender, packet)
        return result[0] if result is not None else None

    def _next_exchange(self, participant: str, arrived_at: str,
                       dstip: IPv4Address) -> Optional[str]:
        """First other attended exchange whose reference view has a
        usable route."""
        for exchange in self.scenario.presence(participant):
            if exchange == arrived_at:
                continue
            server = self._references[exchange].route_server
            prefix = covering_prefix(server.all_prefixes(), dstip)
            if prefix is not None and server.best_route_for(
                    participant, prefix) is not None:
                return exchange
        return None

    def forward(self, exchange: str, sender: str,
                packet: Packet) -> FederatedOutcome:
        """Walk ``packet`` across the federation through the naive arms."""
        return walk_federation(
            exchange, sender, packet,
            classify=self._classify,
            next_exchange=self._next_exchange,
            origin_of=self.origin_of)

    def verify_alignment(self, federation) -> Optional[str]:
        """Check every member interpreter against its real controller.

        Returns a description of the first topology-fact mismatch, or
        ``None``. A mismatch is a harness bug, not a finding.
        """
        for exchange in self.scenario.exchanges:
            problem = self._references[exchange].verify_alignment(
                federation.exchange(exchange))
            if problem is not None:
                return f"{exchange}: {problem}"
        return None
