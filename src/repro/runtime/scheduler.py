"""Adaptive scheduling of the background re-optimisation.

Section 4.3.2 runs the optimal recompilation "in the background between
subsequent bursts of updates" — but *when exactly* was always left to
the caller. :class:`RecompilationScheduler` makes the decision from
observable pressure instead:

* **rules watermark** — the fast path trades space for time; once its
  live shadow rules exceed ``max_fast_path_rules`` the space side of
  the trade is due, burst or no burst;
* **vnh watermark** — ephemeral singleton VNHs consume a finite pool
  and one ARP binding each; ``max_ephemeral_vnhs`` bounds that debt;
* **idle gap** — when the queue is empty and no event has arrived for
  ``idle_seconds`` (on the runtime's logical clock), the paper's
  between-bursts window is open.

``min_interval_seconds`` rate-limits back-to-back swaps so a watermark
sitting right at the threshold cannot thrash the compiler. The
scheduler only *decides*; the runtime loop owns actually flushing the
southbound window and calling
:meth:`~repro.core.controller.SdxController.run_background_recompilation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.incremental import IncrementalEngine
from repro.runtime.clock import Clock


@dataclass(frozen=True)
class SchedulerConfig:
    """Watermarks and timing for the recompilation scheduler."""

    max_fast_path_rules: int = 512
    max_ephemeral_vnhs: int = 256
    idle_seconds: float = 10.0
    min_interval_seconds: float = 0.0


class RecompilationScheduler:
    """Decides when the background re-optimisation is due."""

    def __init__(self, engine: IncrementalEngine, config: SchedulerConfig,
                 clock: Clock):
        self.engine = engine
        self.config = config
        self.clock = clock
        self._last_event: Optional[float] = None
        self._last_recompile: Optional[float] = None

    def note_event(self) -> None:
        """Record that an event just arrived (resets the idle gap)."""
        self._last_event = self.clock.now()

    def note_recompiled(self) -> None:
        """Record that a background re-optimisation just completed."""
        self._last_recompile = self.clock.now()

    def due(self, *, queue_empty: bool) -> Optional[str]:
        """The trigger that makes a recompilation due now, or ``None``.

        Returns ``"rules"``, ``"vnh"``, or ``"idle"`` — the label
        recorded on ``sdx_runtime_recompiles_total``. Never fires while
        the engine is clean or inside ``min_interval_seconds`` of the
        previous swap.
        """
        if not self.engine.dirty:
            return None
        now = self.clock.now()
        if (self._last_recompile is not None
                and now - self._last_recompile < self.config.min_interval_seconds):
            return None
        pressure = self.engine.pressure()
        if pressure.fast_path_rules >= self.config.max_fast_path_rules:
            return "rules"
        if pressure.ephemeral_vnhs >= self.config.max_ephemeral_vnhs:
            return "vnh"
        if (queue_empty and self._last_event is not None
                and now - self._last_event >= self.config.idle_seconds):
            return "idle"
        return None

    def __repr__(self) -> str:
        return (f"RecompilationScheduler(rules<{self.config.max_fast_path_rules}, "
                f"vnh<{self.config.max_ephemeral_vnhs}, "
                f"idle>={self.config.idle_seconds}s)")
