"""The policy AST: Pyretic-style predicates, actions, and composition.

A :class:`Policy` maps one located packet to a set of located packets
(Section 3.1 of the SDX paper). The concrete constructors mirror the
paper's syntax:

==============  =====================================================
``match(...)``  filter packets by header fields (a :class:`Predicate`)
``fwd(port)``   move the packet to an output port
``modify(...)`` rewrite header fields
``identity``    pass every packet through
``drop``        drop every packet
``p1 + p2``     parallel composition (apply both, union outputs)
``p1 >> p2``    sequential composition (pipe outputs of p1 into p2)
``if_(f,a,b)``  conditional, sugar for ``(f >> a) + (~f >> b)``
==============  =====================================================

Every policy both *evaluates* (:meth:`Policy.eval`) and *compiles*
(:meth:`Policy.compile`) — property tests assert the two agree.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

from repro.exceptions import PolicyError
from repro.net.packet import Packet
from repro.policy.classifier import (
    DROP_CLASSIFIER,
    IDENTITY_ACTION,
    IDENTITY_CLASSIFIER,
    Action,
    Classifier,
    ComposeStats,
    Rule,
    parallel_compose,
    sequential_compose,
)
from repro.policy.headerspace import WILDCARD, HeaderSpace

#: A forwarding target: a concrete port number, or a symbolic name that the
#: SDX compiler resolves to a port before low-level compilation.
PortRef = Union[int, str]


class Policy:
    """Base class for every policy node.

    Subclasses implement :meth:`eval` (denotational semantics) and
    :meth:`_compile` (translation to a total :class:`Classifier`).
    """

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        """The set of located packets this policy produces for ``packet``."""
        raise NotImplementedError

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        raise NotImplementedError

    def compile(self, stats: Optional[ComposeStats] = None) -> Classifier:
        """Compile to a total classifier.

        ``stats``, when given, accumulates composition-operation counts for
        the control-plane evaluation.
        """
        classifier = self._compile(stats)
        assert classifier.is_total, f"compiler bug: partial classifier for {self!r}"
        return classifier

    def substitute_ports(self, mapping: Mapping[str, int]) -> "Policy":
        """A copy with symbolic forwarding targets replaced via ``mapping``."""
        return self

    def symbolic_ports(self) -> FrozenSet[str]:
        """Every unresolved symbolic forwarding target in this policy."""
        return frozenset()

    def children(self) -> Tuple["Policy", ...]:
        """Immediate sub-policies (for AST walkers)."""
        return ()

    def __add__(self, other: "Policy") -> "Policy":
        if not isinstance(other, Policy):
            return NotImplemented
        return Parallel((self, other))

    def __rshift__(self, other: "Policy") -> "Policy":
        if not isinstance(other, Policy):
            return NotImplemented
        return Sequential((self, other))


class Predicate(Policy):
    """A boolean policy: passes matching packets, drops the rest."""

    def holds(self, packet: Packet) -> bool:
        """True if ``packet`` satisfies the predicate."""
        raise NotImplementedError

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        return frozenset((packet,)) if self.holds(packet) else frozenset()

    def __and__(self, other: "Predicate") -> "Predicate":
        if not isinstance(other, Predicate):
            return NotImplemented
        return Conjunction((self, other))

    def __or__(self, other: "Predicate") -> "Predicate":
        if not isinstance(other, Predicate):
            return NotImplemented
        return Disjunction((self, other))

    def __invert__(self) -> "Predicate":
        return Negation(self)


class Identity(Predicate):
    """The pass-through policy (and the always-true predicate)."""

    def holds(self, packet: Packet) -> bool:
        return True

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        return IDENTITY_CLASSIFIER

    def __repr__(self) -> str:
        return "identity"


class Drop(Predicate):
    """The drop-everything policy (and the always-false predicate)."""

    def holds(self, packet: Packet) -> bool:
        return False

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        return DROP_CLASSIFIER

    def __repr__(self) -> str:
        return "drop"


#: Singleton pass-through policy / true predicate.
identity = Identity()

#: Singleton drop policy / false predicate.
drop = Drop()


class Match(Predicate):
    """Filter packets by a conjunction of header-field constraints."""

    def __init__(self, space: HeaderSpace):
        self.space = space

    def holds(self, packet: Packet) -> bool:
        return self.space.matches(packet)

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        if self.space.is_wildcard:
            return IDENTITY_CLASSIFIER
        return Classifier([
            Rule(self.space, (IDENTITY_ACTION,)),
            Rule(WILDCARD, ()),
        ])

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!s}" for k, v in self.space.items_sorted())
        return f"match({inner})"


class Conjunction(Predicate):
    """``p & q`` — packets satisfying both predicates."""

    def __init__(self, parts: Iterable[Predicate]):
        self.parts = tuple(parts)

    def holds(self, packet: Packet) -> bool:
        return all(part.holds(packet) for part in self.parts)

    def children(self) -> Tuple[Policy, ...]:
        return self.parts

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        result = IDENTITY_CLASSIFIER
        for part in self.parts:
            result = sequential_compose(result, part.compile(stats), stats)
        return result

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.parts)) + ")"


class Disjunction(Predicate):
    """``p | q`` — packets satisfying either predicate."""

    def __init__(self, parts: Iterable[Predicate]):
        self.parts = tuple(parts)

    def holds(self, packet: Packet) -> bool:
        return any(part.holds(packet) for part in self.parts)

    def children(self) -> Tuple[Policy, ...]:
        return self.parts

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        result = DROP_CLASSIFIER
        for part in self.parts:
            result = parallel_compose(result, part.compile(stats), stats)
        return result

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.parts)) + ")"


class Negation(Predicate):
    """``~p`` — packets not satisfying the predicate."""

    def __init__(self, inner: Predicate):
        self.inner = inner

    def holds(self, packet: Packet) -> bool:
        return not self.inner.holds(packet)

    def children(self) -> Tuple[Policy, ...]:
        return (self.inner,)

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        return self.inner.compile(stats).negate()

    def __repr__(self) -> str:
        return f"~{self.inner!r}"


class Modify(Policy):
    """Rewrite header fields of every packet."""

    def __init__(self, **assignments: Any):
        if not assignments:
            raise PolicyError("modify() needs at least one field assignment")
        self.action = Action(**assignments)

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        return frozenset((self.action.apply(packet),))

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        return Classifier([Rule(WILDCARD, (self.action,))])

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!s}" for k, v in sorted(self.action.items()))
        return f"modify({inner})"


class Forward(Policy):
    """Send every packet to an output port.

    The target may be symbolic (a participant name); symbolic targets must
    be resolved with :meth:`Policy.substitute_ports` before compilation.
    """

    def __init__(self, port: PortRef):
        if not isinstance(port, (int, str)) or isinstance(port, bool):
            raise PolicyError(f"fwd() expects an int port or symbolic name, got {port!r}")
        self.port = port

    @property
    def is_symbolic(self) -> bool:
        """True if the target is an unresolved name."""
        return isinstance(self.port, str)

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        if self.is_symbolic:
            raise PolicyError(f"cannot evaluate unresolved fwd({self.port!r})")
        return frozenset((packet.at_port(self.port),))

    def substitute_ports(self, mapping: Mapping[str, int]) -> Policy:
        if self.is_symbolic and self.port in mapping:
            return Forward(mapping[self.port])
        return self

    def symbolic_ports(self) -> FrozenSet[str]:
        return frozenset((self.port,)) if self.is_symbolic else frozenset()

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        if self.is_symbolic:
            raise PolicyError(f"cannot compile unresolved fwd({self.port!r})")
        return Classifier([Rule(WILDCARD, (Action(port=self.port),))])

    def __repr__(self) -> str:
        return f"fwd({self.port!r})"


class _Composite(Policy):
    """Shared mechanics for n-ary composition nodes."""

    def __init__(self, parts: Iterable[Policy]):
        flattened: List[Policy] = []
        for part in parts:
            if not isinstance(part, Policy):
                raise PolicyError(f"cannot compose non-policy {part!r}")
            if type(part) is type(self):
                flattened.extend(part.parts)  # type: ignore[attr-defined]
            else:
                flattened.append(part)
        self.parts: Tuple[Policy, ...] = tuple(flattened)

    def children(self) -> Tuple[Policy, ...]:
        return self.parts

    def symbolic_ports(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for part in self.parts:
            out |= part.symbolic_ports()
        return out

    def _rebuild(self, parts: Iterable[Policy]) -> Policy:
        return type(self)(parts)

    def substitute_ports(self, mapping: Mapping[str, int]) -> Policy:
        return self._rebuild(part.substitute_ports(mapping) for part in self.parts)


class Parallel(_Composite):
    """``p1 + p2`` — apply all parts to the packet, union the outputs."""

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        out: FrozenSet[Packet] = frozenset()
        for part in self.parts:
            out |= part.eval(packet)
        return out

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        if not self.parts:
            return DROP_CLASSIFIER
        result = self.parts[0].compile(stats)
        for part in self.parts[1:]:
            result = parallel_compose(result, part.compile(stats), stats)
        return result

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.parts)) + ")"


class Sequential(_Composite):
    """``p1 >> p2`` — pipe each output of p1 into p2."""

    def eval(self, packet: Packet) -> FrozenSet[Packet]:
        current: FrozenSet[Packet] = frozenset((packet,))
        for part in self.parts:
            step: FrozenSet[Packet] = frozenset()
            for intermediate in current:
                step |= part.eval(intermediate)
            current = step
            if not current:
                break
        return current

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        if not self.parts:
            return IDENTITY_CLASSIFIER
        result = self.parts[0].compile(stats)
        for part in self.parts[1:]:
            result = sequential_compose(result, part.compile(stats), stats)
        return result

    def __repr__(self) -> str:
        return "(" + " >> ".join(map(repr, self.parts)) + ")"


def match(space: Optional[HeaderSpace] = None, **constraints: Any) -> Match:
    """Build a match predicate from field constraints or a header space.

    Examples::

        match(dstport=80)
        match(srcip="10.0.0.0/8", protocol=17)
    """
    if space is not None:
        if constraints:
            raise PolicyError("pass either a HeaderSpace or keyword constraints")
        return Match(space)
    return Match(HeaderSpace(**constraints))


def modify(**assignments: Any) -> Modify:
    """Build a header-rewrite policy, e.g. ``modify(dstip="10.0.0.2")``."""
    return Modify(**assignments)


def fwd(port: PortRef) -> Forward:
    """Build a forwarding policy to a port number or symbolic name."""
    return Forward(port)


def if_(condition: Predicate, then_policy: Policy,
        else_policy: Optional[Policy] = None) -> Policy:
    """Conditional composition: ``(cond >> then) + (~cond >> else)``.

    The SDX runtime uses this to stitch a participant's explicit policy
    together with its BGP default-forwarding policy (Section 4.1).
    """
    if not isinstance(condition, Predicate):
        raise PolicyError("if_() condition must be a Predicate")
    if else_policy is None:
        else_policy = identity
    return (condition >> then_policy) + (Negation(condition) >> else_policy)
