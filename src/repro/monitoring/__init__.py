"""Data-plane monitoring: counter sampling, detection, reaction.

The paper's marquee applications (inbound TE, wide-area load balancing)
presume the exchange can *see* traffic and react; this package closes
that loop over the simulator. A :class:`FlowStatsCollector` samples the
flow table's swap-surviving per-rule byte/packet counters, attributes
each rule to its forwarding equivalence class and egress, and maintains
rate (EWMA) and delta views; :class:`HeavyHitterDetector`,
:class:`UtilizationWatch`, and :class:`EgressImbalanceWatch` turn those
views into typed :class:`MonitoringEvent`\\ s; a :class:`DataPlaneMonitor`
owns the sampling cadence and plugs into the control-plane runtime via
:meth:`~repro.runtime.loop.ControlPlaneRuntime.attach_monitor`, which
queues every emitted event as the lowest-priority
:attr:`~repro.runtime.events.EventClass.MONITORING` class. Reactive
apps (:mod:`repro.apps.reactive`) subscribe with
:meth:`~repro.runtime.loop.ControlPlaneRuntime.add_monitoring_handler`
and answer by changing policies through the normal participant API, so
statics and the runtime-equivalence oracle gate every reaction.
"""

from repro.monitoring.detect import (
    EgressImbalanceWatch,
    HeavyHitterDetector,
    SpaceSavingSketch,
    UtilizationWatch,
)
from repro.monitoring.driver import MonitoredTrafficDriver
from repro.monitoring.events import (
    EgressImbalance,
    HeavyHitter,
    MonitoringEvent,
    UtilizationAlarm,
)
from repro.monitoring.loop import DataPlaneMonitor
from repro.monitoring.stats import (
    AggregateView,
    FlowStatsCollector,
    MonitorSample,
    RuleView,
    fec_label,
)

__all__ = [
    "AggregateView",
    "DataPlaneMonitor",
    "EgressImbalance",
    "EgressImbalanceWatch",
    "FlowStatsCollector",
    "HeavyHitter",
    "HeavyHitterDetector",
    "MonitoredTrafficDriver",
    "MonitoringEvent",
    "MonitorSample",
    "RuleView",
    "SpaceSavingSketch",
    "UtilizationAlarm",
    "UtilizationWatch",
    "fec_label",
]
