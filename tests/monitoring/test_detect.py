"""Tests for the sample-driven detectors (repro.monitoring.detect)."""

import pytest

from repro.monitoring.detect import (
    EgressImbalanceWatch,
    HeavyHitterDetector,
    SpaceSavingSketch,
    UtilizationWatch,
)
from repro.monitoring.events import (
    EgressImbalance,
    HeavyHitter,
    UtilizationAlarm,
)
from repro.monitoring.stats import UNATTRIBUTED, AggregateView, MonitorSample


def view(key, rate):
    delta = int(rate * 1e6 / 8)
    return AggregateView(key=key, packets=1, bytes=delta, delta_packets=1,
                         delta_bytes=delta, rate_mbps=rate, ewma_mbps=rate)


def sample(*, fecs=(), ports=(), at=0.0):
    """A hand-built sample where every rate is already its own EWMA."""
    return MonitorSample(
        sampled_at=at, interval=1.0,
        total_rate_mbps=sum(v.rate_mbps for v in (*fecs, *ports)),
        fecs=tuple(fecs), participants=(), ports=tuple(ports), rules=())


def fec_sample(rates, at=0.0):
    return sample(fecs=[view(key, rate) for key, rate in sorted(rates.items())],
                  at=at)


def port_sample(rates, at=0.0):
    return sample(ports=[view(str(port), rate)
                         for port, rate in sorted(rates.items())], at=at)


class TestSpaceSavingSketch:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(0)

    def test_exact_below_capacity(self):
        sketch = SpaceSavingSketch(4)
        sketch.offer("a", 5.0)
        sketch.offer("b", 3.0)
        sketch.offer("a", 2.0)
        assert sketch.top() == [("a", 7.0, 0.0), ("b", 3.0, 0.0)]
        assert sketch.total == 10.0

    def test_eviction_inherits_victim_count_as_error(self):
        sketch = SpaceSavingSketch(2)
        sketch.offer("a", 5.0)
        sketch.offer("b", 3.0)
        sketch.offer("c", 1.0)  # evicts b (the minimum)
        assert "b" not in sketch
        assert sketch.top() == [("a", 5.0, 0.0), ("c", 4.0, 3.0)]
        assert len(sketch) == 2

    def test_heavy_key_always_tracked(self):
        # Any key above total/capacity is guaranteed present.
        sketch = SpaceSavingSketch(2)
        for index in range(20):
            sketch.offer(f"mouse{index}", 1.0)
        sketch.offer("elephant", 30.0)
        assert "elephant" in sketch

    def test_top_k_limit_and_nonpositive_weights(self):
        sketch = SpaceSavingSketch(8)
        sketch.offer("a", 1.0)
        sketch.offer("b", 2.0)
        sketch.offer("b", 0.0)
        sketch.offer("b", -5.0)
        assert [key for key, _c, _e in sketch.top(1)] == ["b"]
        assert sketch.total == 3.0


class TestHeavyHitterDetector:
    def test_edge_triggered_raise_and_clear(self):
        detector = HeavyHitterDetector(threshold_mbps=50.0, clear_fraction=0.6)
        assert detector.observe(fec_sample({"f": 40.0})) == []
        (raised,) = detector.observe(fec_sample({"f": 60.0}, at=1.0))
        assert isinstance(raised, HeavyHitter)
        assert raised.raised and raised.fec == "f"
        assert raised.rate_mbps == 60.0
        assert detector.active() == ("f",)
        # Still high: no repeat event.
        assert detector.observe(fec_sample({"f": 80.0}, at=2.0)) == []
        # Hysteresis band (>= 30, < 50): neither raise nor clear.
        assert detector.observe(fec_sample({"f": 40.0}, at=3.0)) == []
        (cleared,) = detector.observe(fec_sample({"f": 10.0}, at=4.0))
        assert not cleared.raised
        assert detector.active() == ()

    def test_min_share_suppresses_small_fraction(self):
        detector = HeavyHitterDetector(threshold_mbps=50.0, min_share=0.5)
        events = detector.observe(fec_sample({"f": 60.0, "g": 100.0}))
        assert all(event.fec == "g" for event in events)

    def test_unattributed_traffic_is_ignored(self):
        detector = HeavyHitterDetector(threshold_mbps=1.0)
        assert detector.observe(fec_sample({UNATTRIBUTED: 500.0})) == []

    def test_clear_fraction_validation(self):
        with pytest.raises(ValueError):
            HeavyHitterDetector(clear_fraction=1.0)


class TestUtilizationWatch:
    def test_watermark_raise_then_clear(self):
        watch = UtilizationWatch({1: 100.0}, high=0.8, low=0.5)
        assert watch.observe(port_sample({1: 70.0})) == []
        (raised,) = watch.observe(port_sample({1: 85.0}, at=1.0))
        assert isinstance(raised, UtilizationAlarm)
        assert raised.raised and raised.port == 1
        assert raised.utilization == pytest.approx(0.85)
        # Between low and high: the alarm holds silently.
        assert watch.observe(port_sample({1: 60.0}, at=2.0)) == []
        (cleared,) = watch.observe(port_sample({1: 40.0}, at=3.0))
        assert not cleared.raised

    def test_default_capacity_applies_to_unlisted_ports(self):
        watch = UtilizationWatch(default_capacity_mbps=10.0, high=0.8, low=0.5)
        (event,) = watch.observe(port_sample({7: 9.0}))
        assert event.capacity_mbps == 10.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            UtilizationWatch(high=0.5, low=0.5)


class TestEgressImbalanceWatch:
    def test_validation(self):
        with pytest.raises(ValueError):
            EgressImbalanceWatch("A", [1])
        with pytest.raises(ValueError):
            EgressImbalanceWatch("A", [1, 2], high_ratio=1.2, low_ratio=1.5)

    def test_quiet_below_min_total(self):
        watch = EgressImbalanceWatch("A", [1, 2], min_total_mbps=5.0)
        assert watch.observe(port_sample({1: 2.0, 2: 0.0})) == []

    def test_raise_hold_clear_cycle(self):
        watch = EgressImbalanceWatch("A", [1, 2], high_ratio=1.5,
                                     low_ratio=1.15, min_total_mbps=1.0)
        assert watch.observe(port_sample({1: 10.0, 2: 10.0})) == []
        (raised,) = watch.observe(port_sample({1: 18.0, 2: 2.0}, at=1.0))
        assert isinstance(raised, EgressImbalance)
        assert raised.raised and raised.participant == "A"
        assert raised.imbalance == pytest.approx(1.8)
        assert dict(raised.port_rates) == {1: 18.0, 2: 2.0}
        # Still skewed: edge already reported.
        assert watch.observe(port_sample({1: 18.0, 2: 2.0}, at=2.0)) == []
        # Inside the hysteresis band: holds.
        assert watch.observe(port_sample({1: 13.0, 2: 7.0}, at=3.0)) == []
        (cleared,) = watch.observe(port_sample({1: 11.0, 2: 9.0}, at=4.0))
        assert not cleared.raised
        assert cleared.imbalance == pytest.approx(1.1)

    def test_unwatched_ports_read_zero(self):
        # A port with no traffic at all counts as 0 toward the ratio.
        watch = EgressImbalanceWatch("A", [1, 2], min_total_mbps=1.0)
        (event,) = watch.observe(port_sample({1: 10.0}))
        assert event.raised
        assert event.imbalance == pytest.approx(2.0)
