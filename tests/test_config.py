"""Tests for the JSON configuration round trip."""

import json

import pytest
from hypothesis import given, settings

from repro.config import (
    CONFIG_VERSION,
    ConfigError,
    clause_to_json,
    clause_to_policy,
    controller_from_config,
    export_config,
    load_config,
    predicate_from_json,
    predicate_to_json,
    save_config,
)
from repro.core.clauses import normalize_policy
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import drop, fwd, match, modify
from repro.policy.predicates import match_any_prefix, match_any_value

from tests.core.scenarios import figure1_controller, packet
from tests.policy.strategies import packets, predicates


class TestPredicateRoundTrip:
    @pytest.mark.parametrize("predicate", [
        match(dstport=80),
        match(dstip="10.0.0.0/8", protocol=6),
        match(dstport=80) & ~match(srcport=22),
        match(dstport=80) | match(dstport=443),
        match_any_prefix("dstip", [IPv4Prefix("10.0.0.0/8"),
                                   IPv4Prefix("20.0.0.0/8")]),
        match_any_value("dstport", [80, 443, 8080]),
    ])
    def test_examples_round_trip(self, predicate):
        rebuilt = predicate_from_json(predicate_to_json(predicate))
        probe = packet("10.1.2.3", dstport=80, srcip="20.0.0.1")
        assert rebuilt.holds(probe) == predicate.holds(probe)

    @settings(max_examples=80, deadline=None)
    @given(predicates(max_depth=4), packets())
    def test_round_trip_property(self, predicate, pkt):
        document = predicate_to_json(predicate)
        json.dumps(document)  # must be JSON-safe
        rebuilt = predicate_from_json(document)
        assert rebuilt.holds(pkt) == predicate.holds(pkt)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            predicate_from_json({"kind": "xor"})


class TestClauseRoundTrip:
    @pytest.mark.parametrize("policy", [
        match(dstport=80) >> fwd("B"),
        match(dstip="74.125.1.1") >> modify(dstip="54.0.0.9") >> fwd("B"),
        match(srcip="6.0.0.0/8") >> drop,
    ])
    def test_examples(self, policy):
        clause = normalize_policy(policy)[0]
        rebuilt = clause_to_policy(clause_to_json(clause))
        rebuilt_clause = normalize_policy(rebuilt)[0]
        assert rebuilt_clause.target == clause.target
        assert rebuilt_clause.drops == clause.drops
        assert dict(rebuilt_clause.modifications).keys() == \
            dict(clause.modifications).keys()

    def test_integer_target_survives(self):
        clause = normalize_policy(match(srcip="0.0.0.0/1") >> fwd(7))[0]
        document = clause_to_json(clause)
        assert document["fwd"] == 7
        rebuilt = normalize_policy(clause_to_policy(document))[0]
        assert rebuilt.target == 7


class TestControllerRoundTrip:
    def test_full_round_trip_preserves_forwarding(self, tmp_path):
        original, *_ = figure1_controller()
        original.register_ownership(IPv4Prefix("74.125.0.0/16"), "A")
        original.start()
        path = tmp_path / "sdx.json"
        save_config(original, path)

        clone = load_config(path)
        clone.start()

        for dstip in ("11.0.0.1", "12.0.0.1", "13.0.0.1", "14.0.0.1",
                      "15.0.0.1"):
            for dstport in (80, 443, 22):
                for srcip in ("10.0.0.1", "200.0.0.1"):
                    probe = packet(dstip, dstport=dstport, srcip=srcip)
                    for sender in ("A", "B", "C", "E"):
                        assert (clone.egress_of(sender, probe)
                                == original.egress_of(sender, probe))

    def test_round_trip_is_stable(self, tmp_path):
        original, *_ = figure1_controller()
        original.start()
        first = export_config(original)
        clone = controller_from_config(first)
        second = export_config(clone)
        assert first == second

    def test_remote_participant_and_ownership_survive(self):
        sdx, *_ = figure1_controller()
        remote = sdx.add_participant("D", 65099, ports=0)
        sdx.register_ownership(IPv4Prefix("74.125.1.0/24"), "D")
        remote.participant.add_inbound(
            match(dstip="74.125.1.1") >> modify(dstip="11.0.0.9") >> fwd("C"))
        sdx.start()
        remote.announce(IPv4Prefix("74.125.1.0/24"))

        clone = controller_from_config(export_config(sdx))
        clone.start()
        participant = clone.topology.participant("D")
        assert participant.is_remote
        assert clone.ownership.owner_of(IPv4Prefix("74.125.1.0/24")) == "D"
        probe = packet("74.125.1.1", srcip="10.0.0.2")
        assert clone.egress_of("A", probe) == "C"

    def test_export_policy_survives(self):
        sdx, *_ = figure1_controller(with_policies=False)
        sdx.route_server.set_export_policy("B", deny={"A"})
        sdx.start()
        clone = controller_from_config(export_config(sdx))
        assert clone.route_server.export_policy("B") == (("A",), None)

    def test_communities_survive(self):
        from repro.bgp.asn import AsPath
        sdx, *_ = figure1_controller(with_policies=False)
        sdx.announce_route("B", IPv4Prefix("16.0.0.0/8"),
                           AsPath([65002, 5]), communities={(0, 65001)})
        clone = controller_from_config(export_config(sdx))
        assert not clone.route_server.is_reachable(
            "A", IPv4Prefix("16.0.0.0/8"), via="B")

    def test_version_checked(self):
        with pytest.raises(ConfigError):
            controller_from_config({"version": 99})

    def test_bad_direction_rejected(self):
        document = {
            "version": CONFIG_VERSION,
            "participants": [{"name": "A", "asn": 65001, "ports": 1}],
            "routes": [], "ownership": [],
            "policies": [{"participant": "A", "direction": "sideways",
                          "clause": {"match": {"kind": "true"}}}],
        }
        with pytest.raises(ConfigError):
            controller_from_config(document)

    def test_config_is_plain_json(self, tmp_path):
        sdx, *_ = figure1_controller()
        sdx.start()
        path = tmp_path / "sdx.json"
        save_config(sdx, path)
        document = json.loads(path.read_text())
        assert document["version"] == CONFIG_VERSION
        assert len(document["participants"]) == 4
