"""Drives scenario traffic through a monitored, runtime-fronted SDX.

:class:`MonitoredTrafficDriver` is the harness the monitoring benchmark
and the ``monitor-smoke`` CI scenario share. Per tick it

1. sends one representative packet per active flow, with ``size_bytes``
   folding the whole tick's volume into that packet (so byte counters
   carry real rates without simulating millions of packets);
2. records **ground truth** — bytes per FEC label and per delivered
   egress port, from the flow specs and the fabric's delivery records,
   entirely outside the monitoring path;
3. advances the (manual) runtime clock by the tick and steps the
   runtime, which is what triggers cadenced monitor polls, event
   dispatch, and any reactive policy changes.

Estimated-vs-true accuracy then falls out of comparing the collector's
windowed rates against :meth:`ground_truth_rates` over the same window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.controller import SdxController
from repro.monitoring.stats import fec_label
from repro.runtime.loop import ControlPlaneRuntime
from repro.workloads.scenarios import ScenarioFlow


@dataclass
class TickRecord:
    """Ground truth for one driver tick."""

    time: float
    fec_bytes: Dict[str, int] = field(default_factory=dict)
    port_bytes: Dict[int, int] = field(default_factory=dict)


class MonitoredTrafficDriver:
    """Replays scenario flows against a runtime-fronted controller.

    ``clock`` must be the runtime's clock and support ``advance()``
    (a :class:`~repro.runtime.clock.ManualClock`): simulation time only
    moves when the driver ticks, which keeps monitoring cadence, flow
    windows, and ground truth on one timeline.
    """

    def __init__(self, controller: SdxController,
                 runtime: ControlPlaneRuntime,
                 flows: Sequence[ScenarioFlow], *,
                 tick_seconds: float = 1.0):
        if tick_seconds <= 0:
            raise ValueError(f"tick must be positive, got {tick_seconds}")
        if runtime.controller is not controller:
            raise ValueError("runtime does not front the given controller")
        if not hasattr(runtime.clock, "advance"):
            raise ValueError("driver needs a manually advanced clock")
        self.controller = controller
        self.runtime = runtime
        self.clock = runtime.clock
        self.flows = list(flows)
        self.tick_seconds = tick_seconds
        self.history: List[TickRecord] = []

    def run(self, duration: float, *,
            on_tick: Optional[Callable[[TickRecord], None]] = None) -> int:
        """Drive ``duration`` seconds of traffic; returns ticks executed.

        Each tick sends the active flows' volume, records ground truth,
        advances the clock, and steps the runtime once. ``on_tick`` (if
        given) observes the just-recorded tick — the smoke scenario uses
        it to watch convergence.
        """
        ticks = 0
        elapsed = 0.0
        while elapsed < duration - 1e-9:
            now = self.clock.now()
            record = TickRecord(time=now)
            for flow in self.flows:
                if not flow.active_at(elapsed):
                    continue
                size = int(flow.rate_mbps * self.tick_seconds * 1e6 / 8)
                if size <= 0:
                    continue
                deliveries = self.controller.send(
                    flow.source, flow.packet, size_bytes=size)
                label = fec_label(self.controller, flow.dst_prefix)
                record.fec_bytes[label] = record.fec_bytes.get(label, 0) + size
                for delivery in deliveries:
                    if delivery.accepted:
                        record.port_bytes[delivery.switch_port] = (
                            record.port_bytes.get(delivery.switch_port, 0) + size)
            self.history.append(record)
            self.clock.advance(self.tick_seconds)
            self.runtime.step()
            if on_tick is not None:
                on_tick(record)
            elapsed += self.tick_seconds
            ticks += 1
        return ticks

    # ------------------------------------------------------------------
    # Ground truth
    # ------------------------------------------------------------------

    def _window(self, window_seconds: float,
                until: Optional[float]) -> List[TickRecord]:
        if not self.history:
            return []
        end = self.history[-1].time if until is None else until
        # Half-open window (start, end]: a tick stamped exactly at the
        # window's start belongs to the previous window, so an N-second
        # window holds N one-second ticks, not N+1.
        start = end - window_seconds
        return [r for r in self.history if start < r.time <= end]

    def ground_truth_rates(self, window_seconds: float, *,
                           until: Optional[float] = None) -> Dict[str, float]:
        """True per-FEC rates (Mbps) over the trailing window."""
        records = self._window(window_seconds, until)
        if not records:
            return {}
        span = max(window_seconds, self.tick_seconds)
        totals: Dict[str, int] = {}
        for record in records:
            for label, count in record.fec_bytes.items():
                totals[label] = totals.get(label, 0) + count
        return {label: count * 8.0 / (span * 1e6)
                for label, count in totals.items()}

    def ground_truth_port_rates(self, window_seconds: float, *,
                                until: Optional[float] = None
                                ) -> Dict[int, float]:
        """True per-egress-port rates (Mbps) over the trailing window."""
        records = self._window(window_seconds, until)
        if not records:
            return {}
        span = max(window_seconds, self.tick_seconds)
        totals: Dict[int, int] = {}
        for record in records:
            for port, count in record.port_bytes.items():
                totals[port] = totals.get(port, 0) + count
        return {port: count * 8.0 / (span * 1e6)
                for port, count in totals.items()}

    def port_share(self, ports: Sequence[int], *,
                   window_seconds: float) -> Tuple[float, ...]:
        """Each port's fraction of the window's delivered bytes."""
        rates = self.ground_truth_port_rates(window_seconds)
        values = [rates.get(port, 0.0) for port in ports]
        total = sum(values)
        if total <= 0:
            return tuple(0.0 for _ in values)
        return tuple(value / total for value in values)
