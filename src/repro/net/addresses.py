"""IPv4 addresses and prefixes implemented on plain integers.

The SDX compiler manipulates hundreds of thousands of prefixes, so these
types are deliberately small: an :class:`IPv4Address` wraps one ``int`` and
an :class:`IPv4Prefix` wraps ``(network_int, length)``. Both are immutable,
hashable, and totally ordered, which lets them serve as dict keys in RIB
tries and as members of the frozen prefix sets used by the FEC computation.

Unlike :mod:`ipaddress` from the standard library, :class:`IPv4Prefix`
exposes the handful of set-algebra operations the compiler needs —
containment, intersection, and supernet walking — without per-call object
churn.
"""

from __future__ import annotations

import functools
import re
from typing import Iterator, Optional, Union

from repro.exceptions import AddressError

_MAX_IPV4 = 0xFFFFFFFF
_DOTTED_QUAD = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


def _parse_dotted_quad(text: str) -> int:
    """Return the integer value of ``text`` (e.g. ``"10.0.0.1"``)."""
    matched = _DOTTED_QUAD.match(text)
    if not matched:
        raise AddressError(f"not a dotted-quad IPv4 address: {text!r}")
    value = 0
    for octet_text in matched.groups():
        octet = int(octet_text)
        if octet > 255:
            raise AddressError(f"octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def _format_dotted_quad(value: int) -> str:
    """Return the dotted-quad representation of integer ``value``."""
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@functools.total_ordering
class IPv4Address:
    """An immutable IPv4 address.

    Accepts either a dotted-quad string or a raw integer::

        >>> IPv4Address("10.0.0.1") == IPv4Address(0x0A000001)
        True
    """

    __slots__ = ("_value",)

    def __init__(self, value: Union[str, int, "IPv4Address"]):
        if isinstance(value, IPv4Address):
            self._value = value._value
        elif isinstance(value, str):
            self._value = _parse_dotted_quad(value)
        elif isinstance(value, int):
            if not 0 <= value <= _MAX_IPV4:
                raise AddressError(f"IPv4 integer out of range: {value}")
            self._value = value
        else:
            raise AddressError(f"cannot build IPv4Address from {type(value).__name__}")

    @property
    def value(self) -> int:
        """The address as a 32-bit integer."""
        return self._value

    def __int__(self) -> int:
        return self._value

    def __str__(self) -> str:
        return _format_dotted_quad(self._value)

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if isinstance(other, IPv4Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self._value + offset)

    def in_prefix(self, prefix: "IPv4Prefix") -> bool:
        """True if this address falls inside ``prefix``."""
        return prefix.contains_address(self)


@functools.total_ordering
class IPv4Prefix:
    """An immutable IPv4 prefix (CIDR block) such as ``10.0.0.0/8``.

    Host bits below the prefix length are zeroed on construction, matching
    how prefixes appear in BGP announcements.
    """

    __slots__ = ("_network", "_length")

    def __init__(self, value: Union[str, "IPv4Prefix", None] = None, *,
                 network: Optional[Union[int, str, IPv4Address]] = None,
                 length: Optional[int] = None):
        if isinstance(value, IPv4Prefix):
            self._network, self._length = value._network, value._length
            return
        if isinstance(value, str):
            network, length = self._parse(value)
        elif value is not None:
            raise AddressError(f"cannot build IPv4Prefix from {type(value).__name__}")
        if network is None or length is None:
            raise AddressError("IPv4Prefix needs a CIDR string or network+length")
        if isinstance(network, (str, IPv4Address)):
            network = int(IPv4Address(network))
        if not 0 <= length <= 32:
            raise AddressError(f"prefix length out of range: {length}")
        if not 0 <= network <= _MAX_IPV4:
            raise AddressError(f"network integer out of range: {network}")
        mask = self._mask_for(length)
        self._network = network & mask
        self._length = length

    @staticmethod
    def _parse(text: str) -> tuple[int, int]:
        network_text, separator, length_text = text.partition("/")
        if not separator:
            raise AddressError(f"missing '/length' in prefix: {text!r}")
        try:
            length = int(length_text)
        except ValueError as exc:
            raise AddressError(f"bad prefix length in {text!r}") from exc
        return _parse_dotted_quad(network_text), length

    @staticmethod
    def _mask_for(length: int) -> int:
        return (_MAX_IPV4 << (32 - length)) & _MAX_IPV4 if length else 0

    @property
    def network(self) -> IPv4Address:
        """The (zeroed-host-bits) network address."""
        return IPv4Address(self._network)

    @property
    def network_int(self) -> int:
        """The network address as an integer."""
        return self._network

    @property
    def length(self) -> int:
        """The prefix length in bits (0-32)."""
        return self._length

    @property
    def netmask(self) -> IPv4Address:
        """The network mask as an address (e.g. 255.255.255.0 for /24)."""
        return IPv4Address(self._mask_for(self._length))

    @property
    def num_addresses(self) -> int:
        """How many addresses the prefix covers."""
        return 1 << (32 - self._length)

    @property
    def first_address(self) -> IPv4Address:
        """The lowest address in the prefix."""
        return IPv4Address(self._network)

    @property
    def last_address(self) -> IPv4Address:
        """The highest address in the prefix."""
        return IPv4Address(self._network | (self.num_addresses - 1))

    def __str__(self) -> str:
        return f"{_format_dotted_quad(self._network)}/{self._length}"

    def __repr__(self) -> str:
        return f"IPv4Prefix({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Prefix):
            return (self._network, self._length) == (other._network, other._length)
        return NotImplemented

    def __lt__(self, other: "IPv4Prefix") -> bool:
        if isinstance(other, IPv4Prefix):
            return (self._network, self._length) < (other._network, other._length)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._network, self._length))

    def contains_address(self, address: Union[IPv4Address, str, int]) -> bool:
        """True if ``address`` falls inside this prefix."""
        value = int(IPv4Address(address))
        return (value & self._mask_for(self._length)) == self._network

    def __contains__(self, item: Union[IPv4Address, "IPv4Prefix", str, int]) -> bool:
        if isinstance(item, IPv4Prefix):
            return self.contains_prefix(item)
        return self.contains_address(item)

    def contains_prefix(self, other: "IPv4Prefix") -> bool:
        """True if ``other`` is fully inside (or equal to) this prefix."""
        if other._length < self._length:
            return False
        return (other._network & self._mask_for(self._length)) == self._network

    def overlaps(self, other: "IPv4Prefix") -> bool:
        """True if the two prefixes share at least one address."""
        return self.contains_prefix(other) or other.contains_prefix(self)

    def intersection(self, other: "IPv4Prefix") -> Optional["IPv4Prefix"]:
        """The more-specific of two overlapping prefixes, or ``None``.

        Two CIDR blocks either nest or are disjoint, so the intersection is
        always the longer prefix when they overlap.
        """
        if self.contains_prefix(other):
            return other
        if other.contains_prefix(self):
            return self
        return None

    def supernet(self, new_length: Optional[int] = None) -> "IPv4Prefix":
        """The enclosing prefix at ``new_length`` (default: one bit shorter)."""
        if new_length is None:
            new_length = self._length - 1
        if not 0 <= new_length <= self._length:
            raise AddressError(
                f"supernet length {new_length} invalid for /{self._length}")
        return IPv4Prefix(network=self._network, length=new_length)

    def subnets(self, new_length: Optional[int] = None) -> Iterator["IPv4Prefix"]:
        """Iterate the subnets of this prefix at ``new_length`` (default +1)."""
        if new_length is None:
            new_length = self._length + 1
        if not self._length <= new_length <= 32:
            raise AddressError(
                f"subnet length {new_length} invalid for /{self._length}")
        step = 1 << (32 - new_length)
        for network in range(self._network, self._network + self.num_addresses, step):
            yield IPv4Prefix(network=network, length=new_length)

    def addresses(self) -> Iterator[IPv4Address]:
        """Iterate every address in the prefix (use only on small prefixes)."""
        for value in range(self._network, self._network + self.num_addresses):
            yield IPv4Address(value)

    def bit_at(self, position: int) -> int:
        """The network bit at ``position`` (0 = most significant)."""
        if not 0 <= position < 32:
            raise AddressError(f"bit position out of range: {position}")
        return (self._network >> (31 - position)) & 1


#: The default route, matching every IPv4 address.
DEFAULT_ROUTE = IPv4Prefix("0.0.0.0/0")
