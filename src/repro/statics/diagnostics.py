"""Diagnostic types for the static policy verifier.

A :class:`Diagnostic` is one finding: a stable check ID, a severity, a
:class:`SourceLocation` naming the offending clause, a human-readable
message, and (where the check can produce one) a concrete witness
packet. A :class:`StaticsReport` aggregates the findings of one analyzer
run and renders them for humans (``render``) or machines (``to_dict`` /
``to_json``), mirroring how compiler diagnostics separate presentation
from detection.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.net.packet import Packet

#: Rendering / sort order: most severe first.
_SEVERITY_RANK = {"error": 0, "warning": 1, "info": 2}


class Severity(str, enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make ``repro lint-policies`` exit non-zero and
    strict-mode controllers refuse to start; ``WARNING`` findings are
    reported but do not gate; ``INFO`` findings are advisory context.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank; lower is more severe."""
        return _SEVERITY_RANK[self.value]

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class SourceLocation:
    """Where a diagnostic points: a participant's clause (or document).

    ``clause_index`` indexes the participant's normalised clause list for
    ``direction`` (``"out"`` / ``"in"``); it is ``None`` for findings
    about the participant as a whole (e.g. unreachable defaults).
    ``document_index`` is set instead when the finding is about a raw
    policy document that was never installed.
    """

    participant: str
    direction: Optional[str] = None
    clause_index: Optional[int] = None
    document_index: Optional[int] = None

    def describe(self) -> str:
        """A compact ``participant[:direction[#clause]]`` rendering."""
        text = self.participant
        if self.direction is not None:
            text += f":{self.direction}"
        if self.clause_index is not None:
            text += f"#{self.clause_index}"
        if self.document_index is not None:
            text += f"@doc{self.document_index}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe encoding (``None`` fields omitted)."""
        out: Dict[str, Any] = {"participant": self.participant}
        if self.direction is not None:
            out["direction"] = self.direction
        if self.clause_index is not None:
            out["clause_index"] = self.clause_index
        if self.document_index is not None:
            out["document_index"] = self.document_index
        return out


@dataclass(frozen=True)
class RawPolicyDocument:
    """One not-yet-installed policy document offered for linting.

    ``clause`` is the JSON clause encoding of :mod:`repro.config`
    (``{"match": {...}, "fwd": ...}``). Raw documents flow through the
    sanity and isolation checks, which must run *before*
    ``coerce_constraint`` / install-time validation would reject them.
    """

    participant: str
    direction: str
    clause: Mapping[str, Any]
    index: int = 0

    @property
    def location(self) -> SourceLocation:
        """The source location of this document."""
        return SourceLocation(
            participant=self.participant, direction=self.direction,
            document_index=self.index)


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static analyzer."""

    check_id: str
    check_name: str
    severity: Severity
    location: SourceLocation
    message: str
    witness: Optional[Packet] = None
    data: Tuple[Tuple[str, Any], ...] = ()

    def describe(self) -> str:
        """A single-line human-readable rendering."""
        text = (f"{self.severity.value.upper():7s} {self.check_id} "
                f"[{self.location.describe()}] {self.message}")
        if self.witness is not None:
            text += f" (e.g. {self.witness!r})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe encoding."""
        out: Dict[str, Any] = {
            "check_id": self.check_id,
            "check_name": self.check_name,
            "severity": self.severity.value,
            "location": self.location.to_dict(),
            "message": self.message,
        }
        if self.witness is not None:
            out["witness"] = {
                name: str(value) for name, value in self.witness.items()
                if value is not None
            }
        if self.data:
            out["data"] = {name: _json_safe(value) for name, value in self.data}
        return out


def _json_safe(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(name): _json_safe(item) for name, item in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


@dataclass
class StaticsReport:
    """The outcome of one static-analysis run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    participants_analyzed: int = 0
    clauses_analyzed: int = 0
    checks_run: Tuple[str, ...] = ()

    def extend(self, findings: Sequence[Diagnostic]) -> None:
        """Append findings from one check."""
        self.diagnostics.extend(findings)

    def sorted(self) -> List[Diagnostic]:
        """Diagnostics ordered by severity, then check ID, then location."""
        return sorted(
            self.diagnostics,
            key=lambda diag: (diag.severity.rank, diag.check_id,
                              diag.location.participant,
                              diag.location.direction or "",
                              diag.location.clause_index
                              if diag.location.clause_index is not None else -1))

    @property
    def errors(self) -> List[Diagnostic]:
        """Error-severity findings only."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Warning-severity findings only."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        """True when any finding is error severity (lint gate fails)."""
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def by_check(self, check_id: str) -> List[Diagnostic]:
        """Findings of one check, in report order."""
        return [d for d in self.diagnostics if d.check_id == check_id]

    def counts(self) -> Dict[str, int]:
        """Finding counts per severity value."""
        out = {"error": 0, "warning": 0, "info": 0}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity.value] += 1
        return out

    def summary(self) -> str:
        """One line: totals per severity over the analyzed surface."""
        counts = self.counts()
        return (f"{self.participants_analyzed} participant(s), "
                f"{self.clauses_analyzed} clause(s): "
                f"{counts['error']} error(s), {counts['warning']} warning(s), "
                f"{counts['info']} info")

    def render(self) -> str:
        """A printable multi-line report, most severe findings first."""
        lines = [self.summary()]
        lines.extend(diag.describe() for diag in self.sorted())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe encoding of the whole report."""
        return {
            "summary": {
                "participants_analyzed": self.participants_analyzed,
                "clauses_analyzed": self.clauses_analyzed,
                "checks_run": list(self.checks_run),
                "counts": self.counts(),
                "ok": not self.has_errors,
            },
            "diagnostics": [diag.to_dict() for diag in self.sorted()],
        }

    def to_json(self, indent: int = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)
