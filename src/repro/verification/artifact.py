"""Replayable JSON failure artifacts.

When the oracle finds a divergence, the fuzzer saves one self-contained
JSON file: the (shrunk) scenario, the failure it reproduces, and enough
bookkeeping to credit the original run. ``python -m repro fuzz --replay
<file>`` (or :func:`replay_artifact`) rebuilds the scenario and re-runs
the oracle — on an unmodified tree the same failure reappears; on a
fixed tree the replay comes back clean.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Optional, Union

from repro.verification.oracle import DifferentialOracle, OracleFailure
from repro.verification.scenario import Scenario

#: Artifact format version.
ARTIFACT_VERSION = 1


@dataclass(frozen=True)
class FailureArtifact:
    """One saved failure: the shrunk scenario plus what it broke."""

    scenario: Scenario
    kind: str
    step: int
    detail: str
    original_trace_length: int

    @property
    def failure(self) -> OracleFailure:
        """The recorded failure as an :class:`OracleFailure`."""
        return OracleFailure(kind=self.kind, step=self.step,
                             detail=self.detail)

    def file_name(self) -> str:
        """A deterministic, filesystem-safe artifact name."""
        slug = "".join(ch if ch.isalnum() else "-" for ch in self.kind)
        return (f"failure-seed{self.scenario.seed}"
                f"-steps{len(self.scenario.trace)}-{slug}.json")

    def to_json(self) -> str:
        """The artifact as deterministic, pretty-printed JSON."""
        payload = {
            "version": ARTIFACT_VERSION,
            "kind": self.kind,
            "step": self.step,
            "detail": self.detail,
            "original_trace_length": self.original_trace_length,
            "scenario": self.scenario.to_dict(),
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    def save(self, directory: Union[str, os.PathLike]) -> str:
        """Write the artifact under ``directory``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(os.fspath(directory), self.file_name())
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return path

    @classmethod
    def from_json(cls, text: str) -> "FailureArtifact":
        """Rebuild an artifact from :meth:`to_json` output."""
        payload = json.loads(text)
        version = payload.get("version")
        if version != ARTIFACT_VERSION:
            raise ValueError(f"unsupported artifact version {version!r}")
        return cls(
            scenario=Scenario.from_dict(payload["scenario"]),
            kind=payload["kind"],
            step=payload["step"],
            detail=payload["detail"],
            original_trace_length=payload["original_trace_length"])

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "FailureArtifact":
        """Read an artifact file back."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def replay_artifact(source: Union[str, os.PathLike, FailureArtifact],
                    ) -> Optional[OracleFailure]:
    """Re-run a saved failure; returns whatever the oracle finds now.

    ``None`` means the recorded failure no longer reproduces (the bug is
    fixed, or environment-dependent — which the deterministic pipeline
    is designed to rule out).
    """
    artifact = (source if isinstance(source, FailureArtifact)
                else FailureArtifact.load(source))
    return DifferentialOracle(artifact.scenario).run()
