"""Tests for the top-level controller: lifecycle, ownership, policy churn."""

import pytest

from repro.bgp.asn import AsPath
from repro.exceptions import OwnershipError, ParticipantError
from repro.net.addresses import IPv4Prefix
from repro.policy.policies import drop, fwd, match, modify

from tests.core.scenarios import P1, P4, figure1_controller, packet


class TestConstruction:
    def test_build_convenience(self):
        from repro.core.controller import SdxController
        sdx = SdxController.build({"A": 65001, "B": 65002})
        assert [h.name for h in sdx.participants()] == ["A", "B"]
        assert sdx.participant("A").asn == 65001

    def test_unknown_participant(self):
        from repro.core.controller import SdxController
        with pytest.raises(ParticipantError):
            SdxController().participant("Z")

    def test_switch_ports_assigned_sequentially(self):
        sdx, a, b, c, e = figure1_controller()
        assert a.port(0) == 1
        assert b.participant.switch_ports == (2, 3)
        assert c.port(0) == 4

    def test_local_prefixes_registered_and_announced(self):
        from repro.core.controller import SdxController
        sdx = SdxController()
        home = IPv4Prefix("20.0.0.0/8")
        sdx.add_participant("A", 65001, local_prefixes=[home])
        sdx.add_participant("B", 65002)
        assert sdx.route_server.best_route_for("B", home).learned_from == "A"
        assert sdx.ownership.owner_of(home) == "A"

    def test_no_dataplane_mode(self):
        sdx, *_ = figure1_controller(with_dataplane=False)
        result = sdx.start()
        assert result.flow_rule_count > 0
        with pytest.raises(ParticipantError):
            sdx.send("A", packet("11.0.0.1"))


class TestOwnership:
    def test_originate_requires_registration(self):
        sdx, a, *_ = figure1_controller()
        sdx.start()
        with pytest.raises(OwnershipError):
            a.announce(IPv4Prefix("74.125.1.0/24"))

    def test_originate_rejects_foreign_prefix(self):
        sdx, a, b, *_ = figure1_controller()
        sdx.register_ownership(IPv4Prefix("74.125.0.0/16"), "B")
        sdx.start()
        with pytest.raises(OwnershipError):
            a.announce(IPv4Prefix("74.125.1.0/24"))

    def test_originate_subnet_of_owned_space(self):
        sdx, a, *_ = figure1_controller()
        sdx.register_ownership(IPv4Prefix("74.125.0.0/16"), "A")
        sdx.start()
        a.announce(IPv4Prefix("74.125.1.0/24"))
        assert sdx.route_server.best_route_for(
            "B", IPv4Prefix("74.125.1.0/24")) is not None

    def test_withdraw_origination(self):
        sdx, a, *_ = figure1_controller()
        sdx.register_ownership(IPv4Prefix("74.125.0.0/16"), "A")
        sdx.start()
        a.announce(IPv4Prefix("74.125.1.0/24"))
        a.withdraw(IPv4Prefix("74.125.1.0/24"))
        assert sdx.route_server.best_route_for(
            "B", IPv4Prefix("74.125.1.0/24")) is None

    def test_conflicting_registration_rejected(self):
        sdx, *_ = figure1_controller()
        sdx.register_ownership(IPv4Prefix("74.125.0.0/16"), "A")
        with pytest.raises(OwnershipError):
            sdx.register_ownership(IPv4Prefix("74.125.0.0/16"), "B")


class TestLivePolicyChanges:
    def test_policy_installation_recompiles(self):
        sdx, a, b, c, e = figure1_controller(with_policies=False)
        sdx.start()
        assert sdx.egress_of("A", packet("13.0.0.1", dstport=80)) == "B"
        # p1's best is C; install app-specific peering: web via B.
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "C"
        a.add_outbound(match(dstport=80) >> fwd("B"))
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "B"

    def test_policy_removal_restores_default(self):
        sdx, a, *_ = figure1_controller(with_policies=False)
        sdx.start()
        policy = match(dstport=80) >> fwd("B")
        a.add_outbound(policy)
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "B"
        a.remove_outbound(policy)
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "C"

    def test_drop_policy_blocks_traffic(self):
        sdx, a, *_ = figure1_controller()
        sdx.start()
        a.add_outbound(match(srcip="10.0.0.0/24") >> drop)
        blocked = packet("11.0.0.1", dstport=22, srcip="10.0.0.5")
        assert sdx.egress_of("A", blocked) is None
        allowed = packet("11.0.0.1", dstport=22, srcip="99.0.0.5")
        assert sdx.egress_of("A", allowed) == "C"

    def test_negated_clause_falls_through_to_later_clause(self):
        """Traffic masked out of clause 1 by negation must be tried
        against clause 2, not jump straight to the BGP default."""
        sdx, a, *_ = figure1_controller(with_policies=False)
        sdx.start()
        a.add_outbound((match(dstport=80) & ~match(srcip="10.0.0.0/8"))
                       >> fwd("B"))
        a.add_outbound(match(dstport=80) >> fwd("C"))
        masked = packet("11.0.0.1", dstport=80, srcip="10.0.0.5")
        unmasked = packet("13.0.0.1", dstport=80, srcip="99.0.0.5")
        assert sdx.egress_of("A", masked) == "C"    # clause 2
        assert sdx.egress_of("A", unmasked) == "B"  # clause 1

    def test_clause_priority_is_installation_order(self):
        """Earlier clauses win on overlap: A's pre-existing web policy
        still applies to web traffic from the blocked source."""
        sdx, a, *_ = figure1_controller()
        sdx.start()
        a.add_outbound(match(srcip="10.0.0.0/24") >> drop)
        web = packet("11.0.0.1", dstport=80, srcip="10.0.0.5")
        assert sdx.egress_of("A", web) == "B"

    def test_clear_policies_live(self):
        sdx, a, b, *_ = figure1_controller()
        sdx.start()
        a.clear_policies()
        assert sdx.egress_of("A", packet("11.0.0.1", dstport=80)) == "C"

    def test_rib_view_and_filter(self):
        sdx, a, *_ = figure1_controller()
        sdx.start()
        view = a.rib
        assert len(view) == 5
        originated_by_100 = a.filter_rib("as_path", r".*100$")
        assert P1 in originated_by_100

    def test_handle_accessors(self):
        sdx, a, *_ = figure1_controller()
        assert a.name == "A"
        assert a.asn == 65001
        assert "A" in repr(a)


class TestSummary:
    def test_summary_counts(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        summary = sdx.summary()
        assert summary["participants"] == 4
        assert summary["remote_participants"] == 0
        assert summary["policies"] == 2
        assert summary["announced_prefixes"] == 5
        assert summary["flow_rules"] == len(sdx.table)
        assert summary["prefix_groups"] >= 2
        assert summary["fast_path_rules"] == 0

    def test_summary_tracks_churn(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        sdx.withdraw_route("C", P1)
        summary = sdx.summary()
        assert summary["fast_path_rules"] > 0
        assert summary["ephemeral_vnhs"] == 1
        sdx.run_background_recompilation()
        after = sdx.summary()
        assert after["fast_path_rules"] == 0
        assert after["ephemeral_vnhs"] == 0


class TestSessionResilience:
    def test_session_reset_flushes_and_recovers(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        changes = sdx.route_server.reset_session("E")
        assert changes
        sdx.run_background_recompilation()
        assert sdx.egress_of("A", packet("15.0.0.1")) is None
        sdx.announce_route("E", IPv4Prefix("15.0.0.0/8"), AsPath([65005, 600]))
        assert sdx.egress_of("A", packet("15.0.0.1")) == "E"
