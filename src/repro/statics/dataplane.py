"""Incremental static verification of *installed* flow rules.

The SDX001-SDX009 checks lint policies before compilation; nothing
verified the artifact the fabric actually runs. This module closes that
gap with a VeriFlow-style incremental verifier over the live
:class:`~repro.dataplane.flowtable.FlowTable`:

* the installed rule set is modeled as prioritized match regions over
  :class:`~repro.policy.headerspace.HeaderSpace` (the PR 5 region
  algebra's constraint fragment: CIDR prefixes nest or are disjoint, so
  every per-field domain splits into *atoms* — maximal regions on which
  every installed match is constant);
* header space is partitioned into equivalence classes (one atom per
  constrained field); each class carries a concrete representative
  packet, so "which rule wins this whole class" is a single
  :meth:`FlowTable.lookup`;
* a :class:`FlowMod` batch only re-verifies the classes its deltas
  touch — untouched rules keep their cached verdicts, which is what
  makes per-delta gating cheap enough to run inline in the southbound
  engine.

Check catalogue (stable IDs, documented in ``docs/ANALYSIS.md``):

========  ==========================================================
SDX010    fully-shadowed installed rule (never wins any packet)
SDX011    committed traffic falls to the table miss / wildcard drop
SDX012    VMAC rewrite to a tag with no live next-hop (blackhole)
SDX013    intra-fabric forwarding loop across multi-switch tables
SDX014    two-phase-swap phase violation inside one apply window
========  ==========================================================

Every spatial finding carries a witness packet; the fuzz harness
(:mod:`repro.verification.dataplane`) re-executes witnesses through the
reference machinery to enforce each check's soundness contract.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from itertools import product
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.net.addresses import IPv4Prefix
from repro.net.mac import MacAddress
from repro.net.packet import IP_FIELDS, Packet
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import Constraint, HeaderSpace
from repro.southbound.diff import FlowMod, FlowModOp, RuleKey, rule_key
from repro.statics.diagnostics import Diagnostic, Severity, SourceLocation, StaticsReport
from repro.telemetry import Telemetry, get_telemetry

logger = logging.getLogger("repro.statics.dataplane")

#: Above this many equivalence classes a per-rule subpartition falls back
#: to the conservative single-cover test (sound: it only *misses* union
#: shadows, never fabricates one).
DEFAULT_CLASS_BUDGET = 4096

#: Check IDs this module owns, in catalogue order.
DATAPLANE_CHECK_IDS: Tuple[str, ...] = (
    "SDX010", "SDX011", "SDX012", "SDX013", "SDX014")

#: Atom-key tags: an exact value, a prefix region, or the remainder.
_VAL = "val"
_PFX = "pfx"
_OTHER = "other"

#: One atom key: ``("val", v)``, ``("pfx", prefix)`` or ``("other",)``.
AtomKey = Tuple[Any, ...]


# ----------------------------------------------------------------------
# Per-field atoms
# ----------------------------------------------------------------------


def _first_free_int(start: int, stop: int,
                    taken_ranges: Sequence[Tuple[int, int]]) -> Optional[int]:
    """The lowest integer in ``[start, stop]`` outside ``taken_ranges``.

    Ranges are inclusive and must be sorted by their low end; prefixes
    produce disjoint ranges, so one forward sweep suffices — no address
    enumeration.
    """
    candidate = start
    for low, high in taken_ranges:
        if candidate < low:
            break
        candidate = max(candidate, high + 1)
    if candidate > stop:
        return None
    return candidate


def _prefix_atoms(constraints: Sequence[IPv4Prefix],
                  base: Optional[IPv4Prefix]) -> List[Tuple[AtomKey, int]]:
    """Atoms of one IP field: each relevant prefix minus its more-specific
    relatives, plus the remainder of the domain. Returns inhabited atoms
    only, as ``(key, representative_address_int)`` pairs.
    """
    domain_low = base.network_int if base is not None else 0
    domain_high = (int(base.last_address) if base is not None
                   else 0xFFFFFFFF)
    relevant: Set[IPv4Prefix] = set()
    for prefix in constraints:
        clipped = prefix if base is None else base.intersection(prefix)
        if clipped is not None:
            relevant.add(clipped)
    ordered = sorted(relevant, key=lambda p: (p.network_int, p.length))
    atoms: List[Tuple[AtomKey, int]] = []
    for prefix in ordered:
        children = [q for q in relevant
                    if q != prefix and prefix.contains_prefix(q)]
        # Maximal strict children only: their ranges are disjoint.
        maximal = [q for q in children
                   if not any(r != q and r.contains_prefix(q) for r in children)]
        ranges = sorted((q.network_int, int(q.last_address)) for q in maximal)
        rep = _first_free_int(prefix.network_int, int(prefix.last_address), ranges)
        if rep is not None:
            atoms.append(((_PFX, prefix), rep))
    top = [p for p in relevant
           if not any(q != p and q.contains_prefix(p) for q in relevant)]
    ranges = sorted((p.network_int, int(p.last_address)) for p in top)
    rep = _first_free_int(domain_low, domain_high, ranges)
    if rep is not None:
        atoms.append(((_OTHER,), rep))
    return atoms


def _exact_atoms(values: Sequence[Any], base: Optional[Any],
                 domain: Optional[Sequence[int]],
                 is_mac: bool) -> List[Tuple[AtomKey, Any]]:
    """Atoms of an exact-match field: each named value plus a remainder.

    ``base`` pins the whole domain to one value; ``domain`` restricts it
    to a finite set (the committed-traffic port check uses this for the
    real edge-port population).
    """
    named = list(dict.fromkeys(values))
    if base is not None:
        named = [value for value in named if value == base]
        atoms: List[Tuple[AtomKey, Any]] = [
            ((_VAL, value), value) for value in named]
        if not named:
            atoms.append(((_OTHER,), base))
        return atoms
    if domain is not None:
        allowed = list(dict.fromkeys(domain))
        atoms = [((_VAL, value), value) for value in named if value in allowed]
        rest = [value for value in allowed if value not in named]
        if rest:
            atoms.append(((_OTHER,), rest[0]))
        return atoms
    atoms = [((_VAL, value), value) for value in named]
    taken = {int(value) for value in named}
    candidate = 0 if not is_mac else 1
    while candidate in taken:
        candidate += 1
    rep: Any = MacAddress(candidate) if is_mac else candidate
    atoms.append(((_OTHER,), rep))
    return atoms


# ----------------------------------------------------------------------
# Subpartitions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HeaderClass:
    """One inhabited equivalence class of a subpartition.

    ``key`` names the atom chosen for every split field;
    ``representative`` is a concrete packet inside the class. Every
    installed match under consideration is constant across the class, so
    the representative's table lookup speaks for every packet in it.
    """

    key: Tuple[Tuple[str, AtomKey], ...]
    representative: Packet


class Subpartition:
    """The equivalence classes of ``base`` induced by a rule set's matches.

    Only fields constrained by at least one rule are split; fields
    constrained by ``base`` alone are fixed to a representative value,
    and wholly unconstrained fields are left unset (they cannot
    discriminate). ``port_domain`` restricts the ingress-port dimension
    to a finite population — the committed-traffic check passes the real
    edge ports. Construction raises :class:`ClassBudgetExceeded` when
    the class count would pass ``budget``.
    """

    def __init__(self, base: HeaderSpace, rules: Sequence[FlowRule], *,
                 port_domain: Optional[Sequence[int]] = None,
                 budget: int = DEFAULT_CLASS_BUDGET):
        self.base = base
        overlapping = [rule for rule in rules
                       if rule.match.intersect(base) is not None]
        constraints: Dict[str, List[Constraint]] = {}
        for rule in overlapping:
            for fieldname, constraint in rule.match.items():
                constraints.setdefault(fieldname, []).append(constraint)
        if port_domain is not None:
            constraints.setdefault("port", [])
        self._field_atoms: Dict[str, List[Tuple[AtomKey, Any]]] = {}
        self._relevant_prefixes: Dict[str, List[IPv4Prefix]] = {}
        total = 1
        for fieldname in sorted(constraints):
            values = constraints[fieldname]
            base_value = base.get(fieldname)
            if fieldname in IP_FIELDS:
                prefixes = [value for value in values
                            if isinstance(value, IPv4Prefix)]
                atoms_raw = _prefix_atoms(
                    prefixes,
                    base_value if isinstance(base_value, IPv4Prefix) else None)
                atoms = [(key, rep) for key, rep in atoms_raw]
                clipped = []
                for prefix in prefixes:
                    cut = (prefix if base_value is None
                           else base_value.intersection(prefix))
                    if cut is not None:
                        clipped.append(cut)
                self._relevant_prefixes[fieldname] = sorted(
                    set(clipped), key=lambda p: -p.length)
            else:
                atoms = _exact_atoms(
                    values, base_value,
                    port_domain if fieldname == "port" else None,
                    is_mac=fieldname in ("srcmac", "dstmac"))
            if not atoms:
                # The base pins this field to a value no atom can reach
                # only when a finite domain excludes it; the space is
                # then uninhabited.
                self._field_atoms = {}
                self._classes: Tuple[HeaderClass, ...] = ()
                return
            self._field_atoms[fieldname] = atoms
            total *= len(atoms)
            if total > budget:
                raise ClassBudgetExceeded(
                    f"{total}+ classes exceed budget {budget}")
        self._fixed: Dict[str, Any] = {}
        for fieldname, constraint in base.items():
            if fieldname in self._field_atoms:
                continue
            if isinstance(constraint, IPv4Prefix):
                self._fixed[fieldname] = constraint.first_address
            else:
                self._fixed[fieldname] = constraint
        self._classes = tuple(self._enumerate())

    def _enumerate(self) -> Iterable[HeaderClass]:
        fields = sorted(self._field_atoms)
        for combo in product(*(self._field_atoms[f] for f in fields)):
            key = tuple((f, atom[0]) for f, atom in zip(fields, combo))
            values = dict(self._fixed)
            for fieldname, (_, rep) in zip(fields, combo):
                if fieldname in IP_FIELDS:
                    values[fieldname] = rep  # address int
                else:
                    values[fieldname] = rep
            yield HeaderClass(key=key, representative=Packet(**values))

    @property
    def classes(self) -> Tuple[HeaderClass, ...]:
        """Every inhabited class, in deterministic (sorted-atom) order."""
        return self._classes

    def classify(self, packet: Packet) -> Optional[Tuple[Tuple[str, AtomKey], ...]]:
        """The class key containing ``packet``, or ``None`` outside ``base``.

        Total on the base region: every packet lands in exactly one
        class, which is what makes the classes a true partition.
        """
        if not self.base.matches(packet):
            return None
        key: List[Tuple[str, AtomKey]] = []
        for fieldname in sorted(self._field_atoms):
            value = packet.get(fieldname)
            if fieldname in IP_FIELDS:
                atom: AtomKey = (_OTHER,)
                if value is not None:
                    for prefix in self._relevant_prefixes[fieldname]:
                        if prefix.contains_address(value):
                            atom = (_PFX, prefix)
                            break
            else:
                named = {rep for k, rep in self._field_atoms[fieldname]
                         if k[0] == _VAL}
                atom = (_VAL, value) if value in named else (_OTHER,)
            key.append((fieldname, atom))
        return tuple(key)


class ClassBudgetExceeded(Exception):
    """A subpartition would enumerate more classes than its budget."""


# ----------------------------------------------------------------------
# Committed traffic
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CommittedSpace:
    """Traffic the control plane has promised to carry.

    One (VMAC tag, FEC prefix) pair plus the finite set of ingress ports
    whose participants hold a best route for the prefix — their border
    routers stamp exactly this tag on exactly this traffic, so the
    installed table must not let it fall to the miss or the catch-all
    drop.
    """

    label: str
    space: HeaderSpace
    ports: Tuple[int, ...]


def committed_spaces_from_controller(controller: Any) -> List[CommittedSpace]:
    """Derive the committed-traffic population from live controller state.

    Walks the allocator's group and fast-path assignments prefix by
    prefix (an ephemeral override retags only its own prefix, so each
    prefix is attributed to the tag its senders actually stamp) and
    admits a sender's switch ports only when the route server gives it a
    best route — a sender without one never reaches the fabric.
    """
    allocator = controller.allocator
    prefixes: Set[IPv4Prefix] = set()
    for group in allocator.groups():
        prefixes.update(group.prefixes)
    prefixes.update(allocator.ephemeral_prefixes())
    spaces: List[CommittedSpace] = []
    for prefix in sorted(prefixes):
        vmac = allocator.vmac_for_prefix(prefix)
        if vmac is None:
            continue
        ports: List[int] = []
        for participant in controller.topology.participants():
            if participant.is_remote:
                continue
            if controller.route_server.best_route_for(
                    participant.name, prefix) is None:
                continue
            ports.extend(participant.switch_ports)
        if not ports:
            continue
        spaces.append(CommittedSpace(
            label=f"{vmac}->{prefix}",
            space=HeaderSpace(dstmac=vmac, dstip=prefix),
            ports=tuple(sorted(set(ports)))))
    return spaces


# ----------------------------------------------------------------------
# The verifier
# ----------------------------------------------------------------------

#: Cache key of one state diagnostic.
_DiagKey = Tuple[Any, ...]


def _winner(table: Any, packet: Packet) -> Any:
    """First-match lookup over a :class:`FlowTable` or a `Classifier`.

    The multi-switch partitioner emits per-switch ``Classifier`` tables
    (``first_match``); the live big-switch table is a ``FlowTable``
    (``lookup``) — the loop walk accepts either.
    """
    first_match = getattr(table, "first_match", None)
    if first_match is not None:
        return first_match(packet)
    return table.lookup(packet)


def _diag_sort_key(diag: Diagnostic) -> Tuple[Any, ...]:
    location = diag.location
    return (diag.check_id, location.participant,
            location.clause_index if location.clause_index is not None else -1,
            diag.message)


class DataplaneVerifier:
    """Incremental SDX010-SDX014 verification of one installed table.

    Attach an instance as a :class:`SouthboundEngine` batch observer and
    it re-verifies exactly the rules each apply window touched, keeping
    a diagnostic cache whose rendering is byte-identical to a fresh
    whole-table analysis. ``mode`` mirrors the PR 5 ``statics_mode``
    gate: ``"warn"`` logs error findings, ``"strict"`` rolls the
    offending window's mods back out of the table and raises
    :class:`~repro.exceptions.StaticDataplaneError`.

    ``committed_spaces`` / ``vmac_index`` are zero-argument callables so
    the verifier always sees current allocator and routing state;
    ``topology``/``tables`` enable the multi-switch loop check
    (SDX013) when the table under verification is partitioned.
    """

    def __init__(self, table: Any, *,
                 committed_spaces: Optional[Callable[[], Sequence[CommittedSpace]]] = None,
                 vmac_index: Optional[Callable[[], Mapping[MacAddress, str]]] = None,
                 topology: Optional[Any] = None,
                 tables: Optional[Mapping[str, Any]] = None,
                 mode: str = "warn",
                 switch: str = "table",
                 class_budget: int = DEFAULT_CLASS_BUDGET,
                 telemetry: Optional[Telemetry] = None):
        if mode not in ("off", "warn", "strict"):
            raise ValueError(
                f"dataplane statics mode must be off/warn/strict, got {mode!r}")
        self.table = table
        self.mode = mode
        self.switch = switch
        self.class_budget = class_budget
        self._committed_spaces = committed_spaces or (lambda: ())
        self._vmac_index = vmac_index
        self.topology = topology
        self.tables = tables
        self.telemetry = telemetry if telemetry is not None else get_telemetry()
        registry = self.telemetry.registry
        self._runs_counter = registry.counter(
            "sdx_statics_dataplane_runs_total",
            "Dataplane verification passes (full or incremental)")
        self._checks_counter = registry.counter(
            "sdx_statics_dataplane_checks_total",
            "Individual dataplane check evaluations")
        self._diag_counters = {
            check_id: registry.counter(
                "sdx_statics_dataplane_diagnostics_total",
                "Diagnostics emitted by the dataplane verifier",
                check_id=check_id)
            for check_id in DATAPLANE_CHECK_IDS
        }
        self._classes_counter = registry.counter(
            "sdx_statics_dataplane_classes_total",
            "Equivalence classes enumerated by dataplane verification")
        self._reused_counter = registry.counter(
            "sdx_statics_dataplane_classes_reused_total",
            "Cached equivalence classes reused by incremental verification")
        self._batches_counter = registry.counter(
            "sdx_statics_dataplane_batches_total",
            "Southbound apply windows verified")
        # State diagnostics, keyed so incremental updates replace exactly
        # the findings their rules own.
        self._diags: Dict[_DiagKey, Diagnostic] = {}
        self._rule_classes: Dict[RuleKey, int] = {}
        self._space_snapshot: Dict[str, CommittedSpace] = {}
        self._vmac_snapshot: Set[MacAddress] = set()
        # Apply-window bookkeeping (observer protocol).
        self._window: Optional[List[FlowMod]] = None
        self._inverse: List[FlowMod] = []
        self._window_snapshot: Optional[Tuple[
            Dict[_DiagKey, Diagnostic], Dict[RuleKey, int],
            Dict[str, CommittedSpace], Set[MacAddress]]] = None
        self._pre_window_errors: Set[_DiagKey] = set()
        self.last_report: Optional[StaticsReport] = None
        self.refresh_full()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _build_report(self, extra: Sequence[Diagnostic] = ()) -> StaticsReport:
        ordered = sorted(self._diags.values(), key=_diag_sort_key)
        ordered.extend(sorted(extra, key=_diag_sort_key))
        report = StaticsReport(checks_run=DATAPLANE_CHECK_IDS)
        report.participants_analyzed = 1 if self.tables is None else len(self.tables)
        report.clauses_analyzed = len(self.table.rules)
        report.extend(ordered)
        return report

    def state_report(self) -> StaticsReport:
        """The cached whole-table verdict (no window findings).

        Byte-identical to :func:`analyze_flowtable` over the same table
        and providers — the property the incremental soundness gate
        asserts. Reads reconcile provider drift first: the allocator can
        retire a VMAC or the route server can shift a committed space
        *after* the apply window that installed the affected rules, so
        cached verdicts are refreshed against the current index before
        rendering.
        """
        self._reconcile_providers()
        return self._build_report()

    def _reconcile_providers(self) -> None:
        """Re-verify whatever allocator/route-server drift invalidated."""
        changed = self._changed_vmacs()
        if changed:
            rules = self.table.rules
            affected = {rule_key(rule) for rule in rules
                        if self._references_vmac(rule, changed)}
            if affected:
                self._invalidate_rules(affected)
                index_of: Dict[RuleKey, int] = {}
                for index, rule in enumerate(rules):
                    index_of.setdefault(rule_key(rule), index)
                for key in affected:
                    index = index_of.get(key)
                    if index is not None:
                        self._verify_rule(rules, index)
        self._verify_committed(set())

    # ------------------------------------------------------------------
    # Full and incremental verification
    # ------------------------------------------------------------------

    def refresh_full(self) -> StaticsReport:
        """Recompute every diagnostic from scratch."""
        with self.telemetry.span("statics.dataplane", kind="full"):
            self._diags.clear()
            self._rule_classes.clear()
            self._vmac_snapshot = (set(self._vmac_index())
                                   if self._vmac_index is not None else set())
            rules = self.table.rules
            for index in range(len(rules)):
                self._verify_rule(rules, index)
            self._space_snapshot = {}
            self._verify_committed(set())
            self._verify_loops()
        self._runs_counter.inc()
        report = self._build_report()
        self.last_report = report
        return report

    def verify_delta(self, mods: Sequence[FlowMod]) -> StaticsReport:
        """Re-verify only what ``mods`` can have touched.

        Affected rules are the modded keys, plus every installed rule
        whose match overlaps a modded match (shadowing is a relation
        between overlapping rules, so nothing outside that set can
        change a reachability verdict), plus every rule referencing a
        VMAC whose allocator-index membership changed since the last
        pass (a tag can die or come alive without any FlowMod touching
        the rules that carry it). Committed spaces re-verify when their
        space overlaps a mod or their definition changed since the last
        pass. Returns the post-delta state report plus any
        window-ordering (SDX014) findings for ``mods``.
        """
        with self.telemetry.span("statics.dataplane", kind="delta",
                                 mods=len(mods)):
            mod_spaces = [mod.match for mod in mods]
            affected: Set[RuleKey] = {mod.key for mod in mods}
            rules = self.table.rules
            for rule in rules:
                if any(rule.match.intersect(space) is not None
                       for space in mod_spaces):
                    affected.add(rule_key(rule))
            changed_vmacs = self._changed_vmacs()
            if changed_vmacs:
                for rule in rules:
                    if rule_key(rule) in affected:
                        continue
                    if self._references_vmac(rule, changed_vmacs):
                        affected.add(rule_key(rule))
            reused = sum(count for key, count in self._rule_classes.items()
                         if key not in affected)
            self._reused_counter.inc(reused)
            self._invalidate_rules(affected)
            index_of: Dict[RuleKey, int] = {}
            for index, rule in enumerate(rules):
                index_of.setdefault(rule_key(rule), index)
            for key in affected:
                index = index_of.get(key)
                if index is not None:
                    self._verify_rule(rules, index)
            self._verify_committed(set(mod_spaces))
            self._verify_loops()
        self._runs_counter.inc()
        ordering = list(self._check_phase_order(mods))
        report = self._build_report(extra=ordering)
        self.last_report = report
        return report

    def _changed_vmacs(self) -> Set[MacAddress]:
        """VMACs that entered or left the allocator index since last pass."""
        if self._vmac_index is None:
            return set()
        current = set(self._vmac_index())
        changed = current ^ self._vmac_snapshot
        self._vmac_snapshot = current
        return changed

    @staticmethod
    def _references_vmac(rule: FlowRule, vmacs: Set[MacAddress]) -> bool:
        if rule.match.get("dstmac") in vmacs:
            return True
        return any(action.get("dstmac") in vmacs for action in rule.actions)

    def _invalidate_rules(self, keys: Set[RuleKey]) -> None:
        stale = [diag_key for diag_key in self._diags
                 if diag_key[0] in ("SDX010", "SDX012")
                 and (diag_key[1], diag_key[2]) in keys]
        for diag_key in stale:
            del self._diags[diag_key]
        for key in keys:
            self._rule_classes.pop(key, None)

    # ------------------------------------------------------------------
    # SDX010 + SDX012: per-rule verdicts
    # ------------------------------------------------------------------

    def _reachability(self, rules: Sequence[FlowRule],
                      index: int) -> Tuple[bool, Optional[Packet]]:
        """Whether ``rules[index]`` wins some packet, with a witness.

        Reachable: the witness is a packet the rule wins. Unreachable:
        the witness is a packet in the rule's match that a higher rule
        steals. Budget overrun degrades to the conservative single-cover
        test (no union shadows reported, never a false shadow).
        """
        rule = rules[index]
        earlier = [r for r in rules[:index]
                   if r.match.intersect(rule.match) is not None]
        if not earlier:
            # One implicit class: the whole match region.
            self._rule_classes[rule_key(rule)] = 1
            return True, rule.match.concretise(port=0)
        try:
            partition = Subpartition(rule.match, earlier,
                                     budget=self.class_budget)
        except ClassBudgetExceeded:
            self._rule_classes[rule_key(rule)] = 0
            for other in earlier:
                if other.match.covers(rule.match):
                    return False, rule.match.concretise(port=0)
            return True, None
        self._rule_classes[rule_key(rule)] = len(partition.classes)
        self._classes_counter.inc(len(partition.classes))
        stolen: Optional[Packet] = None
        for cls in partition.classes:
            if any(r.match.matches(cls.representative) for r in earlier):
                if stolen is None:
                    stolen = cls.representative
            else:
                return True, cls.representative
        return False, stolen

    def _verify_rule(self, rules: Sequence[FlowRule], index: int) -> None:
        rule = rules[index]
        key = rule_key(rule)
        self._checks_counter.inc()
        reachable, witness = self._reachability(rules, index)
        if not reachable:
            diag = Diagnostic(
                check_id="SDX010", check_name="shadowed-rule",
                severity=Severity.WARNING,
                location=self._rule_location(rule),
                message=(f"rule [{rule.describe()}] is fully shadowed by "
                         "higher-priority rules and can never win a packet"),
                witness=witness,
                data=(("rule_priority", rule.priority),
                      ("rule_match", rule.match)))
            self._diags[("SDX010", key[0], key[1])] = diag
            self._count(diag)
            return
        index_map = self._vmac_index() if self._vmac_index is not None else None
        if index_map is None:
            return
        self._checks_counter.inc()
        matched = rule.match.get("dstmac")
        if (isinstance(matched, MacAddress) and matched.is_virtual
                and matched not in index_map):
            diag = Diagnostic(
                check_id="SDX012", check_name="dead-vmac",
                severity=Severity.WARNING,
                location=self._rule_location(rule),
                message=(f"rule [{rule.describe()}] matches VMAC {matched} "
                         "which tags no live forwarding equivalence class"),
                data=(("rule_priority", rule.priority),
                      ("rule_match", rule.match),
                      ("vmac", matched), ("kind", "match")))
            self._diags[("SDX012", key[0], key[1], matched, "match")] = diag
            self._count(diag)
        for action in rule.actions:
            rewritten = action.get("dstmac")
            if (isinstance(rewritten, MacAddress) and rewritten.is_virtual
                    and rewritten not in index_map):
                diag = Diagnostic(
                    check_id="SDX012", check_name="dead-vmac",
                    severity=Severity.ERROR,
                    location=self._rule_location(rule),
                    message=(f"rule [{rule.describe()}] rewrites traffic to "
                             f"VMAC {rewritten} with no live next-hop: "
                             "compiled blackhole"),
                    witness=witness,
                    data=(("rule_priority", rule.priority),
                          ("rule_match", rule.match),
                          ("vmac", rewritten), ("kind", "rewrite")))
                self._diags[("SDX012", key[0], key[1], rewritten,
                             "rewrite")] = diag
                self._count(diag)

    def _rule_location(self, rule: FlowRule) -> SourceLocation:
        return SourceLocation(participant=self.switch, direction="rule",
                              clause_index=rule.priority)

    # ------------------------------------------------------------------
    # SDX011: committed traffic vs the table miss
    # ------------------------------------------------------------------

    def _verify_committed(self, mod_spaces: Set[HeaderSpace]) -> None:
        current = {space.label: space for space in self._committed_spaces()}
        previous = self._space_snapshot
        stale = [diag_key for diag_key in self._diags
                 if diag_key[0] == "SDX011" and diag_key[1] not in current]
        for diag_key in stale:
            del self._diags[diag_key]
        for label, committed in current.items():
            unchanged = previous.get(label) == committed
            touched = any(committed.space.intersect(space) is not None
                          for space in mod_spaces)
            if unchanged and not touched and previous:
                continue
            self._diags.pop(("SDX011", label), None)
            self._checks_counter.inc()
            diag = self._check_committed_space(committed)
            if diag is not None:
                self._diags[("SDX011", label)] = diag
                self._count(diag)
        self._space_snapshot = current

    def _check_committed_space(
            self, committed: CommittedSpace) -> Optional[Diagnostic]:
        rules = self.table.rules
        try:
            partition = Subpartition(
                committed.space, rules, port_domain=committed.ports,
                budget=self.class_budget)
        except ClassBudgetExceeded:
            return None
        self._classes_counter.inc(len(partition.classes))
        eaten = 0
        witness: Optional[Packet] = None
        for cls in partition.classes:
            winner = self.table.lookup(cls.representative)
            if winner is None or (winner.is_drop and winner.match.is_wildcard):
                eaten += 1
                if witness is None:
                    witness = cls.representative
        if not eaten:
            return None
        return Diagnostic(
            check_id="SDX011", check_name="committed-miss",
            severity=Severity.ERROR,
            location=SourceLocation(participant=self.switch,
                                    direction="committed"),
            message=(f"committed traffic {committed.label} falls to the "
                     f"table miss or catch-all drop in {eaten} of "
                     f"{len(partition.classes)} traffic class(es)"),
            witness=witness,
            data=(("label", committed.label), ("classes_eaten", eaten),
                  ("classes_total", len(partition.classes))))

    # ------------------------------------------------------------------
    # SDX013: inter-switch forwarding loops
    # ------------------------------------------------------------------

    def _verify_loops(self) -> None:
        if self.topology is None or self.tables is None:
            return
        self._checks_counter.inc()
        stale = [diag_key for diag_key in self._diags
                 if diag_key[0] == "SDX013"]
        for diag_key in stale:
            del self._diags[diag_key]
        macs: Set[MacAddress] = set()
        for table in self.tables.values():
            for rule in table.rules:
                constraint = rule.match.get("dstmac")
                if isinstance(constraint, MacAddress):
                    macs.add(constraint)
        trunk_peer: Dict[Tuple[str, int], Tuple[str, int]] = {}
        for link in self.topology.links:
            trunk_peer[(link.left_switch, link.left_port)] = (
                link.right_switch, link.right_port)
            trunk_peer[(link.right_switch, link.right_port)] = (
                link.left_switch, link.left_port)
        for mac in sorted(macs):
            cycle = self._find_loop(mac, trunk_peer)
            if cycle is None:
                continue
            switches, start = cycle
            witness = Packet(port=start[1], dstmac=mac)
            diag = Diagnostic(
                check_id="SDX013", check_name="fabric-loop",
                severity=Severity.ERROR,
                location=SourceLocation(participant=start[0],
                                        direction="trunk",
                                        clause_index=start[1]),
                message=(f"traffic tagged {mac} loops across switches "
                         f"{' -> '.join(switches)}"),
                witness=witness,
                data=(("dstmac", mac), ("switches", tuple(switches))))
            self._diags[("SDX013", mac)] = diag
            self._count(diag)

    def _find_loop(self, mac: MacAddress,
                   trunk_peer: Dict[Tuple[str, int], Tuple[str, int]],
                   ) -> Optional[Tuple[List[str], Tuple[str, int]]]:
        """Walk trunk forwarding for one tag from every trunk ingress."""
        assert self.tables is not None
        for start in sorted(trunk_peer):
            seen: List[Tuple[str, int]] = []
            hop: Optional[Tuple[str, int]] = start
            while hop is not None:
                if hop in seen:
                    return [s for s, _ in seen[seen.index(hop):]], start
                seen.append(hop)
                switch, in_port = hop
                table = self.tables.get(switch)
                if table is None:
                    break
                probe = Packet(port=in_port, dstmac=mac)
                winner = _winner(table, probe)
                if winner is None or winner.is_drop:
                    break
                out_port = None
                for action in winner.actions:
                    out_port = action.output_port
                    if out_port is not None:
                        break
                if out_port is None:
                    break
                hop = trunk_peer.get((switch, out_port))
        return None

    # ------------------------------------------------------------------
    # SDX014: apply-window phase ordering
    # ------------------------------------------------------------------

    def _check_phase_order(
            self, mods: Sequence[FlowMod]) -> Iterable[Diagnostic]:
        """Flag installs observable *after* a delete in one window.

        :func:`~repro.southbound.engine.schedule_two_phase` guarantees
        every add/modify precedes every delete inside a flush; a delete
        exposed before a later install means some intermediate table
        state may drop or misroute traffic that both the old and new
        tables carry.
        """
        self._checks_counter.inc()
        first_delete: Optional[int] = None
        for position, mod in enumerate(mods):
            if mod.op is FlowModOp.DELETE:
                if first_delete is None:
                    first_delete = position
                continue
            if first_delete is None:
                continue
            diag = Diagnostic(
                check_id="SDX014", check_name="phase-violation",
                severity=Severity.ERROR,
                location=SourceLocation(participant=self.switch,
                                        direction="window",
                                        clause_index=mod.priority),
                message=(f"{mod.op.value} of [{mod.describe()}] observable "
                         f"after a delete at position {first_delete} in the "
                         "same apply window: two-phase ordering violated"),
                data=(("position", position),
                      ("first_delete", first_delete),
                      ("rule_priority", mod.priority),
                      ("rule_match", mod.match)))
            self._count(diag)
            yield diag

    # ------------------------------------------------------------------
    # Southbound observer protocol
    # ------------------------------------------------------------------

    def on_apply_begin(self) -> None:
        """An apply window opens: start accumulating its batches."""
        self._window = []
        self._inverse = []
        self._window_snapshot = (dict(self._diags), dict(self._rule_classes),
                                 dict(self._space_snapshot),
                                 set(self._vmac_snapshot))
        self._pre_window_errors = {
            key for key, diag in self._diags.items()
            if diag.severity is Severity.ERROR}

    def on_batch_pending(self, batch: Sequence[FlowMod]) -> None:
        """Record the inverse of a batch before the table applies it."""
        if self._window is None:
            self.on_apply_begin()
        for mod in batch:
            existing = self.table.rule_for_key(mod.priority, mod.match)
            if mod.op is FlowModOp.DELETE:
                if existing is not None:
                    self._inverse.append(FlowMod.add(existing))
            elif existing is not None:
                self._inverse.append(FlowMod.modify(existing))
            else:
                self._inverse.append(FlowMod.delete(mod.rule))

    def __call__(self, batch: Sequence[FlowMod]) -> None:
        """BatchObserver entry point: accumulate one applied batch."""
        if self._window is None:
            self.on_apply_begin()
        assert self._window is not None
        self._window.extend(batch)

    def on_apply_end(self) -> None:
        """The apply window closed: verify its whole delta at once.

        Verification happens here rather than per batch because an
        in-progress full-table swap is legitimately inconsistent between
        batches; the two-phase schedule only promises safety for the
        window's end state.
        """
        if self._window is None or self.mode == "off":
            self._window = None
            return
        mods = self._window
        self._window = None
        self._batches_counter.inc()
        report = self.verify_delta(mods)
        new_errors = [
            diag for key, diag in self._diags.items()
            if diag.severity is Severity.ERROR
            and key not in self._pre_window_errors
        ]
        new_errors.extend(d for d in report.diagnostics
                          if d.check_id == "SDX014")
        if not new_errors:
            return
        if self.mode == "warn":
            for diag in sorted(new_errors, key=_diag_sort_key):
                logger.warning("dataplane statics: %s", diag.describe())
            return
        # Strict: roll the window back out of the table, restore the
        # cache to its pre-window rendering, and refuse the batch.
        from repro.exceptions import StaticDataplaneError

        for mod in reversed(self._inverse):
            self.table.apply_mod(mod)
        if self._window_snapshot is not None:
            snapshot = self._window_snapshot
            self._diags = dict(snapshot[0])
            self._rule_classes = dict(snapshot[1])
            self._space_snapshot = dict(snapshot[2])
            self._vmac_snapshot = set(snapshot[3])
        worst = sorted(new_errors, key=_diag_sort_key)[0]
        raise StaticDataplaneError(
            f"strict dataplane statics rejected an apply window: "
            f"{len(new_errors)} new error(s), first: {worst.describe()}",
            report=report)

    def _count(self, diag: Diagnostic) -> None:
        counter = self._diag_counters.get(diag.check_id)
        if counter is not None:
            counter.inc()

    def __repr__(self) -> str:
        return (f"DataplaneVerifier(mode={self.mode}, "
                f"{len(self.table.rules)} rules, "
                f"{len(self._diags)} cached diagnostics)")


# ----------------------------------------------------------------------
# Whole-table entry point
# ----------------------------------------------------------------------


def analyze_flowtable(table: Any, *,
                      committed_spaces: Sequence[CommittedSpace] = (),
                      vmac_index: Optional[Mapping[MacAddress, str]] = None,
                      topology: Optional[Any] = None,
                      tables: Optional[Mapping[str, Any]] = None,
                      class_budget: int = DEFAULT_CLASS_BUDGET,
                      telemetry: Optional[Telemetry] = None) -> StaticsReport:
    """One-shot SDX010-SDX013 analysis of an installed flow table.

    Builds a throwaway verifier and returns its state report; the
    incremental path must render byte-identically to this for the same
    table and inputs (the fuzz soundness gate holds it to that).
    """
    spaces = tuple(committed_spaces)
    index = dict(vmac_index) if vmac_index is not None else None
    verifier = DataplaneVerifier(
        table,
        committed_spaces=(lambda: spaces),
        vmac_index=(None if index is None else (lambda: index)),
        topology=topology, tables=tables, mode="off",
        class_budget=class_budget, telemetry=telemetry)
    return verifier.state_report()


def analyze_controller_dataplane(controller: Any, *,
                                 class_budget: int = DEFAULT_CLASS_BUDGET,
                                 telemetry: Optional[Telemetry] = None,
                                 ) -> StaticsReport:
    """Analyze a controller's installed table with live committed state."""
    return analyze_flowtable(
        controller.table,
        committed_spaces=committed_spaces_from_controller(controller),
        vmac_index=controller.allocator.vmac_index(),
        class_budget=class_budget,
        telemetry=telemetry if telemetry is not None else controller.telemetry)
