"""Priority drain, coalescing, and overload handling in RuntimeQueue."""

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.runtime.events import EventClass, RuntimeEvent, classify_update
from repro.runtime.queue import OfferOutcome, RuntimeQueue

_SEQ = iter(range(1, 10_000))


def bgp_event(update):
    return RuntimeEvent(kind=classify_update(update), seq=next(_SEQ),
                        enqueued_wall=0.0, update=update)


def announce(sender="A", prefix="10.0.0.0/24", med=0):
    return bgp_event(Update.announce(sender, IPv4Prefix(prefix), RouteAttributes(
        next_hop=IPv4Address("172.0.0.1"), as_path=AsPath([100]), med=med)))


def withdraw(sender="A", prefix="10.0.0.0/24"):
    return bgp_event(Update.withdraw(sender, IPv4Prefix(prefix)))


def policy(label="p"):
    return RuntimeEvent(kind=EventClass.POLICY, seq=next(_SEQ),
                        enqueued_wall=0.0, apply=lambda c: None, label=label)


class TestPriorityDrain:
    def test_policy_before_withdrawal_before_announcement(self):
        queue = RuntimeQueue()
        queue.offer(announce(sender="A"))
        queue.offer(withdraw(sender="B"))
        queue.offer(policy())
        kinds = [event.kind for event in queue.pop(3)]
        assert kinds == [EventClass.POLICY, EventClass.WITHDRAWAL,
                         EventClass.ANNOUNCEMENT]

    def test_fifo_within_class(self):
        queue = RuntimeQueue()
        first = announce(sender="A")
        second = announce(sender="B")
        queue.offer(first)
        queue.offer(second)
        assert [e.seq for e in queue.pop(2)] == [first.seq, second.seq]

    def test_pop_respects_limit(self):
        queue = RuntimeQueue()
        for sender in "ABCD":
            queue.offer(announce(sender=sender))
        assert len(queue.pop(3)) == 3
        assert queue.depth == 1


class TestCoalescing:
    def test_latest_update_wins(self):
        queue = RuntimeQueue()
        queue.offer(announce(med=1))
        latest = announce(med=2)
        assert queue.offer(latest) is OfferOutcome.COALESCED
        (event,) = queue.pop(10)
        assert event.update is latest.update
        assert event.absorbed == 1
        assert queue.coalesced_total == 1

    def test_coalesced_event_keeps_queue_position(self):
        queue = RuntimeQueue()
        first = announce(sender="A")
        queue.offer(first)
        queue.offer(announce(sender="B"))
        queue.offer(announce(sender="A", med=9))  # coalesces into first
        seqs = [e.seq for e in queue.pop(10)]
        assert seqs[0] == first.seq

    def test_class_migration_moves_to_new_class_tail(self):
        queue = RuntimeQueue()
        queue.offer(withdraw(sender="B", prefix="10.0.9.0/24"))
        queue.offer(announce(sender="A"))
        assert queue.offer(withdraw(sender="A")) is OfferOutcome.COALESCED
        events = queue.pop(10)
        assert [e.kind for e in events] == [EventClass.WITHDRAWAL,
                                            EventClass.WITHDRAWAL]
        # The migrated event joined the withdrawal tail, behind B's.
        assert events[0].update.sender == "B"
        assert events[1].update.sender == "A"
        assert queue.depth_of(EventClass.ANNOUNCEMENT) == 0

    def test_coalescing_works_while_full(self):
        queue = RuntimeQueue(max_depth=1)
        queue.offer(announce(med=1))
        assert queue.offer(announce(med=2)) is OfferOutcome.COALESCED
        assert queue.depth == 1

    def test_disabled_coalescing_keeps_every_event(self):
        queue = RuntimeQueue(coalesce=False)
        queue.offer(announce(med=1))
        queue.offer(announce(med=2))
        assert queue.depth == 2
        assert queue.coalesced_total == 0


class TestOverload:
    def test_full_refuses_without_admitting(self):
        queue = RuntimeQueue(max_depth=1)
        queue.offer(announce(sender="A"))
        outcome = queue.offer(announce(sender="B"))
        assert outcome is OfferOutcome.FULL
        assert queue.depth == 1
        assert queue.offered_total == 1

    def test_shed_oldest_drops_lowest_priority_first(self):
        queue = RuntimeQueue()
        queue.offer(policy())
        queue.offer(withdraw(sender="B"))
        old = announce(sender="A")
        queue.offer(old)
        queue.offer(announce(sender="C", prefix="10.0.5.0/24"))
        shed = queue.shed_oldest()
        assert shed.seq == old.seq
        assert shed.kind is EventClass.ANNOUNCEMENT
        assert queue.depth == 3

    def test_shed_empty_queue_returns_none(self):
        assert RuntimeQueue().shed_oldest() is None


class TestNoCoalesceOrdering:
    """Regression tests: with coalescing off, priority drain is unsound
    (a withdrawal could overtake an earlier same-key announcement), so
    the queue must fall back to one global FIFO."""

    def test_same_key_events_do_not_collide(self):
        queue = RuntimeQueue(coalesce=False)
        queue.offer(announce())
        queue.offer(withdraw())
        queue.offer(announce(med=5))
        assert queue.depth == 3
        assert len(queue.pop(10)) == 3

    def test_global_fifo_across_classes(self):
        queue = RuntimeQueue(coalesce=False)
        first = announce()
        second = withdraw()
        third = announce(med=5)
        for event in (first, second, third):
            queue.offer(event)
        assert [e.seq for e in queue.pop(10)] == [
            first.seq, second.seq, third.seq]

    def test_policy_events_also_fifo(self):
        queue = RuntimeQueue(coalesce=False)
        early = announce()
        late = policy()
        queue.offer(early)
        queue.offer(late)
        assert [e.seq for e in queue.pop(10)] == [early.seq, late.seq]
