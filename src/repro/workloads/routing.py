"""Prefix pools and AS-path synthesis for the synthetic routing tables.

The prefix pool hands out non-overlapping /24s and /16s drawn from the
address space the real default-free zone occupies (avoiding the ranges
the SDX itself reserves: the 172.0/16 peering LAN and 172.16/16 VNH
pool). AS paths are synthesised with realistic lengths — the mean
observed AS-path length in the DFZ is about 4 hops.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Sequence

from repro.bgp.asn import AsPath
from repro.net.addresses import IPv4Prefix
from repro.workloads.seeding import SeedLike, make_rng

#: First octets usable for synthetic prefixes (public-ish, clear of the
#: simulation's own 10/8, 172/12, and multicast space).
_FIRST_OCTETS = [o for o in range(16, 220) if o not in (172, 192, 198)]


class PrefixPool:
    """A deterministic source of distinct, non-overlapping prefixes."""

    def __init__(self, lengths: Sequence[int] = (24, 16), seed: SeedLike = 0):
        for length in lengths:
            if not 9 <= length <= 28:
                raise ValueError(f"unsupported pool prefix length {length}")
        self._lengths = tuple(lengths)
        self._rng = make_rng(seed)
        self._iter = self._generate()

    def _generate(self) -> Iterator[IPv4Prefix]:
        # Walk /16 blocks; carve each into either one /16 or its /24s so
        # blocks never overlap across lengths.
        for first in _FIRST_OCTETS:
            for second in range(256):
                block = IPv4Prefix(network=(first << 24) | (second << 16),
                                   length=16)
                length = self._rng.choice(self._lengths)
                if length <= 16:
                    yield block
                else:
                    yield from block.subnets(length)

    def take(self, count: int) -> List[IPv4Prefix]:
        """The next ``count`` distinct prefixes."""
        out = []
        for _ in range(count):
            try:
                out.append(next(self._iter))
            except StopIteration:  # pragma: no cover - pool is ~3M prefixes
                raise ValueError("prefix pool exhausted") from None
        return out


def synthesize_as_path(origin_asn: int, first_hop_asn: int,
                       rng: random.Random, *, min_length: int = 1,
                       mean_extra_hops: float = 2.0) -> AsPath:
    """A plausible AS path from an IXP participant to an origin.

    The path starts at ``first_hop_asn`` (the announcing participant),
    ends at ``origin_asn``, and has a geometric number of intermediate
    transit hops drawn from the 64512-65000 private range.
    """
    hops = [first_hop_asn]
    extra = 0
    while rng.random() < mean_extra_hops / (mean_extra_hops + 1):
        extra += 1
        if extra > 6:
            break
    for _ in range(max(min_length - 1, extra)):
        hops.append(rng.randrange(64512, 65000))
    if origin_asn != first_hop_asn:
        hops.append(origin_asn)
    return AsPath(hops)
