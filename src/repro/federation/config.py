"""JSON configuration for whole federations.

Extends the single-exchange config schema of :mod:`repro.config` with an
``exchanges`` list, multi-exchange participant presence, prefix origins,
and per-exchange route/policy entries::

    {
      "version": 1,
      "exchanges": ["IXP-A", "IXP-B"],
      "participants": [
        {"name": "AS1", "asn": 65001, "exchanges": ["IXP-A", "IXP-B"]},
        {"name": "AS2", "asn": 65002, "exchanges": ["IXP-A"], "ports": 2}
      ],
      "origins": [{"prefix": "10.0.0.0/24", "owner": "AS2"}],
      "routes": [
        {"exchange": "IXP-A", "sender": "AS2",
         "prefix": "10.0.0.0/24", "as_path": [65002]}
      ],
      "policies": [
        {"exchange": "IXP-A", "participant": "AS1", "direction": "out",
         "clause": {"match": {...}, "fwd": "AS2"}}
      ]
    }

Policy clauses reuse the clause encoding of :mod:`repro.config`
verbatim, so single-exchange configs lift into a federation by tagging
each route and policy with its exchange. ``repro lint-policies`` accepts
either shape and dispatches on the ``exchanges`` key.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.bgp.asn import AsPath
from repro.config import CONFIG_VERSION, ConfigError, clause_to_json, clause_to_policy
from repro.exceptions import PolicyError, ReproError
from repro.net.addresses import IPv4Prefix
from repro.statics.diagnostics import (
    Diagnostic,
    Severity,
    SourceLocation,
    StaticsReport,
)


def federation_from_config(document: Mapping[str, Any],
                           **federation_kwargs: Any):
    """Build (but do not start) a federation from a config document.

    Raises :class:`~repro.config.ConfigError` on version or shape
    problems; policy installation errors propagate as the usual
    :class:`~repro.exceptions.PolicyError` /
    :class:`~repro.exceptions.StaticPolicyError` (depending on the
    federation's ``statics_mode``).
    """
    from repro.federation.controller import FederatedController

    version = document.get("version")
    if version != CONFIG_VERSION:
        raise ConfigError(f"unsupported config version {version!r} "
                          f"(expected {CONFIG_VERSION})")
    exchanges = list(document.get("exchanges", ()))
    if not exchanges:
        raise ConfigError("federated config needs a non-empty 'exchanges' list")
    federation = FederatedController(**federation_kwargs)
    for name in exchanges:
        federation.add_exchange(str(name))
    for spec in document.get("participants", ()):
        attended = spec.get("exchanges")
        federation.add_participant(
            spec["name"], spec["asn"],
            exchanges=[str(name) for name in attended] if attended else None,
            ports=spec.get("ports", 1),
            ports_by_exchange=spec.get("ports_by_exchange"))
    for entry in document.get("origins", ()):
        federation.register_origin(
            IPv4Prefix(entry["prefix"]), entry["owner"])
    for route in document.get("routes", ()):
        federation.announce_route(
            route["exchange"], route["sender"], IPv4Prefix(route["prefix"]),
            AsPath(route["as_path"]),
            med=route.get("med", 0),
            local_pref=route.get("local_pref", 100),
            communities=tuple(tuple(community)
                              for community in route.get("communities", ())))
    for item in document.get("policies", ()):
        policy = clause_to_policy(dict(item["clause"]))
        if item["direction"] == "out":
            federation.add_outbound(
                item["exchange"], item["participant"], policy)
        elif item["direction"] == "in":
            federation.add_inbound(
                item["exchange"], item["participant"], policy)
        else:
            raise ConfigError(
                f"policy direction must be 'in' or 'out', "
                f"got {item['direction']!r}")
    return federation


def lint_federated_config(document: Mapping[str, Any], *,
                          telemetry=None) -> StaticsReport:
    """Lint a federated config document end to end.

    Builds the federation with statics off (so the full picture is
    assembled before any gating), then runs
    :func:`repro.federation.checks.analyze_federation` over it. Policy
    entries that installation rejects become SDX006-style error
    diagnostics rather than aborting the lint, mirroring
    :func:`repro.statics.analyzer.lint_config`.
    """
    from repro.federation.checks import analyze_federation

    stripped: Dict[str, Any] = dict(document)
    policies = list(document.get("policies", ()))
    stripped["policies"] = []
    federation = federation_from_config(
        stripped, statics_mode="off", with_dataplane=False,
        telemetry=telemetry)
    install_findings: List[Diagnostic] = []
    for index, item in enumerate(policies):
        try:
            policy = clause_to_policy(dict(item["clause"]))
            if item["direction"] == "out":
                federation.add_outbound(
                    item["exchange"], item["participant"], policy)
            elif item["direction"] == "in":
                federation.add_inbound(
                    item["exchange"], item["participant"], policy)
            else:
                raise ConfigError(
                    f"policy direction must be 'in' or 'out', "
                    f"got {item['direction']!r}")
        except (PolicyError, ReproError, KeyError, TypeError) as error:
            install_findings.append(Diagnostic(
                check_id="SDX006", check_name="field-sanity",
                severity=Severity.ERROR,
                location=SourceLocation(
                    participant=str(item.get("participant", "?")),
                    direction=item.get("direction"),
                    document_index=index),
                message=f"federated policy rejected at installation: {error}",
                data=(("exchange", item.get("exchange")),)))
    report = analyze_federation(federation, telemetry=telemetry)
    report.clauses_analyzed += len(install_findings)
    report.extend(install_findings)
    return report


def export_federation_config(federation) -> Dict[str, Any]:
    """Snapshot a federation's configuration as a JSON-safe dict.

    The inverse of :func:`federation_from_config` over everything the
    federated surface installs (compiler-derived state is recomputed on
    load, exactly as in the single-exchange exporter).
    """
    topology = federation.topology
    participants = []
    for name in topology.names():
        spec = topology.participant(name)
        entry: Dict[str, Any] = {
            "name": spec.name,
            "asn": spec.asn,
            "exchanges": list(spec.exchanges()),
        }
        ports = {presence.exchange: presence.ports for presence in spec.presence}
        if len(set(ports.values())) == 1:
            only = next(iter(ports.values()))
            if only != 1:
                entry["ports"] = only
        else:
            entry["ports_by_exchange"] = ports
        participants.append(entry)
    origins = [
        {"prefix": str(prefix), "owner": owner}
        for prefix, owner in topology.origins()
    ]
    routes = []
    policies = []
    for exchange in federation.exchanges():
        controller = federation.exchange(exchange)
        for name in topology.names():
            if exchange not in topology.presence(name):
                continue
            for entry in controller.route_server.routes_from(name):
                attributes = entry.attributes
                route: Dict[str, Any] = {
                    "exchange": exchange,
                    "sender": name,
                    "prefix": str(entry.prefix),
                    "as_path": list(attributes.as_path.asns),
                }
                if attributes.med:
                    route["med"] = attributes.med
                if attributes.local_pref != 100:
                    route["local_pref"] = attributes.local_pref
                if attributes.communities:
                    route["communities"] = sorted(
                        list(community)
                        for community in attributes.communities)
                routes.append(route)
            participant = controller.topology.participant(name)
            for direction, clauses in (
                    ("out", participant.outbound_clauses()
                     if not participant.is_remote else ()),
                    ("in", participant.inbound_clauses())):
                for clause in clauses:
                    policies.append({
                        "exchange": exchange,
                        "participant": name,
                        "direction": direction,
                        "clause": clause_to_json(clause)})
    return {
        "version": CONFIG_VERSION,
        "exchanges": list(federation.exchanges()),
        "participants": participants,
        "origins": origins,
        "routes": routes,
        "policies": policies,
    }


def save_federation_config(federation,
                           path: Union[str, pathlib.Path]) -> None:
    """Write a federation's configuration to a JSON file."""
    pathlib.Path(path).write_text(
        json.dumps(export_federation_config(federation),
                   indent=2, sort_keys=True) + "\n")


def load_federation_config(path: Union[str, pathlib.Path],
                           **federation_kwargs: Any):
    """Rebuild a federation from a JSON file."""
    document = json.loads(pathlib.Path(path).read_text())
    return federation_from_config(document, **federation_kwargs)


def is_federated_config(document: Mapping[str, Any]) -> bool:
    """True when a config document describes a federation."""
    return "exchanges" in document


__all__ = [
    "export_federation_config",
    "federation_from_config",
    "is_federated_config",
    "lint_federated_config",
    "load_federation_config",
    "save_federation_config",
]
