"""Tests for the differential fuzzing / verification subsystem."""
