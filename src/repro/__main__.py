"""Command-line entry point: regenerate any table or figure directly.

Examples::

    python -m repro table1
    python -m repro fig6 --participants 100 200 300
    python -m repro fig10 --updates 100
    python -m repro replay --participants 80 --prefixes 1000 --updates 200
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.experiments.harness import (
    run_compilation_sweep,
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_fig9,
    run_fig10,
    run_table1,
)
from repro.experiments.metrics import render_series, render_table

EXPERIMENTS = {
    "table1": "Table 1 - IXP dataset statistics",
    "fig5a": "Figure 5a - application-specific peering timeline",
    "fig5b": "Figure 5b - wide-area load balance timeline",
    "fig6": "Figure 6 - prefix groups vs prefixes",
    "fig7": "Figure 7 - flow rules vs prefix groups",
    "fig8": "Figure 8 - compilation time vs prefix groups",
    "fig9": "Figure 9 - additional rules vs burst size",
    "fig10": "Figure 10 - per-update processing CDF",
    "replay": "burst-aware trace replay (Section 4.3.2 scheduling)",
    "check": "load a JSON exchange config, compile it, report",
    "lint-policies": "static policy verifier: lint configs (single-exchange "
                     "or federated), examples, or generated workloads "
                     "pre-compilation",
    "lint-dataplane": "dataplane verifier: SDX010-SDX013 analysis of the "
                      "flow rules a compiled workload actually installs",
    "stats": "run a small workload, dump the telemetry metrics registry",
    "trace": "run a small workload, print the pipeline span tree",
    "fuzz": "differential fuzzing of the update pipeline "
            "(--federation: multi-exchange cross-validation)",
    "soak": "drive a burst trace through the control-plane runtime "
            "(--chaos: seeded BGP session fault injection)",
    "monitor": "closed-loop data-plane monitoring: snapshot, watch, "
               "or smoke-test a reactive scenario",
    "profile": "phase-attributed profiling of a compile+update workload "
               "(tables, flamegraph folded stacks, scoped cProfile)",
    "bench": "benchmark families: run, diff against committed baselines, "
             "record new baselines, summarize results",
}


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the SDX paper's evaluation results.")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiments")

    def common(name: str) -> argparse.ArgumentParser:
        command = sub.add_parser(name, help=EXPERIMENTS[name])
        command.add_argument("--seed", type=int, default=0)
        return command

    table1 = common("table1")
    table1.add_argument("--scale", type=float, default=0.002,
                        help="dataset scale factor (default 0.002)")

    for name in ("fig5a", "fig5b"):
        fig5 = common(name)
        fig5.add_argument("--time-scale", type=float, default=0.1,
                          help="timeline compression (1.0 = real time)")

    fig6 = common("fig6")
    fig6.add_argument("--participants", type=int, nargs="+",
                      default=[100, 200, 300])
    fig6.add_argument("--prefixes", type=int, nargs="+",
                      default=[5_000, 10_000, 15_000, 20_000, 25_000])

    for name in ("fig7", "fig8"):
        sweep = common(name)
        sweep.add_argument("--participants", type=int, nargs="+",
                           default=[100, 200, 300])
        sweep.add_argument("--prefixes", type=int, nargs="+",
                           default=[2_000, 5_000, 10_000, 15_000])

    fig9 = common("fig9")
    fig9.add_argument("--participants", type=int, nargs="+",
                      default=[100, 200, 300])
    fig9.add_argument("--bursts", type=int, nargs="+",
                      default=[1, 5, 10, 20, 40, 60, 80, 100])
    fig9.add_argument("--prefixes", type=int, default=2_000)

    fig10 = common("fig10")
    fig10.add_argument("--participants", type=int, nargs="+",
                       default=[100, 200, 300])
    fig10.add_argument("--updates", type=int, default=150)
    fig10.add_argument("--prefixes", type=int, default=2_000)

    check = sub.add_parser("check", help=EXPERIMENTS["check"])
    check.add_argument("config", help="path to a JSON exchange config")

    lint = sub.add_parser("lint-policies", help=EXPERIMENTS["lint-policies"])
    lint.add_argument("config", nargs="*",
                      help="JSON exchange config file(s) to lint")
    lint.add_argument("--examples", nargs="?", const="examples", default=None,
                      metavar="DIR",
                      help="lint every example app exposing build() in DIR "
                           "(default: examples/)")
    lint.add_argument("--workload", action="store_true",
                      help="lint a generated exchange running the paper's "
                           "application policies (peering + inbound TE)")
    lint.add_argument("--defects", action="store_true",
                      help="inject one seeded defect per class into a "
                           "Section 6.1 workload and require the analyzer "
                           "to detect every one")
    lint.add_argument("--federation-defects", action="store_true",
                      help="inject a seeded inter-exchange loop and a "
                           "stitched blackhole into a generated federation "
                           "and require SDX008/SDX009 to detect both")
    lint.add_argument("--exchanges", type=int, default=2,
                      help="exchanges in the generated federation "
                           "(with --federation-defects; default 2)")
    lint.add_argument("--participants", type=int, default=12)
    lint.add_argument("--prefixes", type=int, default=80)
    lint.add_argument("--seed", type=int, default=0)
    lint.add_argument("--json", action="store_true",
                      help="emit the merged report as JSON on stdout")
    lint.add_argument("--output", default=None, metavar="FILE",
                      help="also write the JSON report to FILE")

    lintdp = sub.add_parser("lint-dataplane",
                            help=EXPERIMENTS["lint-dataplane"])
    lintdp.add_argument("--workload", action="store_true",
                        help="compile a generated exchange running the "
                             "paper's application policies and verify the "
                             "installed flow table")
    lintdp.add_argument("--defects", action="store_true",
                        help="inject one seeded dataplane defect per class "
                             "(compiled blackhole, shadowed install) into a "
                             "compiled workload and require the verifier to "
                             "detect every one")
    lintdp.add_argument("--participants", type=int, default=12)
    lintdp.add_argument("--prefixes", type=int, default=80)
    lintdp.add_argument("--seed", type=int, default=0)
    lintdp.add_argument("--json", action="store_true",
                        help="emit the merged report as JSON on stdout")
    lintdp.add_argument("--output", default=None, metavar="FILE",
                        help="also write the JSON report to FILE")

    replay = common("replay")
    replay.add_argument("--participants", type=int, default=80)
    replay.add_argument("--prefixes", type=int, default=1_000)
    replay.add_argument("--updates", type=int, default=200)
    replay.add_argument("--gap", type=float, default=10.0,
                        help="background-recompilation gap threshold (s)")

    def telemetry_command(name: str) -> argparse.ArgumentParser:
        command = common(name)
        command.add_argument("--participants", type=int, default=20)
        command.add_argument("--prefixes", type=int, default=200)
        command.add_argument("--updates", type=int, default=20)
        return command

    stats = telemetry_command("stats")
    stats.add_argument("--format", choices=("table", "json", "prometheus"),
                       default="table",
                       help="output format (default: table)")

    trace = telemetry_command("trace")
    trace.add_argument("--json", action="store_true",
                       help="emit the span forest as JSON instead of a tree")

    fuzz = common("fuzz")
    fuzz.add_argument("--scenarios", type=int, default=5,
                      help="independent scenarios to run (default 5)")
    fuzz.add_argument("--steps", type=int, default=12,
                      help="BGP trace steps per scenario (default 12)")
    fuzz.add_argument("--participants", type=int, default=4)
    fuzz.add_argument("--prefixes", type=int, default=4)
    fuzz.add_argument("--policies", type=int, default=5)
    fuzz.add_argument("--artifact-dir", default=None,
                      help="directory for replayable failure artifacts")
    fuzz.add_argument("--time-budget", type=float, default=None,
                      help="wall-clock budget in seconds")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip trace minimisation on failure")
    fuzz.add_argument("--replay", default=None, metavar="ARTIFACT",
                      help="replay a saved failure artifact instead of "
                           "fuzzing")
    fuzz.add_argument("--runtime", action="store_true",
                      help="also replay each scenario through the "
                           "control-plane runtime and check equivalence")
    fuzz.add_argument("--statics", action="store_true",
                      help="also cross-validate static-analyzer verdicts "
                           "(dead clauses, route-less forwards) against "
                           "the reference interpreter")
    fuzz.add_argument("--dataplane", action="store_true",
                      help="also cross-validate the dataplane verifier: "
                           "incremental-vs-full byte identity plus the "
                           "SDX010-SDX013 witness contracts on every "
                           "trace step")
    fuzz.add_argument("--federation", action="store_true",
                      help="fuzz multi-exchange federations instead: "
                           "SDX008/SDX009 witness contracts plus the "
                           "real-vs-reference federated walk comparison")
    fuzz.add_argument("--exchanges", type=int, default=2,
                      help="exchanges per federated scenario "
                           "(with --federation; default 2)")

    soak = common("soak")
    soak.add_argument("--participants", type=int, default=None,
                      help="exchange size (default 20; 4 in --chaos mode)")
    soak.add_argument("--prefixes", type=int, default=None,
                      help="prefix count (default 200; 4 in --chaos mode)")
    soak.add_argument("--updates", type=int, default=1_000,
                      help="total updates to push (default 1000)")
    soak.add_argument("--burst-size", type=int, default=100,
                      help="updates per burst (default 100)")
    soak.add_argument("--hot-prefixes", type=int, default=16,
                      help="size of the churning prefix set (default 16)")
    soak.add_argument("--rate", type=float, default=None,
                      help="target update rate (updates/s); default: "
                           "as fast as possible")
    soak.add_argument("--queue-depth", type=int, default=1_024)
    soak.add_argument("--batch-size", type=int, default=64)
    soak.add_argument("--overload", default="block",
                      choices=("block", "shed-oldest", "degrade"))
    soak.add_argument("--no-coalesce", action="store_true",
                      help="disable per-(participant, prefix) coalescing")
    soak.add_argument("--threaded", action="store_true",
                      help="run the runtime's worker thread instead of "
                           "the deterministic step-driven mode")
    soak.add_argument("--chaos", action="store_true",
                      help="run the BGP session fault-injection soak "
                           "instead of the clean burst soak")
    soak.add_argument("--scenarios", type=int, default=3,
                      help="chaos: independent scenarios (default 3)")
    soak.add_argument("--steps", type=int, default=16,
                      help="chaos: trace steps per scenario (default 16)")
    soak.add_argument("--policies", type=int, default=4,
                      help="chaos: generated policies per scenario")
    soak.add_argument("--faults", type=int, default=6,
                      help="chaos: faults per schedule (default 6, one "
                           "of each class)")
    soak.add_argument("--fault-kinds", default=None,
                      help="chaos: comma-separated subset of the fault "
                           "classes (default: all six)")
    soak.add_argument("--artifact-dir", default=None,
                      help="chaos: directory for replayable failure "
                           "artifacts")
    soak.add_argument("--time-budget", type=float, default=None,
                      help="chaos: wall-clock budget in seconds")
    soak.add_argument("--no-shrink", action="store_true",
                      help="chaos: skip schedule/trace minimisation on "
                           "failure")
    soak.add_argument("--replay", default=None, metavar="ARTIFACT",
                      help="chaos: replay a saved chaos artifact instead "
                           "of soaking")

    monitor = common("monitor")
    monitor.add_argument("--scenario", choices=("shifting", "skewed"),
                         default="shifting",
                         help="shifting: reactive inbound balancing; "
                              "skewed: heavy-hitter offload")
    monitor.add_argument("--watch", action="store_true",
                         help="print one line per monitor sample as the "
                              "scenario runs (instead of only the final "
                              "snapshot)")
    monitor.add_argument("--duration", type=float, default=40.0,
                         help="simulated seconds to drive (default 40)")
    monitor.add_argument("--shift-time", type=float, default=10.0,
                         help="when the traffic shift/surge hits (default 10)")
    monitor.add_argument("--cadence", type=float, default=1.0,
                         help="monitor sampling cadence in simulated "
                              "seconds (default 1.0)")
    monitor.add_argument("--statics-mode", default="strict",
                         choices=("off", "warn", "strict"),
                         help="statics gate for reactive policy changes "
                              "(default strict)")
    monitor.add_argument("--json", action="store_true",
                         help="emit JSON (watch lines become JSON objects)")
    monitor.add_argument("--output", default=None, metavar="FILE",
                         help="also write the JSON report to FILE")
    monitor.add_argument("--smoke", action="store_true",
                         help="exit 1 unless the reactive app converges "
                              "(the CI monitor-smoke gate)")
    monitor.add_argument("--converge-within", type=int, default=8,
                         metavar="N",
                         help="runtime steps allowed between the shift and "
                              "the corrective FlowMod (default 8)")

    profile = common("profile")
    profile.add_argument("--participants", type=int, default=100)
    profile.add_argument("--prefixes", type=int, default=2_000)
    profile.add_argument("--updates", type=int, default=30,
                         help="fast-path updates to drive after the "
                              "initial compilation (default 30)")
    profile.add_argument("--flamegraph", action="store_true",
                         help="emit folded stacks (flamegraph.pl input) "
                              "on stdout; the phase table moves to stderr")
    profile.add_argument("--memory", action="store_true",
                         help="snapshot tracemalloc at span boundaries "
                              "(net/peak bytes per phase)")
    profile.add_argument("--cprofile", default=None, metavar="SPAN",
                         help="capture cProfile scoped to the first "
                              "occurrence of this span (e.g. 'compile')")
    profile.add_argument("--json", action="store_true",
                         help="emit the phase report as JSON")
    profile.add_argument("--output", default=None, metavar="FILE",
                         help="also write the report (JSON) or folded "
                              "stacks to FILE")
    profile.add_argument("--min-coverage", type=float, default=None,
                         metavar="FRACTION",
                         help="exit non-zero unless at least this "
                              "fraction of wall time is attributed to "
                              "named stages")

    bench = sub.add_parser("bench", help=EXPERIMENTS["bench"])
    bench.add_argument("action",
                       choices=("run", "compare", "record-baseline",
                                "results"),
                       help="run families; compare a run against "
                            "committed baselines; record new baselines; "
                            "or summarize benchmarks/results/*.json")
    bench.add_argument("--family", action="append", default=None,
                       metavar="NAME",
                       help="restrict to one family (repeatable; "
                            "default: all)")
    bench.add_argument("--quick", action="store_true",
                       help="run the CI-sized quick subset instead of "
                            "the paper-scale workloads")
    bench.add_argument("--samples", type=int, default=None, metavar="N",
                       help="median-of-N runs per family (default: 3 "
                            "quick, 1 full)")
    bench.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON on stdout")
    bench.add_argument("--output", default=None, metavar="FILE",
                       help="also write the JSON payload to FILE")
    bench.add_argument("--baseline-dir", default=None, metavar="DIR",
                       help="baseline store location (default: "
                            "benchmarks/baselines)")
    bench.add_argument("--results-dir", default=None, metavar="DIR",
                       help="results location (default: "
                            "benchmarks/results)")
    return parser


def _run_table1(args) -> str:
    rows = run_table1(scale=args.scale, seed=args.seed)
    return render_table(
        ["IXP", "prefixes", "updates", "%updated (paper)", "%updated"],
        [[row.profile.name, row.measured_prefixes, row.measured_updates,
          f"{row.profile.fraction_prefixes_updated:.2%}",
          f"{row.measured_fraction_updated:.2%}"] for row in rows])


def _run_fig5(args, runner) -> str:
    series, events = runner(time_scale=args.time_scale)
    header = "\n".join(f"t={when:.0f}s: {label}" for when, label in events)
    body = render_series([series[label] for label in sorted(series)],
                         "time(s)", "Mbps", max_rows=20)
    return header + "\n\n" + body


def _run_sweep(args, value_label: str, value) -> str:
    points = run_compilation_sweep(
        participant_counts=args.participants,
        prefix_counts=args.prefixes, seed=args.seed)
    return render_table(
        ["participants", "prefixes", "prefix groups", value_label],
        [[p.participants, p.prefixes, p.prefix_groups, value(p)]
         for p in points])


def _run_replay(args) -> str:
    from repro.experiments.replay import TraceReplayer
    from repro.workloads.policies import generate_policies, install_assignments
    from repro.workloads.topology import generate_ixp
    from repro.workloads.updates import generate_trace

    ixp = generate_ixp(args.participants, args.prefixes, seed=args.seed)
    controller = ixp.build_controller()
    install_assignments(controller, generate_policies(ixp, seed=args.seed + 1))
    result = controller.start()
    events = generate_trace(ixp, seed=args.seed + 2, max_updates=args.updates)
    stats = TraceReplayer(
        controller, background_gap_seconds=args.gap).replay(events)
    return (f"initial table: {result.flow_rule_count} rules, "
            f"{result.prefix_group_count} groups\n" + stats.summary())


def _telemetry_workload(args):
    """Build a small exchange, drive updates through it, return its controller.

    Shared by the ``stats`` and ``trace`` subcommands: generate an IXP and
    policies, start the controller, replay a short update trace through
    the live pipeline, and finish with one background re-optimisation so
    every stage (ingest, fast path, compile, southbound, flow table) has
    recorded activity.
    """
    from repro.workloads.policies import generate_policies, install_assignments
    from repro.workloads.topology import generate_ixp
    from repro.workloads.updates import generate_trace

    ixp = generate_ixp(args.participants, args.prefixes, seed=args.seed)
    controller = ixp.build_controller()
    install_assignments(controller, generate_policies(ixp, seed=args.seed + 1))
    controller.start()
    events = generate_trace(ixp, seed=args.seed + 2, max_updates=args.updates)
    for event in events:
        controller.submit_update(event.update)
    controller.run_background_recompilation()
    return controller


def _run_stats(args) -> str:
    from repro.telemetry.export import prometheus_exposition, render_json

    controller = _telemetry_workload(args)
    if args.format == "json":
        return render_json(controller.telemetry)
    if args.format == "prometheus":
        return prometheus_exposition(controller.telemetry.registry)
    return controller.telemetry.registry.render()


def _run_trace(args) -> str:
    import json as json_module

    controller = _telemetry_workload(args)
    tracer = controller.telemetry.tracer
    if args.json:
        return json_module.dumps(tracer.span_tree(), indent=2)
    return tracer.render()


def _run_fuzz(args) -> int:
    from repro.verification import FuzzConfig, replay_artifact, run_fuzz

    if args.replay is not None:
        failure = replay_artifact(args.replay)
        if failure is None:
            print(f"replay {args.replay}: no failure reproduced")
            return 0
        print(f"replay {args.replay}: {failure}")
        return 1
    report = run_fuzz(FuzzConfig(
        seed=args.seed, scenarios=args.scenarios, steps=args.steps,
        participants=args.participants, prefixes=args.prefixes,
        policies=args.policies, artifact_dir=args.artifact_dir,
        time_budget_seconds=args.time_budget, shrink=not args.no_shrink,
        runtime=args.runtime, statics=args.statics,
        dataplane=args.dataplane,
        federation=args.federation, exchanges=args.exchanges))
    print(report.summary())
    return 0 if report.ok else 1


def _lint_workload_controller(args):
    """A generated exchange running the paper's application policies."""
    from repro.apps.inbound_te import split_inbound_by_source
    from repro.apps.peering import application_specific_peering
    from repro.workloads.topology import generate_ixp

    ixp = generate_ixp(args.participants, args.prefixes, seed=args.seed)
    controller = ixp.build_controller()
    server = controller.route_server

    # Application-specific peering between the first pair with eligible
    # routes, so the installed forwards survive the BGP join.
    names = [spec.name for spec in ixp.participants]
    for sender in names:
        peer = next(
            (candidate for candidate in names if candidate != sender
             and server.reachable_prefixes(sender, via=candidate)), None)
        if peer is not None:
            application_specific_peering(
                controller.participant(sender), peer,
                applications=("web", "dns"))
            break

    # Inbound traffic engineering on the first multi-port member.
    for spec in ixp.participants:
        if spec.ports >= 2:
            split_inbound_by_source(controller.participant(spec.name))
            break
    return controller


def _lint_defect_run(args):
    """(report, defects, missed) for the seeded-defect recall mode."""
    from repro.statics import analyze_controller
    from repro.workloads.policies import (
        defect_detected,
        defect_documents,
        generate_policies,
        inject_defects,
        install_assignments,
    )
    from repro.workloads.topology import generate_ixp

    ixp = generate_ixp(args.participants, args.prefixes, seed=args.seed)
    controller = ixp.build_controller()
    install_assignments(controller, generate_policies(ixp, seed=args.seed))
    defects = inject_defects(controller, seed=args.seed)
    report = analyze_controller(
        controller, raw_policies=defect_documents(defects))
    missed = [d for d in defects if not defect_detected(d, report)]
    return report, defects, missed


def _lint_federation_defect_run(args):
    """(report, defects, missed) for the federation defect recall mode."""
    from repro.federation import analyze_federation, generate_federated_scenario
    from repro.workloads.policies import (
        defect_detected,
        inject_federation_defects,
    )

    # A random presence assignment occasionally lacks two shared
    # participants with two common exchanges; walk derived seeds until
    # the injectors find their canonical shape.
    last_error: Exception | None = None
    federation = None
    defects = []
    for attempt in range(8):
        scenario = generate_federated_scenario(
            args.seed + attempt, exchanges=args.exchanges,
            participants=max(args.participants, 2 * args.exchanges),
            policies=0)
        federation = scenario.build_controller(with_dataplane=False)
        try:
            defects = inject_federation_defects(federation, seed=args.seed)
            break
        except ValueError as error:
            last_error = error
    else:
        raise SystemExit(f"lint-policies --federation-defects: no suitable "
                         f"federation shape in 8 attempts: {last_error}")
    report = analyze_federation(federation)
    missed = [d for d in defects if not defect_detected(d, report)]
    return report, defects, missed


def _lint_example_targets(directory: str):
    """(label, controller) for every example app exposing ``build()``."""
    import importlib.util
    import pathlib

    targets = []
    for path in sorted(pathlib.Path(directory).glob("*.py")):
        spec = importlib.util.spec_from_file_location(
            f"_lint_example_{path.stem}", path)
        if spec is None or spec.loader is None:
            continue
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        build = getattr(module, "build", None)
        if build is None:
            continue
        targets.append((str(path), build()))
    return targets


def _run_lint(args) -> int:
    import json as json_module

    from repro.statics import analyze_controller, lint_config

    if not (args.config or args.examples or args.workload or args.defects
            or args.federation_defects):
        print("lint-policies: nothing to lint (pass a config file, "
              "--examples, --workload, --defects, or --federation-defects)",
              file=sys.stderr)
        return 2

    defect_labels = ("defects", "federation-defects")
    results = []   # (label, StaticsReport)
    missed_defects = []
    for path in args.config:
        with open(path) as handle:
            document = json_module.loads(handle.read())
        results.append((path, lint_config(document)))
    if args.examples:
        for label, controller in _lint_example_targets(args.examples):
            results.append((label, analyze_controller(controller)))
    if args.workload:
        controller = _lint_workload_controller(args)
        results.append(("workload", analyze_controller(controller)))
    defects = []
    if args.defects:
        report, single_defects, single_missed = _lint_defect_run(args)
        results.append(("defects", report))
        defects.extend(single_defects)
        missed_defects.extend(single_missed)
    if args.federation_defects:
        report, federation_defects, federation_missed = (
            _lint_federation_defect_run(args))
        results.append(("federation-defects", report))
        defects.extend(federation_defects)
        missed_defects.extend(federation_missed)

    payload = {
        "targets": [
            {"target": label, **report.to_dict()} for label, report in results
        ],
    }
    if defects:
        payload["defects"] = {
            "injected": [d.description for d in defects],
            "missed": [d.description for d in missed_defects],
        }
    failed = any(report.has_errors for label, report in results
                 if label not in defect_labels) or bool(missed_defects)
    payload["ok"] = not failed

    rendered = json_module.dumps(payload, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    if args.json:
        print(rendered)
    else:
        for label, report in results:
            print(f"== {label}: {report.summary()}")
            text = report.render()
            if report.diagnostics:
                print(text)
        if defects:
            print(f"== defect recall: {len(defects) - len(missed_defects)}"
                  f"/{len(defects)} detected")
            for defect in missed_defects:
                print(f"  MISSED: {defect.description}")
    return 1 if failed else 0


def _lint_dataplane_defect_run(args):
    """(report, defects, missed) for the dataplane defect recall mode."""
    from repro.statics import analyze_controller_dataplane
    from repro.workloads.policies import (
        defect_detected,
        generate_policies,
        inject_dataplane_defects,
        install_assignments,
    )
    from repro.workloads.topology import generate_ixp

    ixp = generate_ixp(args.participants, args.prefixes, seed=args.seed)
    controller = ixp.build_controller()
    install_assignments(controller, generate_policies(ixp, seed=args.seed))
    controller.start()
    defects = inject_dataplane_defects(controller, seed=args.seed)
    report = analyze_controller_dataplane(controller)
    missed = [d for d in defects if not defect_detected(d, report)]
    return report, defects, missed


def _run_lint_dataplane(args) -> int:
    import json as json_module

    from repro.statics import analyze_controller_dataplane

    if not (args.workload or args.defects):
        print("lint-dataplane: nothing to verify (pass --workload or "
              "--defects)", file=sys.stderr)
        return 2

    results = []   # (label, StaticsReport)
    defects = []
    missed_defects = []
    if args.workload:
        controller = _lint_workload_controller(args)
        controller.start()
        results.append(("workload", analyze_controller_dataplane(controller)))
    if args.defects:
        report, injected, missed = _lint_dataplane_defect_run(args)
        results.append(("defects", report))
        defects.extend(injected)
        missed_defects.extend(missed)

    payload = {
        "targets": [
            {"target": label, **report.to_dict()} for label, report in results
        ],
    }
    if defects:
        payload["defects"] = {
            "injected": [d.description for d in defects],
            "missed": [d.description for d in missed_defects],
        }
    failed = any(report.has_errors for label, report in results
                 if label != "defects") or bool(missed_defects)
    payload["ok"] = not failed

    rendered = json_module.dumps(payload, indent=2)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    if args.json:
        print(rendered)
    else:
        for label, report in results:
            print(f"== {label}: {report.summary()}")
            if report.diagnostics:
                print(report.render())
        if defects:
            print(f"== defect recall: {len(defects) - len(missed_defects)}"
                  f"/{len(defects)} detected")
            for defect in missed_defects:
                print(f"  MISSED: {defect.description}")
    return 1 if failed else 0


def _run_chaos_soak(args) -> int:
    from repro.chaos import (
        ChaosSoakConfig,
        replay_chaos_artifact,
        run_chaos_soak,
    )
    from repro.workloads.churn import FAULT_KINDS

    if args.replay is not None:
        failure = replay_chaos_artifact(args.replay)
        if failure is None:
            print(f"replay {args.replay}: no failure reproduced")
            return 0
        print(f"replay {args.replay}: {failure}")
        return 1
    kinds = FAULT_KINDS
    if args.fault_kinds is not None:
        kinds = tuple(kind.strip() for kind in args.fault_kinds.split(",")
                      if kind.strip())
    report = run_chaos_soak(ChaosSoakConfig(
        seed=args.seed, scenarios=args.scenarios, steps=args.steps,
        participants=(args.participants
                      if args.participants is not None else 4),
        prefixes=args.prefixes if args.prefixes is not None else 4,
        policies=args.policies, faults=args.faults, fault_kinds=kinds,
        artifact_dir=args.artifact_dir,
        time_budget_seconds=args.time_budget,
        shrink=not args.no_shrink))
    print(report.summary())
    return 0 if report.ok else 1


def _run_soak(args) -> str:
    import time as time_module

    from repro.runtime import OverloadPolicy, RuntimeConfig
    from repro.workloads.policies import generate_policies, install_assignments
    from repro.workloads.topology import generate_ixp
    from repro.workloads.updates import generate_burst_trace

    participants = args.participants if args.participants is not None else 20
    prefixes = args.prefixes if args.prefixes is not None else 200
    ixp = generate_ixp(participants, prefixes, seed=args.seed)
    controller = ixp.build_controller()
    install_assignments(controller, generate_policies(ixp, seed=args.seed + 1))
    controller.start()
    bursts = max(1, args.updates // args.burst_size)
    events = generate_burst_trace(
        ixp, bursts=bursts, burst_size=args.burst_size,
        hot_prefixes=args.hot_prefixes, seed=args.seed + 2)
    runtime = controller.build_runtime(RuntimeConfig(
        max_queue_depth=args.queue_depth,
        overload_policy=OverloadPolicy(args.overload),
        batch_size=args.batch_size,
        coalesce=not args.no_coalesce))

    interval = (1.0 / args.rate) if args.rate else None
    started = time_module.perf_counter()
    if args.threaded:
        runtime.start()
    for index, event in enumerate(events):
        if interval is not None and index:
            delay = started + index * interval - time_module.perf_counter()
            if delay > 0:
                time_module.sleep(delay)
        runtime.submit_update(event.update)
        if not args.threaded and (index + 1) % args.batch_size == 0:
            runtime.step()
    if args.threaded:
        runtime.stop()
    else:
        runtime.settle()
    elapsed = time_module.perf_counter() - started

    stats = runtime.stats()
    depth = stats["queue_depth_percentiles"]
    ingest = stats["ingest_seconds"]
    lines = [
        f"soak: {len(events)} update(s) in {bursts} burst(s) of "
        f"{args.burst_size} over {args.hot_prefixes} hot prefix(es), "
        f"{'threaded' if args.threaded else 'step-driven'} mode, "
        f"overload={args.overload}",
        f"elapsed: {elapsed:.3f}s "
        f"({len(events) / elapsed:.0f} updates/s submitted)",
        f"processed: {stats['processed']} event(s) in "
        f"{stats['batches']} batch(es); route-server submissions: "
        f"{controller.route_server.updates_processed}",
        f"coalesced: {stats['coalesced']} "
        f"(ratio {stats['coalescing_ratio']:.2f}); dropped: "
        f"{stats['dropped']}; blocked submissions: {stats['blocked']}",
        f"queue depth: p50={depth['p50']:.0f} p90={depth['p90']:.0f} "
        f"p99={depth['p99']:.0f} max={depth['max']:.0f}",
        f"ingest-to-install: p50={ingest['p50'] * 1000:.1f}ms "
        f"p99={ingest['p99'] * 1000:.1f}ms "
        f"max={ingest['max'] * 1000:.1f}ms",
        f"degrade entries: {stats['degrade_entries']}; "
        f"degraded now: {stats['degraded']}",
        f"final table: {len(controller.table)} rule(s), "
        f"fast-path debt {controller.engine.fast_path_rules_live}",
    ]
    return "\n".join(lines)


def _run_monitor(args) -> int:
    import json as json_module

    from repro.experiments.monitoring import (
        LoopConfig,
        run_shifting_loop,
        run_skewed_loop,
    )

    config = LoopConfig(
        duration=args.duration, shift_time=args.shift_time,
        cadence_seconds=args.cadence, seed=args.seed,
        statics_mode=args.statics_mode)
    last_sample = []

    def on_sample(sample) -> None:
        last_sample[:] = [sample]
        if not args.watch:
            return
        if args.json:
            print(json_module.dumps(sample.to_dict(), sort_keys=True))
            return
        ports = " ".join(
            f"port{view.key}={view.rate_mbps:.1f}" for view in sample.ports)
        fecs = " ".join(
            f"{view.key}={view.rate_mbps:.1f}" for view in sample.fecs)
        print(f"t={sample.sampled_at:6.1f} "
              f"total={sample.total_rate_mbps:7.1f}Mbps  {ports}  {fecs}")

    runner = (run_shifting_loop if args.scenario == "shifting"
              else run_skewed_loop)
    result = runner(config, on_sample=on_sample)

    payload = {"report": result.to_dict()}
    if last_sample:
        payload["last_sample"] = last_sample[0].to_dict()
    if args.smoke:
        converged = result.converged(within_ticks=args.converge_within)
        payload["converged"] = converged
        payload["converge_within_ticks"] = args.converge_within

    rendered = json_module.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    if args.json:
        print(rendered)
    else:
        for key, value in sorted(payload["report"].items()):
            print(f"{key}: {value}")
        if last_sample:
            sample = last_sample[0]
            print(f"last sample (t={sample.sampled_at:g}, "
                  f"{len(sample.rules)} rules):")
            for title, views in (("fec", sample.fecs),
                                 ("participant", sample.participants),
                                 ("port", sample.ports)):
                for view in views:
                    print(f"  {title} {view.key}: "
                          f"{view.rate_mbps:.2f} Mbps "
                          f"(ewma {view.ewma_mbps:.2f}, "
                          f"{view.bytes} bytes total)")
        if args.smoke:
            print(f"converged within {args.converge_within} steps: "
                  f"{payload['converged']}")
    if args.smoke and not payload["converged"]:
        return 1
    return 0


def _run_profile(args) -> int:
    import json as json_module

    from repro.profiling import PhaseProfiler, folded_stacks
    from repro.telemetry import Telemetry
    from repro.workloads.policies import generate_policies, install_assignments
    from repro.workloads.topology import generate_ixp
    from repro.workloads.updates import generate_trace

    # Workload generation happens before the profiler attaches: the
    # profiled region is the pipeline (compile + fast path + southbound),
    # not the synthetic trace generator.
    ixp = generate_ixp(args.participants, args.prefixes, seed=args.seed)
    telemetry = Telemetry(trace_capacity=65_536)
    controller = ixp.build_controller(telemetry=telemetry)
    install_assignments(controller, generate_policies(ixp, seed=args.seed + 1))
    events = generate_trace(ixp, seed=args.seed + 2,
                            max_updates=args.updates)

    profiler = PhaseProfiler(telemetry, memory=args.memory,
                             cprofile_span=args.cprofile)
    with profiler:
        with telemetry.span("profile.workload"):
            controller.start()
            for event in events:
                controller.submit_update(event.update)
            controller.run_background_recompilation()
    report = profiler.report()

    if args.flamegraph:
        folded = folded_stacks(telemetry.tracer)
        print(folded)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(folded + "\n")
        print(report.render(), file=sys.stderr)
    elif args.json:
        rendered = json_module.dumps(report.to_dict(), indent=2,
                                     sort_keys=True)
        print(rendered)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(rendered + "\n")
    else:
        print(report.render())
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(json_module.dumps(report.to_dict(), indent=2,
                                               sort_keys=True) + "\n")
    if args.cprofile:
        print(profiler.cprofile_stats(), file=sys.stderr)

    if args.min_coverage is not None and report.coverage < args.min_coverage:
        print(f"profile: coverage {report.coverage:.1%} below required "
              f"{args.min_coverage:.1%}", file=sys.stderr)
        return 1
    return 0


def _run_bench(args) -> int:
    import json as json_module
    import pathlib

    from repro.profiling import compare_metrics
    from repro.profiling.baselines import (
        Baseline,
        environment_fingerprint,
        load_baseline,
        save_baseline,
    )
    from repro.profiling.families import FAMILIES, run_family

    mode = "quick" if args.quick else "full"
    results_dir = pathlib.Path(args.results_dir or "benchmarks/results")
    baseline_dir = (pathlib.Path(args.baseline_dir)
                    if args.baseline_dir else None)

    if args.action == "results":
        documents = []
        for path in sorted(results_dir.glob("*.json")):
            try:
                documents.append((path.name, json_module.loads(
                    path.read_text())))
            except (OSError, ValueError):
                documents.append((path.name, None))
        for name, document in documents:
            if not isinstance(document, dict):
                kind = ("unreadable" if document is None
                        else type(document).__name__)
                print(f"{name}: ({kind} payload)")
                continue
            schema = document.get("schema", "-")
            data = document.get("data", document)
            if isinstance(data, dict) and "metrics" in data:
                data = data["metrics"]
            if isinstance(data, dict):
                summary = " ".join(
                    f"{key}={value:.4g}" if isinstance(value, float)
                    else f"{key}={value}"
                    for key, value in sorted(data.items())
                    if isinstance(value, (int, float)))[:120]
            else:
                summary = f"{len(data)} record(s)"
            print(f"{name}: schema={schema} {summary}")
        if not documents:
            print(f"(no JSON results under {results_dir})")
        return 0

    names = args.family or sorted(FAMILIES)
    unknown = [name for name in names if name not in FAMILIES]
    if unknown:
        print(f"bench: unknown families {', '.join(unknown)} "
              f"(available: {', '.join(sorted(FAMILIES))})",
              file=sys.stderr)
        return 2
    samples = args.samples if args.samples else (3 if args.quick else 1)

    payload = {"mode": mode, "samples": samples,
               "environment": environment_fingerprint(), "families": []}
    failed = False
    for name in names:
        medians, runs = run_family(name, mode=mode, samples=samples)
        if args.action == "record-baseline":
            baseline = Baseline.from_measurement(
                name, mode, samples, medians, dict(FAMILIES[name].specs))
            path = save_baseline(baseline, baseline_dir)
            payload["families"].append(
                {"family": name, "metrics": medians,
                 "baseline": str(path)})
            if not args.json:
                print(f"recorded baseline: {path}")
        elif args.action == "compare":
            try:
                baseline = load_baseline(name, mode, baseline_dir)
            except FileNotFoundError:
                failed = True
                payload["families"].append(
                    {"family": name, "ok": False,
                     "error": "missing baseline", "metrics": medians})
                if not args.json:
                    print(f"== {name} [{mode}] MISSING BASELINE "
                          f"(run `repro bench record-baseline`)")
                continue
            report = compare_metrics(baseline, medians)
            failed = failed or not report.ok
            payload["families"].append(report.to_dict())
            if not args.json:
                print(report.render())
        else:  # run
            document = {
                "schema": 1, "family": name, "mode": mode,
                "samples": samples,
                "environment": payload["environment"],
                "metrics": medians, "raw_samples": runs,
            }
            results_dir.mkdir(parents=True, exist_ok=True)
            path = results_dir / f"bench_{name}-{mode}.json"
            path.write_text(json_module.dumps(document, indent=2,
                                              sort_keys=True) + "\n")
            payload["families"].append(document)
            if not args.json:
                print(f"== {name} [{mode}] ({samples} sample(s)) "
                      f"-> {path}")
                for metric, value in sorted(medians.items()):
                    print(f"  {metric:<28} {value:.6g}")

    payload["ok"] = not failed
    rendered = json_module.dumps(payload, indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered + "\n")
    if args.json:
        print(rendered)
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    if args.command in (None, "list"):
        print(render_table(
            ["experiment", "description"],
            [[name, text] for name, text in EXPERIMENTS.items()]))
        return 0
    if args.command == "table1":
        print(_run_table1(args))
    elif args.command == "fig5a":
        print(_run_fig5(args, run_fig5a))
    elif args.command == "fig5b":
        print(_run_fig5(args, run_fig5b))
    elif args.command == "fig6":
        series = run_fig6(participant_counts=args.participants,
                          prefix_counts=args.prefixes,
                          total_prefixes=max(args.prefixes), seed=args.seed)
        print(render_series(series, "prefixes", "prefix groups"))
    elif args.command == "fig7":
        print(_run_sweep(args, "flow rules", lambda p: p.flow_rules))
    elif args.command == "fig8":
        print(_run_sweep(args, "compile seconds",
                         lambda p: f"{p.seconds:.3f}"))
    elif args.command == "fig9":
        series = run_fig9(burst_sizes=args.bursts,
                          participant_counts=args.participants,
                          prefixes=args.prefixes, seed=args.seed)
        print(render_series(series, "burst size", "additional rules"))
    elif args.command == "fig10":
        cdfs = run_fig10(updates=args.updates,
                         participant_counts=args.participants,
                         prefixes=args.prefixes, seed=args.seed)
        print(render_table(
            ["participants", "median ms", "p90 ms", "P(<=100ms)"],
            [[count,
              f"{cdf.median * 1000:.1f}",
              f"{cdf.quantile(0.9) * 1000:.1f}",
              f"{cdf.fraction_below(0.1):.2f}"]
             for count, cdf in sorted(cdfs.items())]))
    elif args.command == "replay":
        print(_run_replay(args))
    elif args.command == "stats":
        print(_run_stats(args))
    elif args.command == "trace":
        print(_run_trace(args))
    elif args.command == "fuzz":
        return _run_fuzz(args)
    elif args.command == "soak":
        if args.chaos:
            return _run_chaos_soak(args)
        print(_run_soak(args))
    elif args.command == "check":
        from repro.config import load_config
        from repro.statics import analyze_controller

        controller = load_config(args.config)
        result = controller.start()
        print(f"compiled: {result.flow_rule_count} flow rules over "
              f"{result.prefix_group_count} prefix groups in "
              f"{result.total_seconds * 1000:.0f} ms")
        report = analyze_controller(controller)
        print(f"statics: {report.summary()}")
        if report.diagnostics:
            print(report.render())
    elif args.command == "lint-policies":
        return _run_lint(args)
    elif args.command == "lint-dataplane":
        return _run_lint_dataplane(args)
    elif args.command == "monitor":
        return _run_monitor(args)
    elif args.command == "profile":
        return _run_profile(args)
    elif args.command == "bench":
        return _run_bench(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
