"""Cross-fabric forwarding: one packet walked through many exchanges.

Both execution arms — the real per-exchange fabrics driven by
:class:`FederatedDataPlane` and the naive
:class:`~repro.federation.reference.FederatedReferenceInterpreter` —
share the same hop-state machine, factored out as
:func:`walk_federation`:

1. classify the packet at the current exchange as the current sender's
   traffic (big-switch policies + BGP defaults decide the egress
   participant, or drop it);
2. if the egress participant *originates* the destination, the packet is
   delivered;
3. otherwise the egress carries the packet over its backbone to the
   first other exchange (in its presence-preference order) where it has
   a usable BGP route toward the destination, and re-enters there as the
   sender — peering at another IXP is assumed cheaper than upstream
   transit, which is exactly the economics that make the Prelude loops
   possible;
4. if no other exchange offers a route, the packet exits the federation
   through the egress participant's upstream (delivered, ``via
   "upstream"``) — the classic single-exchange assumption, which is what
   keeps a one-exchange federation byte-identical to a plain SDX;
5. a revisited ``(exchange, sender)`` state is an inter-exchange
   forwarding loop.

The walk re-injects the *original* packet headers at each re-entry: VMAC
rewrites are internal to one fabric and a border router emits a fresh
frame on its next exchange's peering LAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.dataplane.fabric import Delivery
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.packet import Packet

#: Hard ceiling on cross-exchange hops; a well-formed federation can
#: never exceed exchanges x participants distinct states, so hitting the
#: ceiling without a state revisit indicates a driver bug.
MAX_FEDERATED_HOPS = 64


@dataclass(frozen=True)
class FederatedHop:
    """One state of a cross-exchange walk: whose traffic, at which IXP."""

    exchange: str
    sender: str

    def describe(self) -> str:
        """A compact ``exchange:sender`` rendering."""
        return f"{self.exchange}:{self.sender}"


@dataclass(frozen=True)
class FederatedOutcome:
    """The fate of one packet walked across the federation.

    ``kind`` is ``"delivered"`` (with ``via`` either ``"origin"`` — the
    packet reached the AS that owns the destination — or ``"upstream"``
    — it left the federation through a participant's transit provider),
    ``"dropped"`` (classified to nothing at ``exchange``), or ``"loop"``
    (a ``(exchange, sender)`` state repeated; ``cycle`` holds the
    repeating segment).
    """

    kind: str
    hops: Tuple[FederatedHop, ...]
    exchange: str
    participant: Optional[str] = None
    via: Optional[str] = None
    cycle: Tuple[FederatedHop, ...] = ()
    deliveries: Tuple[Delivery, ...] = field(default=(), compare=False)

    @property
    def is_delivered(self) -> bool:
        """True when the packet reached a network (origin or upstream)."""
        return self.kind == "delivered"

    @property
    def is_loop(self) -> bool:
        """True when the walk revisited a state."""
        return self.kind == "loop"

    def describe(self) -> str:
        """A one-line human-readable rendering of the walk."""
        path = " -> ".join(hop.describe() for hop in self.hops)
        if self.kind == "loop":
            ring = " -> ".join(hop.describe() for hop in self.cycle)
            return f"loop [{ring}] via {path}"
        if self.kind == "delivered":
            return f"delivered to {self.participant} ({self.via}) via {path}"
        return f"dropped at {self.exchange} via {path}"

    def comparable(self) -> Tuple[object, ...]:
        """The outcome as a tuple two execution arms must agree on."""
        return (self.kind, self.exchange, self.participant, self.via,
                tuple(hop.describe() for hop in self.hops))


def walk_federation(
        exchange: str, sender: str, packet: Packet, *,
        classify: Callable[[str, str, Packet], Optional[str]],
        next_exchange: Callable[[str, str, IPv4Address], Optional[str]],
        origin_of: Callable[[IPv4Address], Optional[str]],
        max_hops: int = MAX_FEDERATED_HOPS) -> FederatedOutcome:
    """Drive the shared hop-state machine with pluggable per-arm hooks.

    ``classify(exchange, sender, packet)`` returns the egress participant
    at one exchange (``None`` = dropped); ``next_exchange(participant,
    arrived_at, dstip)`` picks the re-entry exchange (``None`` = exits
    upstream); ``origin_of(dstip)`` names the destination's origin AS.
    """
    hops: list[FederatedHop] = []
    seen: dict[FederatedHop, int] = {}
    dstip = packet.get("dstip")
    current = FederatedHop(exchange, sender)
    while True:
        if current in seen:
            return FederatedOutcome(
                kind="loop", hops=tuple(hops), exchange=current.exchange,
                participant=current.sender, cycle=tuple(hops[seen[current]:]))
        if len(hops) >= max_hops:  # pragma: no cover - driver-bug backstop
            raise RuntimeError(
                f"federated walk exceeded {max_hops} hops without a "
                f"state revisit")
        seen[current] = len(hops)
        hops.append(current)
        egress = classify(current.exchange, current.sender, packet)
        if egress is None:
            return FederatedOutcome(
                kind="dropped", hops=tuple(hops), exchange=current.exchange)
        if dstip is not None and origin_of(dstip) == egress:
            return FederatedOutcome(
                kind="delivered", hops=tuple(hops), exchange=current.exchange,
                participant=egress, via="origin")
        onward = (next_exchange(egress, current.exchange, dstip)
                  if dstip is not None else None)
        if onward is None:
            return FederatedOutcome(
                kind="delivered", hops=tuple(hops), exchange=current.exchange,
                participant=egress, via="upstream")
        current = FederatedHop(onward, egress)


def covering_prefix(prefixes, dstip: IPv4Address) -> Optional[IPv4Prefix]:
    """The most specific prefix containing ``dstip``, if any.

    Announced pools are non-overlapping in practice; when nested
    prefixes do cover the same address the longest match wins, mirroring
    a border router FIB.
    """
    best: Optional[IPv4Prefix] = None
    for prefix in prefixes:
        if prefix.contains_address(dstip) and (
                best is None or prefix.length > best.length):
            best = prefix
    return best


class FederatedDataPlane:
    """The real cross-fabric driver over a started federation.

    Each classification step runs the actual per-exchange machinery —
    compiled big-switch :class:`~repro.dataplane.flowtable.FlowTable`
    rules on the exchange's :class:`~repro.dataplane.switch.SoftwareSwitch`
    fabric, VMAC rewrites and all — via
    :meth:`~repro.core.controller.SdxController.send`. Re-entry decisions
    consult the live per-exchange route servers.
    """

    def __init__(self, federation) -> None:
        self._federation = federation
        self.last_deliveries: Tuple[Delivery, ...] = ()

    def _classify(self, exchange: str, sender: str,
                  packet: Packet) -> Optional[str]:
        """Egress participant of one real-fabric classification pass."""
        controller = self._federation.exchange(exchange)
        deliveries = controller.send(sender, packet)
        accepted = [d for d in deliveries if d.accepted]
        self.last_deliveries = tuple(accepted)
        return accepted[0].participant if accepted else None

    def _next_exchange(self, participant: str, arrived_at: str,
                       dstip: IPv4Address) -> Optional[str]:
        """First other attended exchange with a usable route, if any."""
        for exchange in self._federation.presence(participant):
            if exchange == arrived_at:
                continue
            server = self._federation.exchange(exchange).route_server
            prefix = covering_prefix(server.all_prefixes(), dstip)
            if prefix is not None and server.best_route_for(
                    participant, prefix) is not None:
                return exchange
        return None

    def forward(self, exchange: str, sender: str,
                packet: Packet) -> FederatedOutcome:
        """Walk ``packet`` (sourced inside ``sender`` at ``exchange``)
        across the federation and report its fate.

        The returned outcome carries the final fabric's accepted
        deliveries so tests can inspect VMAC rewrites and per-fabric
        counter attribution.
        """
        self.last_deliveries = ()
        outcome = walk_federation(
            exchange, sender, packet,
            classify=self._classify,
            next_exchange=self._next_exchange,
            origin_of=self._federation.origin_of)
        if outcome.is_delivered:
            return FederatedOutcome(
                kind=outcome.kind, hops=outcome.hops,
                exchange=outcome.exchange, participant=outcome.participant,
                via=outcome.via, cycle=outcome.cycle,
                deliveries=self.last_deliveries)
        return outcome
