"""Exporters: JSON snapshots and Prometheus text exposition.

Two machine formats plus the human CLI views:

* :func:`json_snapshot` — one dict carrying every metric, the event-loss
  account, and the buffered span forest (what ``repro trace --json``
  prints);
* :func:`prometheus_exposition` — the Prometheus text format
  (``# HELP`` / ``# TYPE`` plus one sample line per series; histograms
  become summaries with ``{quantile="..."}`` series), scrapeable as-is
  and greppable by ``make telemetry-smoke``.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, List

from repro.telemetry.registry import Counter, Gauge, Histogram, MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.telemetry import Telemetry

#: Quantiles exported for each histogram in the Prometheus exposition.
EXPORTED_QUANTILES = (0.5, 0.9, 0.99)


def json_snapshot(telemetry: "Telemetry") -> Dict[str, object]:
    """Everything the telemetry object holds, as one JSON-able dict."""
    return {
        "metrics": telemetry.registry.snapshot(),
        "losses": telemetry.registry.losses(),
        "spans": telemetry.tracer.span_tree(),
        "spans_dropped": telemetry.tracer.spans_dropped,
    }


def render_json(telemetry: "Telemetry", indent: int = 2) -> str:
    """:func:`json_snapshot`, serialised."""
    return json.dumps(json_snapshot(telemetry), indent=indent, sort_keys=True)


def _label_text(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_exposition(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: List[str] = []
    seen_headers = set()

    def header(name: str, kind: str, help_text: str) -> None:
        if name in seen_headers:
            return
        seen_headers.add(name)
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")

    for metric in registry.metrics():
        if isinstance(metric, Counter):
            header(metric.name, "counter", metric.help)
            lines.append(
                f"{metric.name}{_label_text(metric.labels)} {metric.value}")
        elif isinstance(metric, Gauge):
            header(metric.name, "gauge", metric.help)
            lines.append(
                f"{metric.name}{_label_text(metric.labels)} {metric.value:g}")
        elif isinstance(metric, Histogram):
            header(metric.name, "summary", metric.help)
            for q in EXPORTED_QUANTILES:
                label_text = _label_text(metric.labels, f'quantile="{q}"')
                lines.append(
                    f"{metric.name}{label_text} {metric.quantile(q):.9g}")
            labels = _label_text(metric.labels)
            lines.append(f"{metric.name}_sum{labels} {metric.sum:.9g}")
            lines.append(f"{metric.name}_count{labels} {metric.count}")
    return "\n".join(lines) + "\n" if lines else ""
