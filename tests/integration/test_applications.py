"""End-to-end tests of the paper's four Section-2 applications, each run
through the full stack: policies -> compiler -> flow table -> border
routers -> fabric."""

from repro.bgp.asn import AsPath
from repro.core.controller import SdxController
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet
from repro.policy.policies import fwd, match, modify


def packet(dstip, dstport=80, srcip="10.0.0.1", protocol=6, **extra):
    return Packet(dstip=dstip, dstport=dstport, srcip=srcip,
                  protocol=protocol, **extra)


class TestApplicationSpecificPeering:
    """Two networks peer only for certain applications (Section 2)."""

    def make(self):
        sdx = SdxController()
        isp = sdx.add_participant("ISP", 64500)
        video = sdx.add_participant("VideoCDN", 64501)
        transit = sdx.add_participant("Transit", 64502)
        content = IPv4Prefix("60.0.0.0/8")
        sdx.announce_route("VideoCDN", content, AsPath([64501]))
        sdx.announce_route("Transit", content, AsPath([64502, 64501]))
        # Peer with the CDN only for streaming ports; everything else on
        # the (best, shorter-path) CDN route would be the default, so the
        # ISP pins non-video to transit with a second clause.
        isp.add_outbound(match(dstport=1935) >> fwd("VideoCDN"))
        sdx.start()
        return sdx

    def test_video_via_cdn(self):
        sdx = self.make()
        assert sdx.egress_of("ISP", packet("60.1.2.3", dstport=1935)) == "VideoCDN"

    def test_other_traffic_follows_bgp(self):
        sdx = self.make()
        assert sdx.egress_of("ISP", packet("60.1.2.3", dstport=80)) == "VideoCDN"
        # Shorter AS path wins: the CDN route is also the BGP best.


class TestInboundTrafficEngineering:
    """An AS controls how traffic *enters* its network (Section 2)."""

    def make(self):
        sdx = SdxController()
        sender = sdx.add_participant("Sender", 64500)
        eyeball = sdx.add_participant("Eyeball", 64510, ports=2)
        home = IPv4Prefix("70.0.0.0/8")
        sdx.announce_route("Eyeball", home, AsPath([64510]))
        eyeball.add_inbound(
            (match(srcip="0.0.0.0/1") >> fwd(eyeball.port(0)))
            + (match(srcip="128.0.0.0/1") >> fwd(eyeball.port(1))))
        sdx.start()
        return sdx, eyeball

    def test_low_sources_enter_port_zero(self):
        sdx, eyeball = self.make()
        delivery = sdx.send("Sender", packet("70.0.0.1", srcip="9.9.9.9"))[0]
        assert delivery.switch_port == eyeball.port(0)
        assert delivery.accepted

    def test_high_sources_enter_port_one(self):
        sdx, eyeball = self.make()
        delivery = sdx.send("Sender", packet("70.0.0.1", srcip="200.9.9.9"))[0]
        assert delivery.switch_port == eyeball.port(1)
        assert delivery.accepted

    def test_mac_rewritten_per_chosen_port(self):
        sdx, eyeball = self.make()
        low = sdx.send("Sender", packet("70.0.0.1", srcip="9.9.9.9"))[0]
        high = sdx.send("Sender", packet("70.0.0.1", srcip="200.9.9.9"))[0]
        ports = eyeball.participant.router.ports
        assert low.packet["dstmac"] == ports[0].mac
        assert high.packet["dstmac"] == ports[1].mac


class TestWideAreaLoadBalancing:
    """A remote content provider balances anycast requests (Section 2)."""

    def make(self):
        sdx = SdxController()
        client_isp = sdx.add_participant("ClientISP", 64500)
        transit = sdx.add_participant("Transit", 64502)
        # Backend instances live behind Transit.
        backends = IPv4Prefix("74.125.224.0/24")
        sdx.announce_route("Transit", backends, AsPath([64502, 15169]))
        # Remote content provider: no physical port.
        provider = sdx.add_participant("Provider", 15169, ports=0)
        anycast = IPv4Prefix("74.125.1.0/24")
        sdx.register_ownership(anycast, "Provider")
        provider.add_inbound(
            (match(dstip="74.125.1.1") & match(srcip="96.25.160.0/24"))
            >> modify(dstip="74.125.224.161") >> fwd("Transit"))
        provider.add_inbound(
            (match(dstip="74.125.1.1") & match(srcip="128.125.163.0/24"))
            >> modify(dstip="74.125.224.139") >> fwd("Transit"))
        sdx.start()
        provider.announce(anycast)
        return sdx

    def test_first_client_prefix_rewritten(self):
        sdx = self.make()
        deliveries = sdx.send(
            "ClientISP", packet("74.125.1.1", srcip="96.25.160.9"))
        assert len(deliveries) == 1
        assert deliveries[0].participant == "Transit"
        assert str(deliveries[0].packet["dstip"]) == "74.125.224.161"
        assert deliveries[0].accepted

    def test_second_client_prefix_rewritten(self):
        sdx = self.make()
        deliveries = sdx.send(
            "ClientISP", packet("74.125.1.1", srcip="128.125.163.9"))
        assert str(deliveries[0].packet["dstip"]) == "74.125.224.139"

    def test_unmatched_client_dropped(self):
        """Traffic to the anycast address from unknown clients has no
        clause and the remote participant has no delivery port."""
        sdx = self.make()
        assert sdx.send("ClientISP", packet("74.125.1.1", srcip="1.2.3.4")) == []

    def test_withdrawal_stops_attracting_traffic(self):
        sdx = self.make()
        sdx.participant("Provider").withdraw(IPv4Prefix("74.125.1.0/24"))
        assert sdx.send(
            "ClientISP", packet("74.125.1.1", srcip="96.25.160.9")) == []


class TestMiddleboxRedirection:
    """Targeted traffic steered through a scrubber (Section 2)."""

    def make(self):
        sdx = SdxController()
        isp = sdx.add_participant("ISP", 64500)
        victim = sdx.add_participant("Victim", 64510)
        scrubber = sdx.add_participant("Scrubber", 64520)
        target = IPv4Prefix("80.0.0.0/8")
        sdx.announce_route("Victim", target, AsPath([64510]))
        # The scrubber also announces the victim's prefix (it returns
        # cleaned traffic out of band), making it an eligible next hop.
        sdx.announce_route("Scrubber", target, AsPath([64520, 64510]))
        # Suspected attack traffic (UDP) detours through the scrubber.
        isp.add_outbound(match(protocol=17) >> fwd("Scrubber"))
        sdx.start()
        return sdx

    def test_udp_redirected_to_scrubber(self):
        sdx = self.make()
        assert sdx.egress_of(
            "ISP", packet("80.0.0.1", protocol=17)) == "Scrubber"

    def test_tcp_goes_direct(self):
        sdx = self.make()
        assert sdx.egress_of("ISP", packet("80.0.0.1", protocol=6)) == "Victim"

    def test_victim_never_redirects_its_own_traffic(self):
        """Only the ISP installed the policy; the scrubber's and victim's
        virtual switches are isolated from it."""
        sdx = self.make()
        other = IPv4Prefix("81.0.0.0/8")
        sdx.announce_route("ISP", other, AsPath([64500]))
        assert sdx.egress_of("Victim", packet("81.0.0.1", protocol=17)) == "ISP"
