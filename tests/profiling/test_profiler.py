"""Tests for the phase profiler: listeners, memory tags, cProfile."""

from repro.profiling import PhaseProfiler
from repro.telemetry import Telemetry


def busy_allocate(kib):
    """Allocate and drop a list big enough to move tracemalloc's peak.

    The chunk size rides a variable so the peephole optimizer can't
    constant-fold every chunk into one shared bytes object.
    """
    size = 1024 + kib - kib
    return sum(len(chunk) for chunk in [bytes(size) for _ in range(kib)])


class TestAttachment:
    def test_context_manager_attaches_and_detaches(self):
        telemetry = Telemetry()
        profiler = PhaseProfiler(telemetry)
        with profiler:
            assert profiler in telemetry.tracer._listeners
        assert profiler not in telemetry.tracer._listeners

    def test_double_attach_is_idempotent(self):
        telemetry = Telemetry()
        profiler = PhaseProfiler(telemetry)
        profiler.attach()
        profiler.attach()
        assert telemetry.tracer._listeners.count(profiler) == 1
        profiler.detach()
        profiler.detach()
        assert profiler not in telemetry.tracer._listeners

    def test_spans_after_detach_are_untagged(self):
        telemetry = Telemetry()
        with PhaseProfiler(telemetry, memory=True):
            pass
        with telemetry.span("compile"):
            pass
        (span,) = telemetry.tracer.finished()
        assert "mem_net_bytes" not in span.tags


class TestMemoryCapture:
    def test_spans_get_memory_tags(self):
        telemetry = Telemetry()
        with PhaseProfiler(telemetry, memory=True):
            with telemetry.span("compile"):
                busy_allocate(64)
        (span,) = telemetry.tracer.finished()
        assert isinstance(span.tags["mem_net_bytes"], int)
        assert span.tags["mem_peak_bytes"] >= 0

    def test_child_peak_folds_into_parent(self):
        telemetry = Telemetry()
        with PhaseProfiler(telemetry, memory=True):
            with telemetry.span("outer"):
                with telemetry.span("inner"):
                    busy_allocate(128)
        spans = {span.name: span for span in telemetry.tracer.finished()}
        # The allocation happened inside the child; the parent's peak
        # must still account for it (a high-water mark, not self-only).
        assert (spans["outer"].tags["mem_peak_bytes"]
                >= spans["inner"].tags["mem_peak_bytes"])
        assert spans["inner"].tags["mem_peak_bytes"] >= 100 * 1024

    def test_memory_off_means_no_tags(self):
        telemetry = Telemetry()
        with PhaseProfiler(telemetry, memory=False):
            with telemetry.span("compile"):
                busy_allocate(16)
        (span,) = telemetry.tracer.finished()
        assert "mem_net_bytes" not in span.tags


class TestCProfileScope:
    def test_captures_only_the_named_span(self):
        telemetry = Telemetry()
        profiler = PhaseProfiler(telemetry, cprofile_span="compile")
        with profiler:
            with telemetry.span("other"):
                busy_allocate(4)
            with telemetry.span("compile"):
                busy_allocate(4)
        stats = profiler.cprofile_stats()
        assert "busy_allocate" in stats

    def test_placeholder_when_span_never_fires(self):
        telemetry = Telemetry()
        profiler = PhaseProfiler(telemetry, cprofile_span="never")
        with profiler:
            with telemetry.span("compile"):
                pass
        assert "never" in profiler.cprofile_stats()


class TestReport:
    def test_report_publishes_profile_metrics(self):
        telemetry = Telemetry()
        profiler = PhaseProfiler(telemetry, memory=True)
        with profiler:
            with telemetry.span("compile"):
                busy_allocate(8)
        report = profiler.report()
        assert report.phases["compile_overhead"].calls == 1
        registry = telemetry.registry
        assert registry.get("sdx_profile_phase_seconds",
                            phase="compile_overhead") is not None
        assert registry.get("sdx_profile_phase_calls",
                            phase="compile_overhead").value == 1
        assert registry.get("sdx_profile_coverage_ratio").value > 0.99
        assert registry.get("sdx_profile_phase_peak_bytes",
                            phase="compile_overhead") is not None

    def test_report_is_deterministic_over_the_buffer(self):
        telemetry = Telemetry()
        profiler = PhaseProfiler(telemetry)
        with profiler:
            with telemetry.span("compile"):
                with telemetry.span("compile.fec"):
                    pass
        first = profiler.report().to_dict()
        second = profiler.report().to_dict()
        assert first == second
