"""Property-style tests for the address primitives, on seeded random.

Plain ``random.Random`` rather than hypothesis: these run hundreds of
cases per property with zero shrinking machinery, and the fixed seed
makes any failure a one-line repro (the case is printed in the assert).
"""

import random

import pytest

from repro.exceptions import AddressError
from repro.net.addresses import DEFAULT_ROUTE, IPv4Address, IPv4Prefix

CASES = 300


def random_address(rng: random.Random) -> IPv4Address:
    return IPv4Address(rng.randrange(1 << 32))


def random_prefix(rng: random.Random, min_length: int = 0,
                  max_length: int = 32) -> IPv4Prefix:
    return IPv4Prefix(network=rng.randrange(1 << 32),
                      length=rng.randint(min_length, max_length))


class TestAddressProperties:
    def test_string_round_trip(self):
        rng = random.Random(0xADD2)
        for _ in range(CASES):
            address = random_address(rng)
            assert IPv4Address(str(address)) == address, address

    def test_int_round_trip_and_order(self):
        rng = random.Random(0xADD3)
        for _ in range(CASES):
            a, b = random_address(rng), random_address(rng)
            assert IPv4Address(int(a)) == a
            assert (a < b) == (int(a) < int(b)), (a, b)

    def test_addition_matches_integer_addition(self):
        rng = random.Random(0xADD4)
        for _ in range(CASES):
            value = rng.randrange(1 << 31)
            offset = rng.randrange(1 << 10)
            assert int(IPv4Address(value) + offset) == value + offset

    def test_out_of_range_rejected(self):
        for bad in (-1, 1 << 32, (1 << 32) + 5):
            with pytest.raises(AddressError):
                IPv4Address(bad)


class TestPrefixProperties:
    def test_string_round_trip(self):
        rng = random.Random(0x9EF1)
        for _ in range(CASES):
            prefix = random_prefix(rng)
            assert IPv4Prefix(str(prefix)) == prefix, prefix

    def test_host_bits_zeroed(self):
        rng = random.Random(0x9EF2)
        for _ in range(CASES):
            prefix = random_prefix(rng)
            assert prefix.network_int & ~int(prefix.netmask) == 0, prefix

    def test_bounds_contained(self):
        rng = random.Random(0x9EF3)
        for _ in range(CASES):
            prefix = random_prefix(rng)
            assert prefix.contains_address(prefix.first_address)
            assert prefix.contains_address(prefix.last_address)
            assert (prefix.last_address.value - prefix.first_address.value + 1
                    == prefix.num_addresses)

    def test_containment_iff_membership(self):
        """p ⊇ q exactly when q's endpoints both fall inside p."""
        rng = random.Random(0x9EF4)
        for _ in range(CASES):
            p = random_prefix(rng, max_length=16)
            q = random_prefix(rng, min_length=8)
            expected = (p.contains_address(q.first_address)
                        and p.contains_address(q.last_address))
            assert p.contains_prefix(q) == expected, (p, q)

    def test_cidr_blocks_nest_or_are_disjoint(self):
        rng = random.Random(0x9EF5)
        for _ in range(CASES):
            p, q = random_prefix(rng), random_prefix(rng)
            if p.overlaps(q):
                meet = p.intersection(q)
                assert meet in (p, q)
                assert p.contains_prefix(meet) and q.contains_prefix(meet)
            else:
                assert p.intersection(q) is None
                assert not (p.contains_address(q.first_address)
                            or q.contains_address(p.first_address))

    def test_supernet_contains_subnets_partition(self):
        rng = random.Random(0x9EF6)
        for _ in range(100):
            prefix = random_prefix(rng, min_length=1, max_length=24)
            assert prefix.supernet().contains_prefix(prefix)
            halves = list(prefix.subnets())
            assert len(halves) == 2
            assert sum(half.num_addresses for half in halves) \
                == prefix.num_addresses
            assert all(prefix.contains_prefix(half) for half in halves)
            assert not halves[0].overlaps(halves[1])

    def test_bit_at_spells_the_network(self):
        rng = random.Random(0x9EF7)
        for _ in range(100):
            prefix = random_prefix(rng)
            rebuilt = 0
            for position in range(32):
                rebuilt = (rebuilt << 1) | prefix.bit_at(position)
            assert rebuilt == prefix.network_int, prefix

    def test_default_route_contains_everything(self):
        rng = random.Random(0x9EF8)
        for _ in range(CASES):
            assert DEFAULT_ROUTE.contains_prefix(random_prefix(rng))
