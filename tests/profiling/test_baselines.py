"""Tests for the baseline store and the regression comparison engine."""

import pytest

from repro.profiling.baselines import (
    ENV_RELAX_FACTOR,
    Baseline,
    MetricSpec,
    baseline_path,
    compare_metrics,
    environment_fingerprint,
    environments_match,
    load_baseline,
    save_baseline,
)


def make_baseline(metrics, environment=None, family="fam", mode="quick"):
    """A baseline literal with the current environment by default."""
    return Baseline(family=family, mode=mode, samples=1,
                    environment=environment or environment_fingerprint(),
                    metrics=metrics)


class TestFingerprint:
    def test_fields_present(self):
        fingerprint = environment_fingerprint()
        assert set(fingerprint) == {"python", "implementation", "cpu_count",
                                    "hostname_hash", "bench_scale"}
        assert len(fingerprint["hostname_hash"]) == 12

    def test_hostname_excluded_from_matching(self):
        recorded = environment_fingerprint()
        recorded["hostname_hash"] = "another-host"
        assert environments_match(recorded, environment_fingerprint())

    def test_python_minor_mismatch_detected(self):
        recorded = environment_fingerprint()
        recorded["python"] = "2.7.18"
        assert not environments_match(recorded, environment_fingerprint())

    def test_cpu_count_mismatch_detected(self):
        recorded = environment_fingerprint()
        recorded["cpu_count"] = 10_000
        assert not environments_match(recorded, environment_fingerprint())


class TestMetricSpec:
    def test_direction_validated(self):
        with pytest.raises(ValueError):
            MetricSpec(tolerance=0.1, direction="sideways")

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            MetricSpec(tolerance=-0.1)


class TestRoundtrip:
    def test_save_and_load(self, tmp_path):
        baseline = make_baseline({
            "compile_seconds": {"value": 1.5, "tolerance": 0.5,
                                "direction": "lower", "timing": True},
        })
        path = save_baseline(baseline, tmp_path)
        assert path == baseline_path("fam", "quick", tmp_path)
        loaded = load_baseline("fam", "quick", tmp_path)
        assert loaded.metrics == baseline.metrics
        assert loaded.family == "fam" and loaded.mode == "quick"

    def test_from_measurement_bundles_specs(self):
        baseline = Baseline.from_measurement(
            "fam", "quick", 3, {"rules": 100.0},
            {"rules": MetricSpec(tolerance=0.02, direction="near",
                                 timing=False)})
        entry = baseline.metrics["rules"]
        assert entry == {"value": 100.0, "tolerance": 0.02,
                         "direction": "near", "timing": False}

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            Baseline.from_dict({"schema": 99, "family": "fam",
                                "mode": "quick", "metrics": {}})

    def test_missing_baseline_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_baseline("fam", "quick", tmp_path)


class TestCompare:
    def test_lower_direction(self):
        baseline = make_baseline({
            "seconds": {"value": 1.0, "tolerance": 0.5,
                        "direction": "lower", "timing": False},
        })
        assert compare_metrics(baseline, {"seconds": 1.4}).ok
        report = compare_metrics(baseline, {"seconds": 1.6})
        assert not report.ok
        assert report.regressions[0].metric == "seconds"
        # Going faster is an improvement, never a failure.
        assert compare_metrics(baseline, {"seconds": 0.1}).ok

    def test_higher_direction(self):
        baseline = make_baseline({
            "throughput": {"value": 1000.0, "tolerance": 0.2,
                           "direction": "higher", "timing": False},
        })
        assert compare_metrics(baseline, {"throughput": 900.0}).ok
        assert not compare_metrics(baseline, {"throughput": 700.0}).ok
        assert compare_metrics(baseline, {"throughput": 2000.0}).ok

    def test_near_direction_fails_both_ways(self):
        baseline = make_baseline({
            "rules": {"value": 100.0, "tolerance": 0.02,
                      "direction": "near", "timing": False},
        })
        assert compare_metrics(baseline, {"rules": 101.0}).ok
        assert not compare_metrics(baseline, {"rules": 110.0}).ok
        # A shrunken count is a workload change, not an improvement.
        assert not compare_metrics(baseline, {"rules": 90.0}).ok

    def test_missing_metric_fails_the_gate(self):
        baseline = make_baseline({
            "seconds": {"value": 1.0, "tolerance": 0.5,
                        "direction": "lower", "timing": True},
        })
        report = compare_metrics(baseline, {})
        assert not report.ok
        assert report.regressions[0].status == "missing"

    def test_extra_measured_metrics_ignored(self):
        baseline = make_baseline({
            "seconds": {"value": 1.0, "tolerance": 0.5,
                        "direction": "lower", "timing": False},
        })
        report = compare_metrics(baseline, {"seconds": 1.0, "novel": 7.0})
        assert report.ok and len(report.rows) == 1

    def test_env_mismatch_relaxes_timing_only(self):
        environment = environment_fingerprint()
        environment["cpu_count"] = 10_000  # force a mismatch
        baseline = make_baseline({
            "seconds": {"value": 1.0, "tolerance": 0.5,
                        "direction": "lower", "timing": True},
            "rules": {"value": 100.0, "tolerance": 0.02,
                      "direction": "near", "timing": False},
        }, environment=environment)
        # 1.8 would regress at ±50% but passes at the relaxed ±100%.
        report = compare_metrics(baseline, {"seconds": 1.8, "rules": 100.0})
        assert report.ok
        by_name = {row.metric: row for row in report.rows}
        assert by_name["seconds"].relaxed
        assert by_name["seconds"].tolerance == 0.5 * ENV_RELAX_FACTOR
        assert not by_name["rules"].relaxed
        # The count band stays tight even with the environment mismatch.
        assert not compare_metrics(
            baseline, {"seconds": 1.0, "rules": 110.0}).ok

    def test_render_puts_regressions_first(self):
        baseline = make_baseline({
            "a_ok": {"value": 1.0, "tolerance": 0.5,
                     "direction": "lower", "timing": False},
            "z_bad": {"value": 1.0, "tolerance": 0.1,
                      "direction": "lower", "timing": False},
        })
        report = compare_metrics(baseline, {"a_ok": 1.0, "z_bad": 5.0})
        lines = report.render().splitlines()
        assert "REGRESSION" in lines[0]
        assert "z_bad" in lines[1]

    def test_to_dict_is_json_shaped(self):
        baseline = make_baseline({
            "seconds": {"value": 1.0, "tolerance": 0.5,
                        "direction": "lower", "timing": False},
        })
        document = compare_metrics(baseline, {"seconds": 0.9}).to_dict()
        assert document["ok"] is True
        assert document["metrics"][0]["metric"] == "seconds"
