"""Tests for the BGP session state machine."""

import pytest

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.bgp.session import BgpSession, SessionState
from repro.exceptions import SessionStateError
from repro.net.addresses import IPv4Address, IPv4Prefix


def announce(sender, prefix, asn=64999):
    """An announcement update with minimal valid attributes."""
    return Update.announce(sender, IPv4Prefix(prefix), RouteAttributes(
        next_hop=IPv4Address("172.0.0.9"), as_path=AsPath((asn,))))


class TestLifecycle:
    def test_starts_idle(self):
        session = BgpSession("A", 65001)
        assert session.state is SessionState.IDLE
        assert not session.is_established

    def test_open_then_establish(self):
        session = BgpSession("A", 65001)
        session.open()
        assert session.state is SessionState.OPEN_SENT
        session.establish()
        assert session.is_established

    def test_connect_shortcut(self):
        session = BgpSession("A", 65001)
        session.connect()
        assert session.is_established

    def test_double_open_rejected(self):
        session = BgpSession("A", 65001)
        session.open()
        with pytest.raises(SessionStateError):
            session.open()

    def test_establish_from_idle_rejected(self):
        with pytest.raises(SessionStateError):
            BgpSession("A", 65001).establish()

    def test_reset_counts_and_returns_to_idle(self):
        session = BgpSession("A", 65001)
        session.connect()
        session.reset()
        assert session.state is SessionState.IDLE
        assert session.resets == 1
        session.connect()
        assert session.is_established


class TestUpdateFlow:
    def test_receive_invokes_callback(self):
        seen = []
        session = BgpSession("A", 65001, on_update=seen.append)
        session.connect()
        update = Update.withdraw("A", IPv4Prefix("10.0.0.0/8"))
        session.receive(update)
        assert seen == [update]
        assert session.updates_received == 1

    def test_receive_while_idle_rejected(self):
        session = BgpSession("A", 65001)
        with pytest.raises(SessionStateError):
            session.receive(Update.withdraw("A", IPv4Prefix("10.0.0.0/8")))

    def test_receive_foreign_sender_rejected(self):
        session = BgpSession("A", 65001)
        session.connect()
        with pytest.raises(SessionStateError):
            session.receive(Update.withdraw("B", IPv4Prefix("10.0.0.0/8")))

    def test_send_logs_updates(self):
        session = BgpSession("A", 65001)
        session.connect()
        update = Update.withdraw("route-server", IPv4Prefix("10.0.0.0/8"))
        session.send(update)
        assert session.sent_log == [update]
        assert session.updates_sent == 1

    def test_send_while_idle_rejected(self):
        with pytest.raises(SessionStateError):
            BgpSession("A", 65001).send(
                Update.withdraw("route-server", IPv4Prefix("10.0.0.0/8")))


class TestTeardown:
    def test_reset_from_idle_rejected(self):
        with pytest.raises(SessionStateError):
            BgpSession("A", 65001).reset()

    def test_fail_from_idle_rejected(self):
        with pytest.raises(SessionStateError):
            BgpSession("A", 65001).fail()

    def test_fail_lands_in_down_and_counts(self):
        session = BgpSession("A", 65001)
        session.connect()
        session.fail()
        assert session.state is SessionState.DOWN
        assert session.is_down
        assert session.failures == 1
        assert session.resets == 0

    def test_reset_from_down_rejected(self):
        session = BgpSession("A", 65001)
        session.connect()
        session.fail()
        with pytest.raises(SessionStateError):
            session.reset()

    def test_double_fail_rejected(self):
        session = BgpSession("A", 65001)
        session.connect()
        session.fail()
        with pytest.raises(SessionStateError):
            session.fail()

    def test_down_recovers_via_open(self):
        session = BgpSession("A", 65001)
        session.connect()
        session.fail()
        session.open()
        session.establish()
        assert session.is_established

    def test_teardown_clears_logs_and_announced(self):
        session = BgpSession("A", 65001)
        session.connect()
        session.receive(announce("A", "10.1.0.0/16"))
        session.send(Update.withdraw("route-server", IPv4Prefix("9.0.0.0/8")))
        assert session.announced == {IPv4Prefix("10.1.0.0/16")}
        session.reset()
        assert session.sent_log == []
        assert session.received_log == []
        assert session.announced == frozenset()
        assert session.updates_received == 1  # counters survive the reset

    def test_teardown_emits_implied_withdrawal(self):
        down = []
        session = BgpSession("A", 65001,
                             on_down=lambda update, why: down.append((update, why)))
        session.connect()
        session.receive(announce("A", "10.1.0.0/16"))
        session.receive(announce("A", "10.2.0.0/16"))
        session.receive(Update.withdraw("A", IPv4Prefix("10.2.0.0/16")))
        implied = session.fail()
        assert [w.prefix for w in implied.withdrawals] == [
            IPv4Prefix("10.1.0.0/16")]
        assert implied.sender == "A"
        assert down == [(implied, "fail")]

    def test_announced_tracks_note_update(self):
        session = BgpSession("A", 65001)
        session.connect()
        session.note_update(announce("A", "10.1.0.0/16"))
        session.note_update(announce("A", "10.1.0.0/16"))
        assert session.announced == {IPv4Prefix("10.1.0.0/16")}
        assert session.updates_received == 2
        session.note_update(Update.withdraw("A", IPv4Prefix("10.1.0.0/16")))
        assert session.announced == frozenset()
