"""Extension — traffic locality and rule utilisation.

Section 4.3's central workload assumption is Ager et al.'s measurement
that ~95% of IXP traffic flows between ~5% of participant (pairs). This
benchmark pushes a synthetic gravity-model traffic matrix through the
full simulated data plane and reports (a) the measured pair
concentration and (b) flow-table rule utilisation — how few rules carry
nearly all packets, which is why composing only traffic-exchanging
participants' policies is safe.
"""

from conftest import publish, publish_json

from repro.experiments.metrics import render_table
from repro.workloads.policies import generate_policies, install_assignments
from repro.workloads.topology import generate_ixp
from repro.workloads.traffic import generate_traffic_matrix, locality_stats

PARTICIPANTS = 60
PREFIXES = 800
FLOWS = 400


def _run():
    ixp = generate_ixp(PARTICIPANTS, PREFIXES, seed=0)
    controller = ixp.build_controller(with_dataplane=True)
    install_assignments(controller, generate_policies(ixp, seed=1))
    controller.start()
    demands = generate_traffic_matrix(ixp, flows=FLOWS, seed=2)
    stats = locality_stats(demands)

    delivered = 0
    for demand in demands:
        deliveries = controller.send(demand.source, demand.packet)
        if any(delivery.accepted for delivery in deliveries):
            delivered += 1

    table = controller.table
    hit_counts = [table.packets_matched(rule) for rule in table.rules]
    rules_hit = sum(1 for count in hit_counts if count > 0)
    total_hits = sum(hit_counts)
    running = 0
    hot_rules = 0
    for count in sorted(hit_counts, reverse=True):
        if running >= 0.95 * total_hits:
            break
        running += count
        hot_rules += 1
    return stats, delivered, len(table), rules_hit, hot_rules


def test_ext_traffic_locality(benchmark):
    stats, delivered, rules, rules_hit, hot_rules = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    publish("ext_traffic_locality", render_table(
        ["metric", "value"],
        [["flows delivered", f"{delivered}/{FLOWS}"],
         ["active participant pairs", stats.pairs],
         ["pairs carrying 95% of traffic", stats.pairs_for_95_percent],
         ["pair fraction for 95%", f"{stats.pair_fraction_for_95_percent:.2f}"],
         ["installed flow rules", rules],
         ["rules matched at least once", rules_hit],
         ["rules carrying 95% of packets", hot_rules]]))
    publish_json("ext_traffic_locality", {
        "flows": FLOWS,
        "flows_delivered": delivered,
        "active_pairs": stats.pairs,
        "pairs_for_95_percent": stats.pairs_for_95_percent,
        "pair_fraction_for_95_percent": stats.pair_fraction_for_95_percent,
        "installed_flow_rules": rules,
        "rules_hit": rules_hit,
        "hot_rules": hot_rules,
    })

    # Nearly all generated flows have routes and get delivered.
    assert delivered > 0.9 * FLOWS
    # Paper-shaped locality: 95% of bytes ride a small minority of the
    # possible participant pairs (Ager et al.: ~5% of participants).
    possible_pairs = PARTICIPANTS * (PARTICIPANTS - 1)
    assert stats.pairs_for_95_percent < 0.05 * possible_pairs
    assert stats.pair_fraction_for_95_percent < 0.65
    # Rule utilisation is sparse: most of the table exists for coverage,
    # a small hot set does the carrying.
    assert rules_hit < rules
    assert hot_rules < rules_hit
