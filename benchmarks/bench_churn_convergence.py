"""Churn convergence — per-fault-class cost of the chaos soak.

Runs the seeded chaos soak (the same workload the ``churn_convergence``
gate family measures) and reports, per fault class, how much runtime
work convergence took: events processed, batches drained, and storm
updates replayed. Two claims are checked, not just measured: every one
of the six fault classes must actually fire, and every settle assertion
— runtime-vs-inline equivalence, clean swaps, no surviving stuck route
— must hold. Results land in
``benchmarks/results/churn_convergence.json`` alongside the rendered
table.
"""

from conftest import publish, publish_json, scaled

from repro.chaos import ChaosSoakConfig, run_chaos_soak
from repro.experiments.metrics import render_table
from repro.workloads.churn import FAULT_KINDS

SEED = 3
SCENARIOS = 3
STEPS = 16


def _run_soak():
    report = run_chaos_soak(ChaosSoakConfig(
        seed=SEED, scenarios=max(1, scaled(SCENARIOS)), steps=STEPS))
    rows = []
    for kind in FAULT_KINDS:
        stats = report.convergence.get(kind, {})
        rows.append({
            "kind": kind,
            "faults": int(stats.get("faults", 0)),
            "events": int(stats.get("events", 0)),
            "batches": int(stats.get("batches", 0)),
            "wall_seconds": stats.get("wall_seconds", 0.0),
        })
    return report, rows


def test_churn_convergence(benchmark):
    report, rows = benchmark.pedantic(_run_soak, rounds=1, iterations=1)

    table_rows = [[
        row["kind"], row["faults"], row["events"], row["batches"],
        f"{row['wall_seconds'] * 1000:.1f}",
    ] for row in rows]
    publish("churn_convergence", render_table(
        ["fault kind", "faults", "events", "batches", "wall ms"],
        table_rows))
    publish_json("churn_convergence", rows)

    # Coverage: the soak must exercise every fault class, and the
    # standing settle assertions must all hold.
    assert report.ok, report.summary()
    assert report.kinds_covered() == FAULT_KINDS, report.kinds_covered()
    for row in rows:
        assert row["faults"] >= 1, row
