"""Predicate helpers layered on the core AST.

The core predicate classes live in :mod:`repro.policy.policies`; this
module re-exports them under the names used by the paper discussion and
adds :class:`MatchAnyPrefix` — the prefix-set filter the SDX runtime
inserts when it restricts a participant's policy to the destinations a
next-hop actually announced (Section 4.1, "enforcing consistency with BGP
advertisements").

``MatchAnyPrefix`` matters for performance: a naive ``match(p1) | match(p2)
| ...`` over *k* prefixes costs *k* parallel compositions (quadratic rule
blowup during compilation), while this class compiles directly to *k*
prioritized rules.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.exceptions import PolicyError
from repro.net.addresses import IPv4Prefix
from repro.net.packet import IP_FIELDS, Packet
from repro.policy.classifier import (
    IDENTITY_ACTION,
    Classifier,
    ComposeStats,
    Rule,
)
from repro.policy.headerspace import WILDCARD, HeaderSpace, coerce_constraint
from repro.policy.policies import (
    Conjunction,
    Disjunction,
    Drop,
    Identity,
    Match,
    Negation,
    Predicate,
    drop,
    identity,
    match,
)

#: Aliases matching Pyretic's vocabulary.
TruePredicate = Identity
FalsePredicate = Drop
MatchPredicate = Match

__all__ = [
    "Conjunction",
    "Disjunction",
    "FalsePredicate",
    "MatchAnyPrefix",
    "MatchAnyValue",
    "MatchPredicate",
    "Negation",
    "Predicate",
    "TruePredicate",
    "match",
    "match_any_prefix",
    "match_any_value",
]


class MatchAnyPrefix(Predicate):
    """True when an IP field falls in any prefix of a set.

    Prefixes are sorted longest-first so more-specific rules take priority,
    keeping the compiled classifier's first-match semantics identical to
    the predicate even when the set contains nested prefixes.
    """

    def __init__(self, field: str, prefixes: Iterable[IPv4Prefix]):
        if field not in IP_FIELDS:
            raise PolicyError(f"match_any_prefix needs an IP field, got {field!r}")
        self.field = field
        self.prefixes: Tuple[IPv4Prefix, ...] = tuple(
            sorted(set(prefixes), key=lambda p: (-p.length, p.network_int)))

    def holds(self, packet: Packet) -> bool:
        address = packet.get(self.field)
        if address is None:
            return False
        return any(prefix.contains_address(address) for prefix in self.prefixes)

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        rules = [
            Rule(HeaderSpace(**{self.field: prefix}), (IDENTITY_ACTION,))
            for prefix in self.prefixes
        ]
        rules.append(Rule(WILDCARD, ()))
        return Classifier(rules)

    def __repr__(self) -> str:
        shown = ", ".join(str(p) for p in self.prefixes[:4])
        suffix = ", ..." if len(self.prefixes) > 4 else ""
        return f"match_any({self.field} in {{{shown}{suffix}}})"


class MatchAnyValue(Predicate):
    """True when a field equals any value of a set.

    The SDX uses this for its two tag guards: *ingress isolation* (``port``
    in the participant's physical ports) and *BGP reachability* (``dstmac``
    in the VMACs of the eligible forwarding equivalence classes). Like
    :class:`MatchAnyPrefix` it compiles to one rule per value instead of a
    quadratic chain of parallel compositions.
    """

    def __init__(self, field: str, values: Iterable):
        if field in IP_FIELDS:
            raise PolicyError(
                f"use MatchAnyPrefix for IP field {field!r}, not MatchAnyValue")
        self.field = field
        coerced = {coerce_constraint(field, value) for value in values}
        self.values = tuple(sorted(coerced, key=lambda v: int(v) if not isinstance(v, int) else v))

    def holds(self, packet: Packet) -> bool:
        return packet.get(self.field) in self.values

    def _compile(self, stats: Optional[ComposeStats]) -> Classifier:
        rules = [
            Rule(HeaderSpace(**{self.field: value}), (IDENTITY_ACTION,))
            for value in self.values
        ]
        rules.append(Rule(WILDCARD, ()))
        return Classifier(rules)

    def __repr__(self) -> str:
        shown = ", ".join(str(v) for v in self.values[:4])
        suffix = ", ..." if len(self.values) > 4 else ""
        return f"match_any({self.field} in {{{shown}{suffix}}})"


def match_any_value(field: str, values: Iterable) -> Predicate:
    """A predicate true when ``field`` equals any of ``values``.

    An empty value set yields the false predicate. A singleton collapses
    to a plain :func:`match`.
    """
    collected = tuple(values)
    if not collected:
        return drop
    if len(set(collected)) == 1:
        return match(**{field: collected[0]})
    return MatchAnyValue(field, collected)


def match_any_prefix(field: str, prefixes: Iterable[IPv4Prefix]) -> Predicate:
    """A predicate true when ``field`` lies in any of ``prefixes``.

    An empty prefix set yields the false predicate (the SDX uses this when
    a next-hop exported no routes at all).
    """
    collected = tuple(prefixes)
    if not collected:
        return drop
    return MatchAnyPrefix(field, collected)
