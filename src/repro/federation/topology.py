"""The federation topology layer: exchanges, presence, transit, origins.

A federation is a set of named exchanges plus participants that attend
one or more of them. Each attendance is an :class:`ExchangePresence`
(per-exchange port count — a shared AS can have two ports at one IXP and
one at another). A participant present at several exchanges implicitly
owns a backbone connecting its border routers there; those derived
:class:`TransitLink` edges are what let packets cross exchanges.

The topology also records federation-wide prefix *origins* — which
participant's network a destination actually lives in. Origins decide
when a cross-exchange walk terminates: a packet handed to the origin AS
is delivered, a packet handed to any other AS keeps moving (to another
exchange where that AS has a usable route, or out through its upstream
transit).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.sdxpolicy import OwnershipRegistry
from repro.exceptions import ParticipantError
from repro.net.addresses import IPv4Address, IPv4Prefix


@dataclass(frozen=True)
class ExchangePresence:
    """One participant's attendance at one exchange."""

    exchange: str
    ports: int = 1


@dataclass(frozen=True)
class FederatedParticipantSpec:
    """A participant and everywhere it peers."""

    name: str
    asn: int
    presence: Tuple[ExchangePresence, ...]

    def exchanges(self) -> Tuple[str, ...]:
        """The exchanges attended, in preference (registration) order."""
        return tuple(entry.exchange for entry in self.presence)

    def ports_at(self, exchange: str) -> int:
        """The port count at ``exchange`` (0 when absent)."""
        for entry in self.presence:
            if entry.exchange == exchange:
                return entry.ports
        return 0

    @property
    def is_shared(self) -> bool:
        """True when the participant attends more than one exchange."""
        return len(self.presence) > 1


@dataclass(frozen=True)
class TransitLink:
    """One backbone edge of a shared participant between two exchanges."""

    participant: str
    left: str
    right: str

    def other_end(self, exchange: str) -> str:
        """The opposite exchange of this link."""
        if exchange == self.left:
            return self.right
        if exchange == self.right:
            return self.left
        raise ParticipantError(
            f"transit link {self.participant}:{self.left}<->{self.right} "
            f"does not touch exchange {exchange!r}")


class FederationTopology:
    """The exchange/presence/origin registry of one federation.

    Exchanges and participants keep registration order — presence order
    is a participant's *preference* order when it must pick the next
    exchange to carry a packet through, and registration order is what
    keeps per-exchange port numbering aligned with projected
    single-exchange scenarios.
    """

    def __init__(self) -> None:
        self._exchanges: List[str] = []
        self._specs: Dict[str, FederatedParticipantSpec] = {}
        self._order: List[str] = []
        self._origins = OwnershipRegistry()
        self._origin_entries: List[Tuple[IPv4Prefix, str]] = []

    # ------------------------------------------------------------------
    # Exchanges
    # ------------------------------------------------------------------

    def add_exchange(self, name: str) -> None:
        """Register exchange ``name`` (order is preserved)."""
        if name in self._exchanges:
            raise ParticipantError(f"exchange {name!r} already registered")
        self._exchanges.append(name)

    def exchanges(self) -> Tuple[str, ...]:
        """Registered exchange names, in registration order."""
        return tuple(self._exchanges)

    def has_exchange(self, name: str) -> bool:
        """True when exchange ``name`` is registered."""
        return name in self._exchanges

    # ------------------------------------------------------------------
    # Participants
    # ------------------------------------------------------------------

    def add_participant(self, spec: FederatedParticipantSpec) -> None:
        """Register a participant spec (its exchanges must exist)."""
        if spec.name in self._specs:
            raise ParticipantError(f"participant {spec.name!r} already registered")
        if not spec.presence:
            raise ParticipantError(
                f"participant {spec.name!r} attends no exchange")
        for entry in spec.presence:
            if entry.exchange not in self._exchanges:
                raise ParticipantError(
                    f"participant {spec.name!r} attends unknown exchange "
                    f"{entry.exchange!r}")
        self._specs[spec.name] = spec
        self._order.append(spec.name)

    def participant(self, name: str) -> FederatedParticipantSpec:
        """The spec of participant ``name``."""
        try:
            return self._specs[name]
        except KeyError:
            raise ParticipantError(f"unknown participant {name!r}") from None

    def participants(self) -> Tuple[FederatedParticipantSpec, ...]:
        """Every spec, in registration order."""
        return tuple(self._specs[name] for name in self._order)

    def names(self) -> Tuple[str, ...]:
        """Participant names in registration order."""
        return tuple(self._order)

    def participants_at(self, exchange: str) -> Tuple[str, ...]:
        """Names present at ``exchange``, in registration order."""
        return tuple(
            name for name in self._order
            if self._specs[name].ports_at(exchange) > 0
            or exchange in self._specs[name].exchanges())

    def presence(self, name: str) -> Tuple[str, ...]:
        """The exchanges ``name`` attends, in preference order."""
        return self.participant(name).exchanges()

    def shared_participants(self) -> Tuple[str, ...]:
        """Names present at more than one exchange."""
        return tuple(
            name for name in self._order if self._specs[name].is_shared)

    def transit_links(self) -> Tuple[TransitLink, ...]:
        """Derived backbone edges: one per shared participant's
        exchange pair."""
        links: List[TransitLink] = []
        for name in self._order:
            attended = self._specs[name].exchanges()
            for i, left in enumerate(attended):
                for right in attended[i + 1:]:
                    links.append(TransitLink(name, left, right))
        return tuple(links)

    # ------------------------------------------------------------------
    # Prefix origins
    # ------------------------------------------------------------------

    def register_origin(self, prefix: IPv4Prefix, participant: str) -> None:
        """Record that ``prefix`` lives inside ``participant``'s network."""
        self.participant(participant)
        self._origins.register(prefix, participant)
        self._origin_entries.append((prefix, participant))

    def origins(self) -> Tuple[Tuple[IPv4Prefix, str], ...]:
        """Every (prefix, origin participant) registration."""
        return tuple(self._origin_entries)

    def origin_of(self, address: IPv4Address) -> Optional[str]:
        """The participant whose network owns ``address``, if known."""
        return self._origins.owner_of(IPv4Prefix(network=int(address),
                                                 length=32))
