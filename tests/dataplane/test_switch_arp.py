"""Tests for the software switch and the ARP service/responder chain."""

import pytest

from repro.exceptions import FabricError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress, vmac_for_fec
from repro.net.packet import Packet
from repro.policy.classifier import Action
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import HeaderSpace
from repro.dataplane.arp import ArpResponder, ArpService
from repro.dataplane.switch import SoftwareSwitch

VNH_POOL = IPv4Prefix("172.16.0.0/16")


class TestSoftwareSwitch:
    def make_switch(self):
        switch = SoftwareSwitch("test")
        for port in (1, 2, 3):
            switch.add_port(port)
        return switch

    def test_ports_registered(self):
        assert self.make_switch().ports == (1, 2, 3)

    def test_duplicate_port_rejected(self):
        switch = self.make_switch()
        with pytest.raises(FabricError):
            switch.add_port(1)

    def test_negative_port_rejected(self):
        with pytest.raises(FabricError):
            SoftwareSwitch().add_port(-1)

    def test_forwarding_and_counters(self):
        switch = self.make_switch()
        switch.table.install(FlowRule(
            priority=5, match=HeaderSpace(port=1), actions=(Action(port=2),)))
        out = switch.process(Packet(port=1, dstport=80))
        assert out == [(2, Packet(port=2, dstport=80))]
        assert switch.stats(1).rx_packets == 1
        assert switch.stats(2).tx_packets == 1

    def test_unknown_ingress_rejected(self):
        switch = self.make_switch()
        with pytest.raises(FabricError):
            switch.process(Packet(port=99))
        with pytest.raises(FabricError):
            switch.process(Packet(dstport=80))

    def test_rule_to_unknown_port_drops(self):
        switch = self.make_switch()
        switch.table.install(FlowRule(
            priority=5, match=HeaderSpace(port=1), actions=(Action(port=42),)))
        assert switch.process(Packet(port=1)) == []

    def test_multicast_to_two_ports(self):
        switch = self.make_switch()
        switch.table.install(FlowRule(
            priority=5, match=HeaderSpace(port=1),
            actions=(Action(port=2), Action(port=3))))
        out = switch.process(Packet(port=1))
        assert {egress for egress, _ in out} == {2, 3}

    def test_unknown_port_stats_rejected(self):
        with pytest.raises(FabricError):
            self.make_switch().stats(42)


class TestArpResponder:
    def test_bind_and_resolve(self):
        responder = ArpResponder(VNH_POOL)
        vnh = IPv4Address("172.16.0.1")
        responder.bind(vnh, vmac_for_fec(1))
        assert responder.resolve(vnh) == vmac_for_fec(1)
        assert responder.queries_answered == 1

    def test_bind_outside_pool_rejected(self):
        responder = ArpResponder(VNH_POOL)
        with pytest.raises(FabricError):
            responder.bind(IPv4Address("10.0.0.1"), vmac_for_fec(1))

    def test_unbind(self):
        responder = ArpResponder(VNH_POOL)
        vnh = IPv4Address("172.16.0.1")
        responder.bind(vnh, vmac_for_fec(1))
        responder.unbind(vnh)
        assert responder.resolve(vnh) is None
        responder.unbind(vnh)  # idempotent

    def test_owns(self):
        responder = ArpResponder(VNH_POOL)
        assert responder.owns(IPv4Address("172.16.5.5"))
        assert not responder.owns(IPv4Address("10.0.0.1"))

    def test_bindings_copy(self):
        responder = ArpResponder(VNH_POOL)
        responder.bind(IPv4Address("172.16.0.1"), vmac_for_fec(1))
        bindings = responder.bindings()
        bindings.clear()
        assert len(responder) == 1


class TestArpService:
    def test_static_resolution(self):
        service = ArpService()
        service.add_static(IPv4Address("10.0.0.1"), MacAddress(0x1))
        assert service.resolve(IPv4Address("10.0.0.1")) == MacAddress(0x1)

    def test_conflicting_static_rejected(self):
        service = ArpService()
        service.add_static(IPv4Address("10.0.0.1"), MacAddress(0x1))
        with pytest.raises(FabricError):
            service.add_static(IPv4Address("10.0.0.1"), MacAddress(0x2))
        service.add_static(IPv4Address("10.0.0.1"), MacAddress(0x1))  # same ok

    def test_falls_through_to_responder(self):
        service = ArpService()
        responder = ArpResponder(VNH_POOL)
        responder.bind(IPv4Address("172.16.0.9"), vmac_for_fec(9))
        service.attach_responder(responder)
        assert service.resolve(IPv4Address("172.16.0.9")) == vmac_for_fec(9)

    def test_static_wins_over_responder(self):
        service = ArpService()
        service.add_static(IPv4Address("172.16.0.9"), MacAddress(0x5))
        responder = ArpResponder(VNH_POOL)
        responder.bind(IPv4Address("172.16.0.9"), vmac_for_fec(9))
        service.attach_responder(responder)
        assert service.resolve(IPv4Address("172.16.0.9")) == MacAddress(0x5)

    def test_unresolvable_returns_none(self):
        assert ArpService().resolve(IPv4Address("203.0.113.1")) is None
