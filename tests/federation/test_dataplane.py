"""Tests for the cross-fabric driver: re-entry, VMACs, counters."""

from repro.bgp.asn import AsPath
from repro.federation import FederatedController
from repro.net.addresses import IPv4Prefix
from repro.net.packet import Packet

from tests.federation.scenarios import (
    PORT,
    PREFIX,
    blackhole_scenario,
    clean_scenario,
    loop_scenario,
)

DSTIP = "198.51.100.9"


def packet(dstport=PORT, **fields):
    fields.setdefault("dstip", DSTIP)
    return Packet(dstport=dstport, **fields)


class TestCrossExchangeWalk:
    def test_stitched_path_delivers_to_origin(self):
        federation = clean_scenario().build_controller()
        outcome = federation.forward("IXP-B", "Eyeball", packet())
        assert outcome.is_delivered
        assert outcome.via == "origin"
        assert outcome.participant == "Content"
        assert [hop.describe() for hop in outcome.hops] == [
            "IXP-B:Eyeball", "IXP-A:Transit"]

    def test_loop_detected_with_cycle(self):
        federation = loop_scenario().build_controller()
        outcome = federation.forward("IXP-A", "East", packet())
        assert outcome.is_loop
        assert len(outcome.cycle) == 2
        assert outcome.deliveries == ()

    def test_blackhole_dropped_beyond_first_exchange(self):
        federation = blackhole_scenario().build_controller()
        outcome = federation.forward("IXP-A", "Sender", packet())
        assert outcome.kind == "dropped"
        assert outcome.exchange == "IXP-B"
        assert len(outcome.hops) == 2

    def test_unrouted_traffic_never_leaves_the_border(self):
        federation = clean_scenario().build_controller()
        outcome = federation.forward(
            "IXP-B", "Eyeball", packet(dstip="203.0.113.5"))
        assert outcome.kind == "dropped"
        assert outcome.exchange == "IXP-B"
        assert len(outcome.hops) == 1

    def test_exhausted_presence_exits_upstream(self):
        # Port-443 traffic dodges the drop clause; at IXP-B it defaults
        # to Relay, which attends no other exchange and does not
        # originate the prefix: it exits through Relay's upstream.
        federation = blackhole_scenario().build_controller()
        outcome = federation.forward("IXP-A", "Sender", packet(dstport=443))
        assert outcome.is_delivered
        assert outcome.via == "upstream"
        assert outcome.participant == "Relay"
        assert len(outcome.hops) == 2


class TestVmacSemantics:
    def test_reentry_preserves_original_headers(self):
        federation = clean_scenario().build_controller()
        original = packet(srcip="192.0.2.7")
        outcome = federation.forward("IXP-B", "Eyeball", original)
        assert outcome.deliveries
        final = outcome.deliveries[0].packet
        assert str(final["dstip"]) == DSTIP
        assert final["dstport"] == PORT
        assert str(final["srcip"]) == "192.0.2.7"

    def test_final_fabric_rewrites_to_its_own_physical_mac(self):
        # The VMAC rewrite happens inside the *final* exchange's fabric:
        # the delivered frame carries the physical MAC of Content's port
        # at IXP-A, not any MAC from the IXP-B fabric the packet first
        # crossed.
        federation = clean_scenario().build_controller()
        outcome = federation.forward("IXP-B", "Eyeball", packet())
        content = federation.handle("IXP-A", "Content").participant
        assert outcome.deliveries[0].packet["dstmac"] == (
            content.router.ports[0].mac)
        # ...and not the MAC of the IXP-A ingress (Transit's border
        # router), which is what a fabric that skipped the rewrite
        # would leave in place.
        transit_a = federation.handle("IXP-A", "Transit").participant
        assert outcome.deliveries[0].packet["dstmac"] != (
            transit_a.router.ports[0].mac)

    def test_delivery_lands_on_the_destination_switch_port(self):
        federation = clean_scenario().build_controller()
        outcome = federation.forward("IXP-B", "Eyeball", packet())
        content = federation.handle("IXP-A", "Content")
        assert outcome.deliveries[0].switch_port == content.port(0)
        assert outcome.deliveries[0].accepted


class TestCounterAttribution:
    def test_each_traversed_fabric_counts_exactly_once(self):
        federation = clean_scenario().build_controller()
        federation.forward("IXP-B", "Eyeball", packet())
        for exchange in ("IXP-A", "IXP-B"):
            switch = federation.exchange(exchange).fabric.switch
            ingress = sum(switch.stats(p).rx_packets for p in switch.ports)
            assert ingress == 1, exchange

    def test_counters_attribute_to_the_correct_ports(self):
        federation = clean_scenario().build_controller()
        federation.forward("IXP-B", "Eyeball", packet())
        switch_b = federation.exchange("IXP-B").fabric.switch
        eyeball_port = federation.handle("IXP-B", "Eyeball").port(0)
        assert switch_b.stats(eyeball_port).rx_packets == 1
        switch_a = federation.exchange("IXP-A").fabric.switch
        transit_port = federation.handle("IXP-A", "Transit").port(0)
        content_port = federation.handle("IXP-A", "Content").port(0)
        assert switch_a.stats(transit_port).rx_packets == 1
        assert switch_a.stats(content_port).tx_packets == 1

    def test_untouched_walk_leaves_other_fabric_cold(self):
        federation = clean_scenario().build_controller()
        # A local IXP-A walk (Content's upstream exit) never touches B.
        federation.forward("IXP-A", "Content", packet(dstport=443))
        switch_b = federation.exchange("IXP-B").fabric.switch
        assert sum(switch_b.stats(p).rx_packets
                   for p in switch_b.ports) == 0


class TestPortMappingEdgeCases:
    def make_asymmetric(self):
        """Clean-scenario structure, but Transit has two ports at IXP-A
        and one at IXP-B, so cross-fabric port numbering differs."""
        federation = FederatedController(with_dataplane=True)
        federation.add_exchange("IXP-A")
        federation.add_exchange("IXP-B")
        federation.add_participant(
            "Transit", 65010, exchanges=("IXP-A", "IXP-B"),
            ports_by_exchange={"IXP-A": 2, "IXP-B": 1})
        federation.add_participant("Content", 65020, exchanges=("IXP-A",))
        federation.add_participant("Eyeball", 65030, exchanges=("IXP-B",))
        prefix = IPv4Prefix(PREFIX)
        federation.register_origin(prefix, "Content")
        federation.announce_route(
            "IXP-A", "Content", prefix, AsPath([65020, 64900]))
        federation.announce_route(
            "IXP-B", "Transit", prefix, AsPath([65010, 65020, 64900]))
        federation.start()
        return federation

    def test_asymmetric_port_counts_still_stitch(self):
        federation = self.make_asymmetric()
        outcome = federation.forward("IXP-B", "Eyeball", packet(dstport=443))
        assert outcome.is_delivered
        assert outcome.via == "origin"
        assert outcome.participant == "Content"

    def test_per_fabric_participants_are_independent(self):
        # The shared participant gets a distinct per-exchange incarnation
        # with its own router and port count.
        federation = self.make_asymmetric()
        transit_a = federation.handle("IXP-A", "Transit").participant
        transit_b = federation.handle("IXP-B", "Transit").participant
        assert transit_a is not transit_b
        assert len(transit_a.router.ports) == 2
        assert len(transit_b.router.ports) == 1

    def test_switch_port_numbering_is_fabric_local(self):
        # Each fabric numbers its own switch ports: the asymmetric port
        # counts give the two switches different port tables.
        federation = self.make_asymmetric()
        switch_a = federation.exchange("IXP-A").fabric.switch
        switch_b = federation.exchange("IXP-B").fabric.switch
        assert len(switch_a.ports) == 3  # Transit x2 + Content
        assert len(switch_b.ports) == 2  # Transit + Eyeball
