"""Fuzzer cross-validation of the dataplane verifier.

The dataplane verifier's verdicts come out of a region algebra (atoms,
subpartitions, representative lookups); the table itself is the ground
truth. This module holds the verifier to three falsifiable contracts on
every scenario state:

* **incremental = full** — the verifier attached to the southbound
  engine re-verifies only what each apply window touched; its cached
  state report must render *byte-identically* to a fresh whole-table
  analysis of the same state;
* **witness contracts** — every spatial finding carries a witness
  packet, and the real :meth:`FlowTable.lookup` must corroborate it:
  an SDX010 witness is won by some *other* rule, an SDX011 witness
  falls to the miss or the catch-all drop, an SDX012 witness is won by
  exactly the flagged rule (whose rewrite tag owns no next-hop);
* **no false alarms** — fuzz scenarios are generated from well-formed
  distributions and every committed space is derived from live state,
  so an error-severity finding on one is a verifier bug, not a network
  bug; and symmetrically, a committed space *without* an SDX011 finding
  must carry a probe packet per ingress port without falling to the
  miss (the covering half of the partition property).

:func:`dataplane_crosscheck` replays a scenario's BGP trace with the
incremental verifier riding the live southbound engine, re-checking all
three contracts at the base table and after every step.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.net.mac import MacAddress
from repro.statics.dataplane import analyze_controller_dataplane
from repro.statics.diagnostics import Diagnostic, Severity
from repro.verification.oracle import OracleFailure
from repro.verification.scenario import Scenario


def _diag_rule(controller, diag: Diagnostic):
    """The installed rule a per-rule diagnostic points at, or ``None``."""
    data = dict(diag.data)
    priority = data.get("rule_priority")
    match = data.get("rule_match")
    if priority is None or match is None:
        return None
    return controller.table.rule_for_key(priority, match)


def _check_witnesses(controller, report, step: int) -> Optional[OracleFailure]:
    """Fire every witness at the real table; first broken contract wins."""
    table = controller.table
    vmac_index = controller.allocator.vmac_index()
    for diag in report.diagnostics:
        witness = diag.witness
        if diag.check_id == "SDX010":
            # Shadowed: the flagged rule must not win its own witness.
            if witness is None:  # budget fallback carries no witness
                continue
            rule = _diag_rule(controller, diag)
            winner = table.lookup(witness)
            if rule is not None and winner is rule:
                return OracleFailure(
                    kind="dataplane-shadow-witness-fired", step=step,
                    detail=f"SDX010 marked rule [{rule.describe()}] fully "
                           f"shadowed, but it wins its own witness "
                           f"{witness!r} in the real table")
        elif diag.check_id == "SDX011":
            if witness is None:
                continue
            winner = table.lookup(witness)
            if winner is not None and not (winner.is_drop
                                           and winner.match.is_wildcard):
                return OracleFailure(
                    kind="dataplane-miss-witness-carried", step=step,
                    detail=f"SDX011 claimed committed witness {witness!r} "
                           f"falls to the table miss, but rule "
                           f"[{winner.describe()}] carries it")
        elif diag.check_id == "SDX012":
            if dict(diag.data).get("kind") != "rewrite" or witness is None:
                continue
            rule = _diag_rule(controller, diag)
            winner = table.lookup(witness)
            if rule is not None and winner is not rule:
                return OracleFailure(
                    kind="dataplane-blackhole-witness-missed", step=step,
                    detail=f"SDX012 flagged rule [{rule.describe()}] as a "
                           f"compiled blackhole, but its witness "
                           f"{witness!r} is won by "
                           f"{'the miss' if winner is None else winner.describe()}")
            vmac = dict(diag.data).get("vmac")
            if isinstance(vmac, MacAddress) and vmac in vmac_index:
                return OracleFailure(
                    kind="dataplane-blackhole-vmac-live", step=step,
                    detail=f"SDX012 called VMAC {vmac} dead, but the "
                           f"allocator maps it to {vmac_index[vmac]}")
    return None


def _check_clean(report, step: int) -> Optional[OracleFailure]:
    """Fuzz scenarios are defect-free; any error finding is a false alarm."""
    for diag in report.diagnostics:
        if diag.severity is Severity.ERROR:
            return OracleFailure(
                kind="dataplane-false-positive", step=step,
                detail=f"dataplane verifier reported an error on a clean "
                       f"generated scenario: {diag.describe()}")
    return None


def _check_covered(controller, report, step: int) -> Optional[OracleFailure]:
    """No SDX011 finding means *every* committed probe must be carried."""
    from repro.statics.dataplane import committed_spaces_from_controller

    flagged = {dict(diag.data).get("label")
               for diag in report.diagnostics if diag.check_id == "SDX011"}
    table = controller.table
    for committed in committed_spaces_from_controller(controller):
        if committed.label in flagged:
            continue
        for port in committed.ports:
            probe = committed.space.concretise(port=port)
            winner = table.lookup(probe)
            if winner is None or (winner.is_drop
                                  and winner.match.is_wildcard):
                return OracleFailure(
                    kind="dataplane-committed-miss-unreported", step=step,
                    detail=f"committed traffic {committed.label} via port "
                           f"{port} falls to the table miss "
                           f"({probe!r}) but the verifier reported no "
                           f"SDX011 finding")
    return None


def _check_state(controller, verifier: Any,
                 step: int) -> Optional[OracleFailure]:
    incremental = verifier.state_report()
    fresh = analyze_controller_dataplane(controller)
    if incremental.to_json() != fresh.to_json():
        return OracleFailure(
            kind="dataplane-incremental-divergence", step=step,
            detail=f"incremental state report diverged from a fresh "
                   f"whole-table analysis after step {step}: "
                   f"incremental={incremental.summary()} "
                   f"full={fresh.summary()}")
    return (_check_clean(fresh, step)
            or _check_witnesses(controller, fresh, step)
            or _check_covered(controller, fresh, step))


def dataplane_crosscheck(scenario: Scenario) -> Optional[OracleFailure]:
    """Cross-validate the dataplane verifier against the real table.

    Builds the scenario's controller with the incremental verifier
    attached to the live southbound engine (``warn`` mode, so findings
    never gate the replay itself), then checks the byte-identity,
    witness, false-alarm, and covering contracts at the base table and
    after every trace step. Returns the first breach as an
    :class:`OracleFailure` (``step`` is ``-1`` for the base state), or
    ``None`` when every contract held.
    """
    controller = scenario.build_controller(dataplane_statics_mode="warn")
    verifier = controller.dataplane_verifier
    failure = _check_state(controller, verifier, step=-1)
    if failure is not None:
        return failure
    for step_index, step in enumerate(scenario.trace):
        controller.submit_update(scenario.step_update(step))
        failure = _check_state(controller, verifier, step=step_index)
        if failure is not None:
            return failure
    return None
