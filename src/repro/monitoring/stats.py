"""Sampling per-rule counters into per-FEC / per-egress rate estimates.

:class:`FlowStatsCollector` is the sensing half of the monitoring loop.
Each :meth:`~FlowStatsCollector.sample` reads the flow table's per-rule
packet/byte counters (one ``counters_snapshot()`` — the simulator's
stand-in for an OpenFlow ``FlowStatsRequest``), attributes every rule to

* a **FEC** — from the rule's ``dstmac`` constraint via the VNH
  allocator's VMAC index (SDX rules tag traffic with the FEC's virtual
  MAC), falling back to the ``dstip`` prefix's group for inbound-style
  rules that match on real addresses;
* its **egress ports** and the **participants** attached there;

then turns per-rule counter deltas into instantaneous and EWMA-smoothed
rates aggregated along each axis. Aggregates are accumulated from
deltas, not recomputed from live counters, so a rule deleted by a table
swap stops contributing *new* traffic without retroactively erasing what
it already carried.

Delta semantics at the rule level follow the table's counter-survival
invariant, tracked by *cookie* (the table's stable per-rule token): an
untouched or in-place-modified rule keeps its cookie, so its delta spans
the swap; a deleted-and-reinstalled rule carries a fresh cookie and
restarts from zero, and the bytes it counted between the last sample and
its deletion are lost to the estimate — the same information loss a
hardware switch imposes, bounded by one sampling interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.controller import SdxController
from repro.exceptions import FabricError
from repro.net.addresses import IPv4Prefix
from repro.policy.flowrules import FlowRule

#: FEC label for rules whose match names no destination the allocator
#: knows (ARP punts, defaults, drop-alls).
UNATTRIBUTED = "other"

#: Default EWMA smoothing factor (weight of the newest sample).
DEFAULT_EWMA_ALPHA = 0.25


def fec_label(controller: SdxController, prefix: IPv4Prefix) -> str:
    """The stable FEC label for traffic destined into ``prefix``.

    The label is the representative (smallest) prefix of the group
    containing ``prefix`` — stable across FEC recomputation — or the
    prefix itself when it is in no group (ephemeral fast-path state,
    or simply unannounced). Ground-truth recorders and the collector
    share this function so estimated and true rates key identically.
    """
    group = controller.allocator.group_of(prefix)
    if group is not None:
        return str(group.representative)
    return str(prefix)


@dataclass(frozen=True)
class _RuleAttribution:
    """Where one installed rule's traffic goes (cached per generation)."""

    fec: str
    egress: Tuple[Tuple[int, str], ...]  # (switch port, participant)


@dataclass(frozen=True)
class AggregateView:
    """One monitored axis value: cumulative totals plus rate views."""

    key: str
    packets: int
    bytes: int
    delta_packets: int
    delta_bytes: int
    rate_mbps: float
    ewma_mbps: float


@dataclass(frozen=True)
class RuleView:
    """One installed rule's counters and attribution at a sample."""

    rule: FlowRule
    fec: str
    egress: Tuple[Tuple[int, str], ...]
    packets: int
    bytes: int
    delta_packets: int
    delta_bytes: int
    rate_mbps: float
    ewma_mbps: float


@dataclass(frozen=True)
class MonitorSample:
    """Everything one sampling interval produced.

    ``interval`` is 0.0 on the first sample (rates undefined → 0).
    ``fecs`` / ``participants`` / ``ports`` are sorted by key for
    deterministic iteration; ``rules`` follows table order.
    """

    sampled_at: float
    interval: float
    total_rate_mbps: float
    fecs: Tuple[AggregateView, ...]
    participants: Tuple[AggregateView, ...]
    ports: Tuple[AggregateView, ...]
    rules: Tuple[RuleView, ...]

    def fec_rate(self, label: str, *, smoothed: bool = False) -> float:
        """The (EWMA if ``smoothed``) rate of one FEC, 0.0 if unseen."""
        for view in self.fecs:
            if view.key == label:
                return view.ewma_mbps if smoothed else view.rate_mbps
        return 0.0

    def port_rate(self, port: int, *, smoothed: bool = False) -> float:
        """The (EWMA if ``smoothed``) rate of one egress port."""
        for view in self.ports:
            if view.key == str(port):
                return view.ewma_mbps if smoothed else view.rate_mbps
        return 0.0

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable rendering (the ``repro monitor`` output)."""
        def axis(views: Tuple[AggregateView, ...]) -> Dict[str, object]:
            return {
                view.key: {
                    "bytes": view.bytes,
                    "packets": view.packets,
                    "rate_mbps": round(view.rate_mbps, 6),
                    "ewma_mbps": round(view.ewma_mbps, 6),
                } for view in views
            }
        return {
            "sampled_at": self.sampled_at,
            "interval_seconds": self.interval,
            "total_rate_mbps": round(self.total_rate_mbps, 6),
            "fecs": axis(self.fecs),
            "participants": axis(self.participants),
            "ports": axis(self.ports),
            "rules": len(self.rules),
        }


class FlowStatsCollector:
    """Samples a controller's flow table into rate/delta views.

    Not thread-safe on its own; the runtime polls it under its lock
    (standalone use from a single thread is fine). Exports the
    ``sdx_dataplane_*`` metric families through the controller's
    registry on every sample.
    """

    def __init__(self, controller: SdxController, *,
                 ewma_alpha: float = DEFAULT_EWMA_ALPHA):
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.controller = controller
        self.ewma_alpha = ewma_alpha
        # Per-rule state keyed by table cookie — never recycled, survives
        # MODIFY — so a modified rule continues its delta stream and a
        # reinstalled one unambiguously restarts it.
        self._last_counts: Dict[int, Tuple[int, int]] = {}
        self._rule_ewma: Dict[int, float] = {}
        self._attribution: Dict[int, _RuleAttribution] = {}
        self._attr_generation: Optional[int] = None
        self._last_time: Optional[float] = None
        # Cumulative per-axis totals, accumulated from deltas so deleted
        # rules' history survives. Keyed (axis, key).
        self._totals: Dict[Tuple[str, str], List[int]] = {}
        self._ewma: Dict[Tuple[str, str], float] = {}
        registry = controller.telemetry.registry
        self._samples_counter = registry.counter(
            "sdx_dataplane_samples_total", "Counter samples taken")
        self._rules_gauge = registry.gauge(
            "sdx_dataplane_monitored_rules", "Rules seen by the last sample")
        self._total_rate_gauge = registry.gauge(
            "sdx_dataplane_rate_mbps", "Total monitored rate, last sample")

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------

    def _attribute(self, rule: FlowRule) -> _RuleAttribution:
        controller = self.controller
        vmac_index = self._vmac_index
        fec: Optional[str] = None
        dstmac = rule.match.get("dstmac")
        if dstmac is not None:
            fec = vmac_index.get(dstmac)
        if fec is None:
            dstip = rule.match.get("dstip")
            if isinstance(dstip, IPv4Prefix):
                fec = fec_label(controller, dstip)
        egress: List[Tuple[int, str]] = []
        for action in rule.actions:
            port = action.output_port
            if port is None:
                continue
            participant = "?"
            if controller.fabric is not None:
                try:
                    participant = controller.fabric.attachment_at(port).router.name
                except FabricError:
                    pass
            egress.append((port, participant))
        return _RuleAttribution(fec=fec or UNATTRIBUTED, egress=tuple(egress))

    def _refresh_attribution(
            self, snapshot: Iterable[Tuple[FlowRule, int, int, int]]) -> None:
        generation = self.controller.table.generation
        if generation == self._attr_generation:
            return
        self._vmac_index = self.controller.allocator.vmac_index()
        self._attribution = {
            cookie: self._attribute(rule)
            for rule, cookie, _p, _b in snapshot}
        self._attr_generation = generation

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------

    def _smooth(self, axis: str, key: str, rate: float) -> float:
        held = self._ewma.get((axis, key))
        ewma = rate if held is None else (
            self.ewma_alpha * rate + (1.0 - self.ewma_alpha) * held)
        self._ewma[(axis, key)] = ewma
        return ewma

    def _accumulate(self, axis: str, key: str,
                    delta_packets: int, delta_bytes: int) -> Tuple[int, int]:
        totals = self._totals.setdefault((axis, key), [0, 0])
        totals[0] += delta_packets
        totals[1] += delta_bytes
        return totals[0], totals[1]

    def sample(self, now: float) -> MonitorSample:
        """Take one sample at clock time ``now`` and update all views."""
        table = self.controller.table
        snapshot = table.counters_snapshot()
        self._refresh_attribution(snapshot)
        interval = (0.0 if self._last_time is None
                    else max(0.0, now - self._last_time))
        self._last_time = now

        def to_rate(delta_bytes: int) -> float:
            if interval <= 0.0:
                return 0.0
            return delta_bytes * 8.0 / (interval * 1e6)

        axis_deltas: Dict[str, Dict[str, List[int]]] = {
            "fec": {}, "participant": {}, "port": {}}

        def bump(axis: str, key: str, dp: int, db: int) -> None:
            cell = axis_deltas[axis].setdefault(key, [0, 0])
            cell[0] += dp
            cell[1] += db

        rules: List[RuleView] = []
        seen: Dict[int, Tuple[int, int]] = {}
        total_delta_bytes = 0
        for rule, cookie, packets, byte_count in snapshot:
            held = self._last_counts.get(cookie)
            if held is not None:
                delta_packets = packets - held[0]
                delta_bytes = byte_count - held[1]
            else:
                delta_packets, delta_bytes = packets, byte_count
            seen[cookie] = (packets, byte_count)
            attribution = self._attribution[cookie]
            rate = to_rate(delta_bytes)
            held_ewma = self._rule_ewma.get(cookie)
            ewma = rate if held_ewma is None else (
                self.ewma_alpha * rate + (1.0 - self.ewma_alpha) * held_ewma)
            self._rule_ewma[cookie] = ewma
            rules.append(RuleView(
                rule=rule, fec=attribution.fec, egress=attribution.egress,
                packets=packets, bytes=byte_count,
                delta_packets=delta_packets, delta_bytes=delta_bytes,
                rate_mbps=rate, ewma_mbps=ewma))
            total_delta_bytes += delta_bytes
            bump("fec", attribution.fec, delta_packets, delta_bytes)
            # Multicast attribution: every egress carries the full delta,
            # matching the switch's per-port tx counters.
            for port, participant in attribution.egress:
                bump("port", str(port), delta_packets, delta_bytes)
                if participant != "?":
                    bump("participant", participant, delta_packets, delta_bytes)
        self._last_counts = seen
        self._rule_ewma = {
            cookie: value for cookie, value in self._rule_ewma.items()
            if cookie in seen}

        registry = self.controller.telemetry.registry

        def finish(axis: str, label_name: str) -> Tuple[AggregateView, ...]:
            views = []
            for key, (dp, db) in sorted(axis_deltas[axis].items()):
                packets, byte_count = self._accumulate(axis, key, dp, db)
                rate = to_rate(db)
                views.append(AggregateView(
                    key=key, packets=packets, bytes=byte_count,
                    delta_packets=dp, delta_bytes=db, rate_mbps=rate,
                    ewma_mbps=self._smooth(axis, key, rate)))
                registry.gauge(
                    f"sdx_dataplane_{axis}_rate_mbps",
                    f"Estimated rate per {axis}, last sample",
                    **{label_name: key}).set(rate)
            return tuple(views)

        fecs = finish("fec", "fec")
        participants = finish("participant", "participant")
        ports = finish("port", "port")
        total_rate = to_rate(total_delta_bytes)
        self._samples_counter.inc()
        self._rules_gauge.set(len(rules))
        self._total_rate_gauge.set(total_rate)
        return MonitorSample(
            sampled_at=now, interval=interval, total_rate_mbps=total_rate,
            fecs=fecs, participants=participants, ports=ports,
            rules=tuple(rules))
