"""Property tests: counter survival across delta application.

The flow table's contract (see :mod:`repro.dataplane.flowtable`): a
rule's packet/byte counters are preserved across :meth:`apply_delta`
and two-phase swaps exactly when its ``(priority, match)`` key survives
the swap — untouched rules keep their objects, modified keys transfer
counters to the replacement — and reset to zero when the key is deleted
and later re-added. Cookies follow the same lifecycle: stable across
survival, fresh after a delete + re-add.

Hypothesis drives random table states through random two-phase swaps
and checks the invariant for every key.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.flowtable import FlowTable
from repro.net.packet import Packet
from repro.policy.classifier import Action
from repro.policy.flowrules import FlowRule
from repro.policy.headerspace import WILDCARD, HeaderSpace
from repro.southbound.diff import compute_delta
from repro.southbound.engine import schedule_two_phase

PRIORITIES = (1, 2, 3)
DSTPORTS = (22, 80, 443, None)
ACTION_CHOICES = ((), (Action(port=1),), (Action(port=2),))

#: All (priority, dstport) keys a generated table can use.
KEYS = tuple((priority, dstport)
             for priority in PRIORITIES for dstport in DSTPORTS)


def build_rule(key, action_index):
    priority, dstport = key
    space = WILDCARD if dstport is None else HeaderSpace(dstport=dstport)
    return FlowRule(priority=priority, match=space,
                    actions=ACTION_CHOICES[action_index])


#: A table state: a mapping key -> action choice (keys are unique, which
#: matches what compiled classifiers produce).
table_states = st.dictionaries(
    st.sampled_from(KEYS), st.integers(min_value=0, max_value=2),
    max_size=len(KEYS))


def populate(state):
    table = FlowTable()
    for key, action_index in sorted(state.items(), key=str):
        table.install(build_rule(key, action_index))
    return table


def exercise(table):
    """Run traffic through every match so counters are non-trivial."""
    for dstport in (22, 80, 443, 9999):
        table.process(Packet(port=1, dstport=dstport), size_bytes=100)


def swap(table, target_state):
    """Two-phase apply of the delta toward ``target_state``."""
    target = [build_rule(key, action_index)
              for key, action_index in sorted(target_state.items(), key=str)]
    delta = compute_delta(table.rules, target)
    table.apply_delta(schedule_two_phase(delta.mods))


def state_of(table):
    """key -> (packets, bytes, cookie) for every installed rule."""
    return {
        (rule.priority, rule.match.get("dstport")):
            (table.packets_matched(rule), table.bytes_matched(rule),
             table.cookie_of(rule))
        for rule in table.rules
    }


@given(initial=table_states, target=table_states)
@settings(max_examples=60, deadline=None)
def test_counters_survive_exactly_for_surviving_keys(initial, target):
    table = populate(initial)
    exercise(table)
    before = state_of(table)
    swap(table, target)

    after = state_of(table)
    assert set(after) == set(target)
    for key, action_index in target.items():
        packets, byte_count, cookie = after[key]
        rule = table.rule_for_key(*_key_space(key))
        assert rule.actions == ACTION_CHOICES[action_index]
        if key in initial:
            # Survived (untouched or modified in place): counters and
            # cookie carry over verbatim.
            assert (packets, byte_count, cookie) == before[key]
        else:
            # Newly added: zeroed counters, a never-seen cookie.
            assert (packets, byte_count) == (0, 0)
            assert cookie > max(
                (c for _p, _b, c in before.values()), default=0)


@given(state=table_states, intermediate=table_states)
@settings(max_examples=60, deadline=None)
def test_delete_and_readd_resets_counters(state, intermediate):
    # state -> intermediate -> state: keys missing from the middle table
    # were deleted and re-added, so they must restart from zero with a
    # fresh cookie; keys present throughout keep everything.
    table = populate(state)
    exercise(table)
    before = state_of(table)
    swap(table, intermediate)
    swap(table, state)

    after = state_of(table)
    assert set(after) == set(state)
    for key in state:
        packets, byte_count, cookie = after[key]
        if key in intermediate:
            assert (packets, byte_count, cookie) == before[key]
        else:
            assert (packets, byte_count) == (0, 0)
            assert cookie > before[key][2]


def _key_space(key):
    priority, dstport = key
    return priority, (WILDCARD if dstport is None
                      else HeaderSpace(dstport=dstport))
