"""Bursty BGP update traces matching the paper's measurements.

Section 4.3 reports, from one week of RIPE RIS data at the three largest
IXPs (Table 1):

* only 10-14% of prefixes saw any update at all;
* update bursts affect ≤ 3 prefixes 75% of the time, with rare bursts
  above 1,000 prefixes;
* burst inter-arrival times are ≥ 10 s 75% of the time and ≥ 60 s half
  of the time.

The generator draws inter-arrivals from a log-normal calibrated to those
two quantiles (median 60 s, 25th percentile 10 s → σ ≈ 2.66) and burst
sizes from a 75/25 mixture of Uniform{1..3} and a Pareto tail. Updates
are attribute changes (fresh AS path from the same announcer) or
withdraw/re-announce pairs, confined to an "update-prone" subset of
prefixes sized by the target fraction — the paper's observation that
policy-relevant prefixes are the stable ones falls out of this shape.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bgp.attributes import RouteAttributes
from repro.bgp.messages import Update
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.workloads.routing import synthesize_as_path
from repro.workloads.seeding import SeedLike, make_rng
from repro.workloads.topology import SyntheticIxp

#: Log-normal inter-arrival parameters (seconds): median 60, P25 = 10.
_INTERARRIVAL_MU = math.log(60.0)
_INTERARRIVAL_SIGMA = (math.log(60.0) - math.log(10.0)) / 0.674

#: Mixture weight of small (≤3 prefix) bursts.
_SMALL_BURST_WEIGHT = 0.75

#: Pareto shape for the burst-size tail.
_BURST_TAIL_ALPHA = 1.1

#: Hard cap on burst size (the paper saw one >1,000-prefix burst a week).
_MAX_BURST = 1_500


@dataclass(frozen=True)
class TraceEvent:
    """One timed BGP update."""

    time: float
    update: Update

    @property
    def prefix_count(self) -> int:
        """How many prefixes this event touches."""
        return len(self.update.prefixes)


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of a trace (for the Table 1 reproduction)."""

    updates: int
    prefixes_updated: int
    total_prefixes: int
    bursts: int
    fraction_small_bursts: float
    fraction_gaps_over_10s: float
    fraction_gaps_over_60s: float

    @property
    def fraction_prefixes_updated(self) -> float:
        """Share of the table that churned at all."""
        if self.total_prefixes == 0:
            return 0.0
        return self.prefixes_updated / self.total_prefixes


def _burst_size(rng: random.Random) -> int:
    if rng.random() < _SMALL_BURST_WEIGHT:
        return rng.randint(1, 3)
    tail = int(3 / (rng.random() ** (1.0 / _BURST_TAIL_ALPHA)))
    return max(4, min(tail, _MAX_BURST))


def _interarrival(rng: random.Random) -> float:
    return rng.lognormvariate(_INTERARRIVAL_MU, _INTERARRIVAL_SIGMA)


class UpdateSequencer:
    """Stateful announce/withdraw/re-announce update emitter.

    The reusable core of :func:`generate_trace`: given the map from
    prefix to its announcers, each :meth:`step` call emits one update for
    a prefix — a fresh-attribute re-announcement, or (with probability
    ``withdraw_probability``) a withdrawal that is always followed, on
    the prefix's next turn for that announcer, by a re-announcement. The
    withdrawn-set bookkeeping keeps long traces from draining the table.

    Shared by the calibrated trace generator and by the fuzzing scenario
    generator in :mod:`repro.verification.scenario`, so both produce the
    same update mix from the same underlying distributions.
    """

    def __init__(self, announcers: Dict[IPv4Prefix, List[Tuple[str, int]]],
                 rng: random.Random, *,
                 withdraw_probability: float = 0.2,
                 next_hop: Optional[IPv4Address] = None):
        self.announcers = announcers
        self.rng = rng
        self.withdraw_probability = withdraw_probability
        self.next_hop = (next_hop if next_hop is not None
                         else IPv4Address("172.0.0.1"))
        self.withdrawn: Set[Tuple[str, IPv4Prefix]] = set()

    def step(self, prefix: IPv4Prefix) -> Update:
        """One update touching ``prefix`` (announce or withdraw)."""
        rng = self.rng
        name, asn = rng.choice(self.announcers[prefix])
        key = (name, prefix)
        if key in self.withdrawn:
            self.withdrawn.discard(key)
            return self._reannounce(prefix, name, asn)
        if rng.random() < self.withdraw_probability:
            self.withdrawn.add(key)
            return Update.withdraw(name, prefix)
        return self._reannounce(prefix, name, asn)

    def _reannounce(self, prefix: IPv4Prefix, name: str, asn: int) -> Update:
        rng = self.rng
        origin = rng.randrange(1_000, 60_000)
        path = synthesize_as_path(origin, asn, rng,
                                  mean_extra_hops=rng.choice((1.0, 2.0, 3.0)))
        attributes = RouteAttributes(
            next_hop=self.next_hop, as_path=path,
            med=rng.choice((0, 10, 50)))
        return Update.announce(name, prefix, attributes)


def generate_trace(ixp: SyntheticIxp, *, duration_seconds: float = 3_600.0,
                   seed: SeedLike = 0,
                   fraction_prefixes_updated: float = 0.12,
                   max_updates: Optional[int] = None,
                   withdraw_probability: float = 0.2) -> List[TraceEvent]:
    """A timed update trace against an existing synthetic IXP.

    Events reference real announcers of each prefix, so replaying the
    trace through a controller exercises genuine best-path changes.
    ``seed`` is an int or a :class:`random.Random` (see
    :mod:`repro.workloads.seeding`).

    ``max_updates`` changes the stopping rule: the trace runs until that
    many updates have been emitted, however long that takes — the
    burst-size and inter-arrival *distributions* stay calibrated, and the
    clock simply extends past ``duration_seconds`` if needed. (Matching
    the paper's absolute update counts and its quantile statistics with
    one stationary process is otherwise impossible at small scale.)
    """
    rng = make_rng(seed, salt=0x5DF)
    announcers: Dict[IPv4Prefix, List[Tuple[str, int]]] = {}
    for name, prefix, path in ixp.announcements:
        asn = ixp.by_name(name).asn
        announcers.setdefault(prefix, []).append((name, asn))

    all_prefixes = list(announcers)
    prone_count = max(1, int(len(all_prefixes) * fraction_prefixes_updated))
    prone = rng.sample(all_prefixes, k=prone_count)
    sequencer = UpdateSequencer(
        announcers, rng, withdraw_probability=withdraw_probability)

    events: List[TraceEvent] = []
    clock = 0.0
    emitted = 0
    while True:
        clock += _interarrival(rng)
        if max_updates is None and clock > duration_seconds:
            break
        size = min(_burst_size(rng), len(prone))
        touched = rng.sample(prone, k=size)
        for prefix in touched:
            events.append(TraceEvent(time=clock, update=sequencer.step(prefix)))
            emitted += 1
            if max_updates is not None and emitted >= max_updates:
                return events
    return events


def generate_burst_trace(ixp: SyntheticIxp, *, bursts: int = 10,
                         burst_size: int = 100, hot_prefixes: int = 16,
                         gap_seconds: float = 30.0, seed: SeedLike = 0,
                         withdraw_probability: float = 0.2) -> List[TraceEvent]:
    """A coalescing-friendly trace: dense bursts hammering few prefixes.

    Unlike :func:`generate_trace` (whose bursts touch *distinct*
    prefixes, the Table 1 shape), each burst here draws ``burst_size``
    updates **with replacement** from a hot set of ``hot_prefixes`` — the
    flap-storm shape where per-(participant, prefix) coalescing pays
    off. All updates within a burst share one timestamp; bursts are
    ``gap_seconds`` apart, so a replayer's idle detection sees clear
    quiet periods between them.
    """
    if bursts < 1 or burst_size < 1:
        raise ValueError("bursts and burst_size must be positive")
    rng = make_rng(seed, salt=0xB0257)
    announcers: Dict[IPv4Prefix, List[Tuple[str, int]]] = {}
    for name, prefix, _path in ixp.announcements:
        asn = ixp.by_name(name).asn
        announcers.setdefault(prefix, []).append((name, asn))
    all_prefixes = list(announcers)
    hot = rng.sample(all_prefixes, k=min(hot_prefixes, len(all_prefixes)))
    sequencer = UpdateSequencer(
        announcers, rng, withdraw_probability=withdraw_probability)
    events: List[TraceEvent] = []
    clock = 0.0
    for _burst in range(bursts):
        clock += gap_seconds
        for _event in range(burst_size):
            prefix = rng.choice(hot)
            events.append(TraceEvent(time=clock, update=sequencer.step(prefix)))
    return events


def trace_stats(events: Sequence[TraceEvent],
                total_prefixes: int,
                burst_gap_seconds: float = 1.0) -> TraceStats:
    """Summarise a trace the way Table 1 / Section 4.3 summarise theirs.

    Events closer together than ``burst_gap_seconds`` count as one burst.
    """
    if not events:
        return TraceStats(0, 0, total_prefixes, 0, 0.0, 0.0, 0.0)
    prefixes: Set[IPv4Prefix] = set()
    burst_sizes: List[int] = []
    gaps: List[float] = []
    current_burst = 0
    last_time: Optional[float] = None
    for event in events:
        prefixes.update(event.update.prefixes)
        if last_time is None or event.time - last_time <= burst_gap_seconds:
            current_burst += event.prefix_count
        else:
            burst_sizes.append(current_burst)
            gaps.append(event.time - last_time)
            current_burst = event.prefix_count
        last_time = event.time
    burst_sizes.append(current_burst)
    small = sum(1 for size in burst_sizes if size <= 3)
    over_10 = sum(1 for gap in gaps if gap >= 10.0)
    over_60 = sum(1 for gap in gaps if gap >= 60.0)
    return TraceStats(
        updates=len(events),
        prefixes_updated=len(prefixes),
        total_prefixes=total_prefixes,
        bursts=len(burst_sizes),
        fraction_small_bursts=small / len(burst_sizes),
        fraction_gaps_over_10s=over_10 / len(gaps) if gaps else 1.0,
        fraction_gaps_over_60s=over_60 / len(gaps) if gaps else 1.0,
    )
