"""Analyzer entry points: run the check catalogue over an exchange.

Three frontends share one engine:

* :func:`analyze_controller` — lint a controller's installed state;
* :func:`lint_config` — lint a JSON config document, running the raw
  document checks first and then building the exchange (documents that
  fail raw validation are skipped rather than aborting the build, so
  one bad policy does not hide findings about the rest);
* :func:`analyze_context` — the engine, for callers that assemble a
  :class:`StaticsContext` themselves (the fuzz cross-check does).

Telemetry: each run bumps ``sdx_statics_runs_total`` and the
per-severity ``sdx_statics_*_total`` counters under a
``statics.analyze`` span, so lint activity lands in the same ``repro
stats`` snapshot as the pipeline it guards.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import PolicyError, ReproError
from repro.statics.checks import (
    BlackholeCheck,
    Check,
    DeadClauseCheck,
    FieldSanityCheck,
    IsolationCheck,
    RoutelessForwardCheck,
    ShadowOverlapCheck,
    StaticsContext,
    UnreachableDefaultCheck,
)
from repro.statics.diagnostics import (
    Diagnostic,
    RawPolicyDocument,
    Severity,
    SourceLocation,
    StaticsReport,
)
from repro.telemetry import Telemetry, get_telemetry

#: The full check catalogue, in reporting order.
DEFAULT_CHECKS: Tuple[Check, ...] = (
    FieldSanityCheck(),
    IsolationCheck(),
    RoutelessForwardCheck(),
    DeadClauseCheck(),
    ShadowOverlapCheck(),
    BlackholeCheck(),
    UnreachableDefaultCheck(),
)


def analyze_context(context: StaticsContext,
                    checks: Sequence[Check] = DEFAULT_CHECKS,
                    telemetry: Optional[Telemetry] = None) -> StaticsReport:
    """Run ``checks`` over an assembled context."""
    telemetry = telemetry if telemetry is not None else get_telemetry()
    registry = telemetry.registry
    runs_counter = registry.counter(
        "sdx_statics_runs_total", "Static-analysis runs")
    diagnostics_counter = registry.counter(
        "sdx_statics_diagnostics_total", "Diagnostics emitted by the "
        "static policy verifier")
    errors_counter = registry.counter(
        "sdx_statics_errors_total", "Error-severity statics diagnostics")
    warnings_counter = registry.counter(
        "sdx_statics_warnings_total", "Warning-severity statics diagnostics")

    report = StaticsReport(checks_run=tuple(check.check_id for check in checks))
    with telemetry.span("statics.analyze", checks=len(checks)) as span:
        participants = context.participants()
        report.participants_analyzed = len(participants)
        report.clauses_analyzed = sum(
            len(context.clauses(participant, direction))
            for participant in participants
            for direction in context.directions(participant)
        ) + len(context.raw_policies)
        for check in checks:
            report.extend(list(check.run(context)))
        span.set_tag(diagnostics=len(report.diagnostics))
    runs_counter.inc()
    diagnostics_counter.inc(len(report.diagnostics))
    errors_counter.inc(len(report.errors))
    warnings_counter.inc(len(report.warnings))
    return report


def analyze_controller(controller, *,
                       checks: Sequence[Check] = DEFAULT_CHECKS,
                       raw_policies: Sequence[RawPolicyDocument] = (),
                       telemetry: Optional[Telemetry] = None) -> StaticsReport:
    """Lint everything installed in (or offered to) a controller.

    A :class:`~repro.federation.controller.FederatedController` gets the
    federation-wide analysis (the member-exchange battery plus the
    cross-exchange SDX008/SDX009 checks) instead of the single-exchange
    engine; ``checks``/``raw_policies`` apply to single exchanges only.
    """
    from repro.federation.controller import FederatedController

    if isinstance(controller, FederatedController):
        from repro.federation.checks import analyze_federation

        return analyze_federation(controller, telemetry=telemetry)
    context = StaticsContext.from_controller(
        controller, raw_policies=raw_policies)
    if telemetry is None:
        telemetry = getattr(controller, "telemetry", None)
    return analyze_context(context, checks=checks, telemetry=telemetry)


def _raw_documents(document: Mapping[str, Any]) -> List[RawPolicyDocument]:
    raw: List[RawPolicyDocument] = []
    for index, item in enumerate(document.get("policies", ())):
        raw.append(RawPolicyDocument(
            participant=str(item.get("participant", "?")),
            direction=str(item.get("direction", "?")),
            clause=item.get("clause", {}),
            index=index))
    return raw


def lint_config(document: Mapping[str, Any], *,
                checks: Sequence[Check] = DEFAULT_CHECKS,
                telemetry: Optional[Telemetry] = None,
                **controller_kwargs: Any) -> StaticsReport:
    """Lint a JSON configuration document end to end.

    Raw-document checks (SDX004/SDX006) run against every policy entry
    first; entries they flag — or that installation rejects — are
    skipped, and the remaining exchange is analyzed as a controller.
    Returns one merged report. A document with an ``exchanges`` key
    describes a federation and is dispatched to
    :func:`repro.federation.config.lint_federated_config` instead.
    """
    if "exchanges" in document:
        from repro.federation.config import lint_federated_config

        return lint_federated_config(document, telemetry=telemetry)
    from repro.config import clause_to_policy, controller_from_config

    raw = _raw_documents(document)
    stripped: Dict[str, Any] = dict(document)
    stripped["policies"] = []
    controller = controller_from_config(stripped, **controller_kwargs)

    # Which documents fail the raw checks? Run the raw-only surface once
    # so installation can skip them without raising.
    raw_context = StaticsContext(
        topology=controller.topology,
        route_server=controller.route_server,
        raw_policies=tuple(raw))
    raw_findings: List[Diagnostic] = []
    for check in checks:
        if check.check_id in ("SDX004", "SDX006"):
            raw_findings.extend(check.run(raw_context))
    flagged = {
        finding.location.document_index for finding in raw_findings
        if finding.location.document_index is not None
    }

    install_findings: List[Diagnostic] = []
    for entry in raw:
        if entry.index in flagged:
            continue
        try:
            participant = controller.topology.participant(entry.participant)
            policy = clause_to_policy(dict(entry.clause))
            if entry.direction == "out":
                participant.add_outbound(policy)
            else:
                participant.add_inbound(policy)
        except (PolicyError, ReproError, KeyError, TypeError) as error:
            install_findings.append(Diagnostic(
                check_id="SDX006", check_name="field-sanity",
                severity=Severity.ERROR,
                location=SourceLocation(
                    entry.participant, entry.direction,
                    document_index=entry.index),
                message=f"policy rejected at installation: {error}"))

    # Full analysis over what installed cleanly; raw findings merge in.
    # The raw checks are excluded here (already run above).
    remaining = [c for c in checks if c.check_id not in ("SDX004", "SDX006")]
    installed_checks = [c for c in checks if c.check_id == "SDX004"]
    report = analyze_context(
        StaticsContext.from_controller(controller),
        checks=remaining + installed_checks, telemetry=telemetry)
    report.checks_run = tuple(check.check_id for check in checks)
    report.clauses_analyzed += len(raw)
    report.extend(raw_findings)
    report.extend(install_findings)
    return report
