"""Federation compile cost — exchange-count sweep of the federated stack.

For each exchange count, builds a seeded federated scenario, compiles
every member fabric through the federated change surface, runs the full
cross-exchange static analysis (the per-exchange battery plus
SDX008/SDX009), and walks a probe corpus through the real cross-fabric
driver from every ``(exchange, sender)`` state. Reports the three phase
costs per point alongside the structural counts that make the sweep
comparable across machines. Results land in
``benchmarks/results/federation_compile.json`` next to the rendered
table; the perf gate runs the same workload through the
``federation_compile`` family in quick mode.
"""

from conftest import publish, publish_json, scaled

from repro.experiments.metrics import render_table
from repro.federation import (
    analyze_federation,
    generate_federated_corpus,
    generate_federated_scenario,
)

SEED = 11
EXCHANGE_COUNTS = (2, 3, 4)
CORPUS_SIZE = 8


def _run_sweep():
    import time

    rows = []
    for exchanges in EXCHANGE_COUNTS:
        participants = scaled(4 + 3 * exchanges)
        scenario = generate_federated_scenario(
            SEED, exchanges=exchanges, participants=participants,
            prefixes=6, policies=8, steps=0)

        started = time.perf_counter()
        federation = scenario.build_controller(with_dataplane=True)
        build_seconds = time.perf_counter() - started

        started = time.perf_counter()
        report = analyze_federation(federation)
        statics_seconds = time.perf_counter() - started

        corpus = generate_federated_corpus(scenario, size=CORPUS_SIZE)
        walks = 0
        started = time.perf_counter()
        for exchange in scenario.exchanges:
            for spec in scenario.participants_at(exchange):
                for packet in corpus:
                    federation.forward(exchange, spec.name, packet)
                    walks += 1
        walk_seconds = time.perf_counter() - started

        rows.append({
            "exchanges": exchanges,
            "participants": participants,
            "clauses": report.clauses_analyzed,
            "diagnostics": len(report.diagnostics),
            "walks": walks,
            "build_seconds": build_seconds,
            "statics_seconds": statics_seconds,
            "walk_seconds": walk_seconds,
        })
    return rows


def test_federation_compile(benchmark):
    rows = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    table_rows = [[
        row["exchanges"], row["participants"], row["clauses"],
        row["diagnostics"], row["walks"],
        f"{row['build_seconds'] * 1000:.1f}",
        f"{row['statics_seconds'] * 1000:.1f}",
        f"{row['walk_seconds'] * 1000:.1f}",
    ] for row in rows]
    publish("federation_compile", render_table(
        ["exchanges", "members", "clauses", "findings", "walks",
         "build ms", "statics ms", "walk ms"],
        table_rows))
    publish_json("federation_compile", rows)

    # Shape: every sweep point must analyze a non-trivial federation and
    # actually exercise the cross-fabric walk.
    for row in rows:
        assert row["clauses"] > 0, row
        assert row["walks"] > 0, row
