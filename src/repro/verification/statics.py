"""Fuzzer cross-validation of the static policy verifier.

The analyzer's strongest verdicts are falsifiable at packet level, and
this module holds it to them with the reference interpreter (which
shares no code with the analyzer's region algebra):

* **SDX001 (dead clause)** — a clause marked dead must never win a
  forwarding decision: every witness packet concretised from its
  BGP-refined regions, and every corpus packet its predicate admits,
  must be taken by an earlier clause or the default route;
* **SDX003 (route-less forward)** — a forward whose effective region
  set the BGP join erased must never fire either: its traffic falls to
  the sender's best-route default (or is dropped at the border).

:func:`statics_crosscheck` replays a scenario's BGP trace, re-running
the analysis on the live controller state at the base table and after
every step, so the verdicts are checked against *churning* RIB state,
not just the initial one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.net.packet import Packet
from repro.policy.headerspace import HeaderSpace
from repro.statics.checks import StaticsContext, dead_clause_map
from repro.statics.regions import witness_packet
from repro.verification.oracle import OracleFailure
from repro.verification.reference import ReferenceInterpreter
from repro.verification.scenario import Scenario


def _routeless_indices(context: StaticsContext, participant
                       ) -> List[int]:
    """Outbound clause indices whose effective region set is empty.

    Mirrors the SDX003 eligibility conditions: static forwards with a
    non-empty raw region that the BGP join erased entirely.
    """
    infos = context.clause_info(participant, "out")
    effective = context.effective(participant, "out")
    erased: List[int] = []
    for index, info in enumerate(infos):
        clause = info.clause
        if info.dynamic or clause.drops:
            continue
        if not isinstance(clause.target, str):
            continue
        if not info.regions or effective[index]:
            continue
        erased.append(index)
    return erased


def _probes_for(regions, clause, corpus: Sequence[Packet],
                prefixes: Sequence) -> List[Packet]:
    """Witnesses from each region plus corpus packets the clause admits.

    A region without a destination constraint (a port-only match, say)
    concretises to a packet the reference drops at the border for lack
    of a covering prefix, which would vacuously pass every assertion —
    so such regions are refined with each announced prefix first.
    """
    probes: List[Packet] = []
    for region in regions:
        if "dstip" in region:
            probes.append(witness_packet(region))
            continue
        for prefix in prefixes:
            refined = region.intersect(HeaderSpace(dstip=prefix))
            if refined is not None:
                probes.append(witness_packet(refined))
    probes.extend(
        packet for packet in corpus if clause.predicate.holds(packet))
    return probes


def _check_state(controller, reference: ReferenceInterpreter,
                 corpus: Sequence[Packet],
                 step: int) -> Optional[OracleFailure]:
    """Check every statics verdict on the current state, or ``None``.

    Clause indices align across all three systems: the scenario installs
    one clause per policy in list order, the analyzer numbers normalised
    clauses in installation order, and the reference bands its rules by
    the same filtered order.
    """
    context = StaticsContext.from_controller(controller)
    prefixes = context.route_server.all_prefixes()
    for participant in context.participants():
        if participant.is_remote:
            continue
        name = participant.name
        infos = context.clause_info(participant, "out")
        effective = context.effective(participant, "out")

        for index, verdict in dead_clause_map(
                context, participant, "out").items():
            probes = _probes_for(
                effective[index], infos[index].clause, corpus, prefixes)
            for packet in probes:
                winner = reference.winning_outbound_clause(name, packet)
                if winner == index:
                    return OracleFailure(
                        kind="statics-dead-clause-fired", step=step,
                        detail=f"{name}: clause #{index} "
                               f"({infos[index].clause.describe()}) was "
                               f"marked dead (covered by "
                               f"{verdict.covered_by}) but wins {packet!r} "
                               f"in the reference interpreter")

        for index in _routeless_indices(context, participant):
            clause = infos[index].clause
            probes = _probes_for(infos[index].regions, clause, corpus,
                                 prefixes)
            for packet in probes:
                winner = reference.winning_outbound_clause(name, packet)
                if winner == index:
                    return OracleFailure(
                        kind="statics-routeless-forward-fired", step=step,
                        detail=f"{name}: clause #{index} "
                               f"({clause.describe()}) was marked "
                               f"route-less but wins {packet!r} in the "
                               f"reference interpreter instead of falling "
                               f"to the default route")
    return None


def statics_crosscheck(scenario: Scenario,
                       corpus: Sequence[Packet] = ()
                       ) -> Optional[OracleFailure]:
    """Cross-validate analyzer verdicts against the reference interpreter.

    Runs the analysis at the base table and after every trace step,
    firing witness and corpus packets at the reference each time.
    Returns the first breach as an :class:`OracleFailure` (``step`` is
    ``-1`` for the base state), or ``None`` when every verdict held.
    """
    controller = scenario.build_controller(with_dataplane=False)
    reference = ReferenceInterpreter(scenario)
    failure = _check_state(controller, reference, corpus, step=-1)
    if failure is not None:
        return failure
    for step_index, step in enumerate(scenario.trace):
        update = scenario.step_update(step)
        controller.submit_update(update)
        reference.apply(update)
        failure = _check_state(controller, reference, corpus, step=step_index)
        if failure is not None:
            return failure
    return None
