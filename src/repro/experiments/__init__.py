"""Measurement harness shared by the benchmark suite and the examples.

- :mod:`repro.experiments.metrics` — CDFs and labelled data series;
- :mod:`repro.experiments.traffic` — the flow-level traffic simulator
  behind the Figure 5 deployment experiments;
- :mod:`repro.experiments.harness` — one runner per table/figure of the
  paper's evaluation, returning printable rows.
"""

from repro.experiments.metrics import Cdf, Series
from repro.experiments.traffic import FlowSpec, TrafficSimulation, TimedAction
from repro.experiments.harness import (
    run_fig5a,
    run_fig5b,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
    run_table1,
)

__all__ = [
    "Cdf",
    "FlowSpec",
    "Series",
    "TimedAction",
    "TrafficSimulation",
    "run_fig5a",
    "run_fig5b",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_table1",
]
