"""Tests for the federation topology layer (exchanges/presence/origins)."""

import pytest

from repro.exceptions import ParticipantError
from repro.federation import (
    ExchangePresence,
    FederatedParticipantSpec,
    FederationTopology,
    TransitLink,
)
from repro.net.addresses import IPv4Address, IPv4Prefix


def spec(name, asn, *exchanges, ports=1):
    return FederatedParticipantSpec(
        name=name, asn=asn,
        presence=tuple(ExchangePresence(e, ports) for e in exchanges))


def two_exchange_topology():
    topology = FederationTopology()
    topology.add_exchange("IXP-A")
    topology.add_exchange("IXP-B")
    topology.add_participant(spec("T", 65001, "IXP-A", "IXP-B"))
    topology.add_participant(spec("C", 65002, "IXP-A"))
    topology.add_participant(spec("E", 65003, "IXP-B"))
    return topology


class TestRegistration:
    def test_duplicate_exchange_rejected(self):
        topology = FederationTopology()
        topology.add_exchange("IXP-A")
        with pytest.raises(ParticipantError):
            topology.add_exchange("IXP-A")

    def test_unknown_exchange_rejected(self):
        topology = FederationTopology()
        topology.add_exchange("IXP-A")
        with pytest.raises(ParticipantError):
            topology.add_participant(spec("T", 65001, "IXP-Z"))

    def test_duplicate_participant_rejected(self):
        topology = two_exchange_topology()
        with pytest.raises(ParticipantError):
            topology.add_participant(spec("T", 65009, "IXP-A"))

    def test_empty_presence_rejected(self):
        topology = FederationTopology()
        topology.add_exchange("IXP-A")
        with pytest.raises(ParticipantError):
            topology.add_participant(
                FederatedParticipantSpec(name="T", asn=65001, presence=()))

    def test_registration_order_preserved(self):
        topology = two_exchange_topology()
        assert topology.exchanges() == ("IXP-A", "IXP-B")
        assert topology.names() == ("T", "C", "E")
        assert topology.participants_at("IXP-A") == ("T", "C")
        assert topology.participants_at("IXP-B") == ("T", "E")


class TestPresence:
    def test_presence_keeps_preference_order(self):
        topology = FederationTopology()
        topology.add_exchange("IXP-A")
        topology.add_exchange("IXP-B")
        topology.add_participant(spec("T", 65001, "IXP-B", "IXP-A"))
        assert topology.presence("T") == ("IXP-B", "IXP-A")

    def test_shared_participants(self):
        topology = two_exchange_topology()
        assert topology.shared_participants() == ("T",)

    def test_per_exchange_port_counts(self):
        topology = FederationTopology()
        topology.add_exchange("IXP-A")
        topology.add_exchange("IXP-B")
        topology.add_participant(FederatedParticipantSpec(
            name="T", asn=65001,
            presence=(ExchangePresence("IXP-A", 2),
                      ExchangePresence("IXP-B", 1))))
        record = topology.participant("T")
        assert record.ports_at("IXP-A") == 2
        assert record.ports_at("IXP-B") == 1
        assert record.ports_at("IXP-Z") == 0
        assert record.is_shared


class TestTransitLinks:
    def test_shared_participant_induces_one_link(self):
        topology = two_exchange_topology()
        assert topology.transit_links() == (
            TransitLink("T", "IXP-A", "IXP-B"),)

    def test_three_exchanges_induce_all_pairs(self):
        topology = FederationTopology()
        for name in ("IXP-A", "IXP-B", "IXP-C"):
            topology.add_exchange(name)
        topology.add_participant(spec("T", 65001, "IXP-A", "IXP-B", "IXP-C"))
        links = topology.transit_links()
        assert len(links) == 3
        assert {(link.left, link.right) for link in links} == {
            ("IXP-A", "IXP-B"), ("IXP-A", "IXP-C"), ("IXP-B", "IXP-C")}

    def test_other_end(self):
        link = TransitLink("T", "IXP-A", "IXP-B")
        assert link.other_end("IXP-A") == "IXP-B"
        assert link.other_end("IXP-B") == "IXP-A"
        with pytest.raises(ParticipantError):
            link.other_end("IXP-C")


class TestOrigins:
    def test_origin_lookup(self):
        topology = two_exchange_topology()
        topology.register_origin(IPv4Prefix("10.0.0.0/8"), "C")
        assert topology.origin_of(IPv4Address("10.1.2.3")) == "C"
        assert topology.origin_of(IPv4Address("11.1.2.3")) is None

    def test_origin_requires_known_participant(self):
        topology = two_exchange_topology()
        with pytest.raises(ParticipantError):
            topology.register_origin(IPv4Prefix("10.0.0.0/8"), "Ghost")

    def test_origins_preserve_registration(self):
        topology = two_exchange_topology()
        prefix = IPv4Prefix("10.0.0.0/8")
        topology.register_origin(prefix, "C")
        assert topology.origins() == ((prefix, "C"),)
