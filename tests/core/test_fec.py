"""Tests for forwarding-equivalence-class computation (MDS).

The hypothesis properties assert the paper's definition directly: the
result is a partition of the union, every input set is a union of whole
groups, and groups are maximal (two prefixes with identical membership
are never split).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.asn import AsPath
from repro.bgp.attributes import RouteAttributes
from repro.bgp.routeserver import RouteServer
from repro.core.fec import (
    compute_prefix_groups,
    groups_for_context,
    minimum_disjoint_subsets,
    policy_contexts,
)
from repro.core.participant import Participant
from repro.dataplane.router import BorderRouter, RouterPort
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.net.mac import MacAddress
from repro.policy.policies import fwd, match

# A small universe of prefixes so random sets overlap meaningfully.
UNIVERSE = [IPv4Prefix(network=i << 24, length=8) for i in range(1, 17)]
prefix_sets = st.sets(st.sampled_from(UNIVERSE), max_size=8)


class TestMinimumDisjointSubsets:
    def test_paper_worked_example(self):
        """Section 4.2: C = {{p1,p2,p3},{p1,p2,p3,p4},{p1,p2,p4},{p3}} gives
        C' = {{p1,p2},{p3},{p4}}."""
        p1, p2, p3, p4 = UNIVERSE[:4]
        groups = minimum_disjoint_subsets([
            {p1, p2, p3},
            {p1, p2, p3, p4},
            {p1, p2, p4},
            {p3},
        ])
        assert sorted(groups, key=lambda g: sorted(g)) == sorted(
            [frozenset({p1, p2}), frozenset({p3}), frozenset({p4})],
            key=lambda g: sorted(g))

    def test_empty_collection(self):
        assert minimum_disjoint_subsets([]) == []

    def test_identical_sets_collapse(self):
        p1, p2 = UNIVERSE[:2]
        groups = minimum_disjoint_subsets([{p1, p2}, {p1, p2}])
        assert groups == [frozenset({p1, p2})]

    def test_disjoint_sets_stay_separate(self):
        p1, p2 = UNIVERSE[:2]
        groups = minimum_disjoint_subsets([{p1}, {p2}])
        assert sorted(groups, key=sorted) == [frozenset({p1}), frozenset({p2})]

    @settings(max_examples=100, deadline=None)
    @given(st.lists(prefix_sets, max_size=6))
    def test_partition_property(self, sets):
        groups = minimum_disjoint_subsets(sets)
        union = set().union(*sets) if sets else set()
        # Covers the union exactly.
        assert set().union(*groups) if groups else set() == union
        # Pairwise disjoint.
        seen = set()
        for group in groups:
            assert not (group & seen)
            seen |= group

    @settings(max_examples=100, deadline=None)
    @given(st.lists(prefix_sets, max_size=6))
    def test_each_input_is_union_of_groups_property(self, sets):
        groups = minimum_disjoint_subsets(sets)
        for prefix_set in sets:
            for group in groups:
                overlap = group & prefix_set
                assert not overlap or overlap == group

    @settings(max_examples=100, deadline=None)
    @given(st.lists(prefix_sets, max_size=6))
    def test_maximality_property(self, sets):
        """Two prefixes in every same set must share a group."""
        groups = minimum_disjoint_subsets(sets)
        index = {}
        for number, group in enumerate(groups):
            for prefix in group:
                index[prefix] = number
        union = list(index)
        for left in union:
            for right in union:
                same_membership = all(
                    (left in s) == (right in s) for s in sets)
                if same_membership:
                    assert index[left] == index[right]


def make_participant(name, asn, port, policies=()):
    router = BorderRouter(name, asn, [
        RouterPort(mac=MacAddress(0x020000000000 + port),
                   ip=IPv4Address("172.0.0.1") + port, switch_port=port)])
    participant = Participant(name=name, asn=asn, router=router)
    for policy in policies:
        participant.add_outbound(policy)
    return participant


def announce(server, who, prefix_text, path):
    server.announce(who, IPv4Prefix(prefix_text), RouteAttributes(
        next_hop=IPv4Address("172.0.0.99"), as_path=AsPath(path)))


class TestComputePrefixGroups:
    def make_scene(self):
        server = RouteServer()
        for name, asn in [("A", 65001), ("B", 65002), ("C", 65003), ("E", 65005)]:
            server.add_peer(name, asn)
        # Figure 1b: B exports p1..p3, C exports p1..p4; p5 is announced by
        # E, which no policy targets, so p5 keeps its default behaviour.
        for prefix in ("11.0.0.0/8", "12.0.0.0/8", "13.0.0.0/8"):
            announce(server, "B", prefix, [65002, 100])
        for prefix in ("11.0.0.0/8", "12.0.0.0/8", "13.0.0.0/8", "14.0.0.0/8"):
            announce(server, "C", prefix, [65003, 200, 100])
        announce(server, "E", "15.0.0.0/8", [65005, 300])
        participants = [
            make_participant("A", 65001, 1, policies=[
                (match(dstport=80) >> fwd("B")) + (match(dstport=443) >> fwd("C"))]),
            make_participant("B", 65002, 2),
            make_participant("C", 65003, 3),
            make_participant("E", 65005, 4),
        ]
        return server, participants

    def test_contexts_derived_from_policies(self):
        server, participants = self.make_scene()
        contexts = policy_contexts(participants, server)
        assert set(contexts) == {("A", "B"), ("A", "C")}
        assert len(contexts[("A", "B")]) == 3
        assert len(contexts[("A", "C")]) == 4

    def test_untouched_prefix_excluded(self):
        server, participants = self.make_scene()
        groups = compute_prefix_groups(participants, server)
        grouped = set().union(*(group.prefixes for group in groups))
        assert IPv4Prefix("15.0.0.0/8") not in grouped

    def test_paper_grouping(self):
        """p1,p2 (and p3: B-announced, same ranking) group; p4 separate."""
        server, participants = self.make_scene()
        groups = compute_prefix_groups(participants, server)
        by_prefix = {}
        for group in groups:
            for prefix in group.prefixes:
                by_prefix[prefix] = group.group_id
        assert by_prefix[IPv4Prefix("11.0.0.0/8")] == by_prefix[IPv4Prefix("12.0.0.0/8")]
        assert by_prefix[IPv4Prefix("11.0.0.0/8")] == by_prefix[IPv4Prefix("13.0.0.0/8")]
        assert by_prefix[IPv4Prefix("14.0.0.0/8")] != by_prefix[IPv4Prefix("11.0.0.0/8")]

    def test_ranked_announcers_split_groups(self):
        """Same policy membership but different best route -> different
        groups (the paper's second pass)."""
        server, participants = self.make_scene()
        # Make B the best route for p1 (shorter path than C's) but leave
        # p2 preferring C by withdrawing B's p2.
        server.withdraw("B", IPv4Prefix("12.0.0.0/8"))
        groups = compute_prefix_groups(participants, server)
        by_prefix = {}
        for group in groups:
            for prefix in group.prefixes:
                by_prefix[prefix] = group.group_id
        assert by_prefix[IPv4Prefix("11.0.0.0/8")] != by_prefix[IPv4Prefix("12.0.0.0/8")]

    def test_groups_deterministic(self):
        server, participants = self.make_scene()
        first = compute_prefix_groups(participants, server)
        second = compute_prefix_groups(participants, server)
        assert [(g.group_id, g.prefixes) for g in first] == [
            (g.group_id, g.prefixes) for g in second]

    def test_representative_is_deterministic_member(self):
        server, participants = self.make_scene()
        for group in compute_prefix_groups(participants, server):
            assert group.representative in group.prefixes
            assert group.representative == min(group.prefixes)

    def test_vmac_assignment_stable_across_recompiles(self):
        """Identical state must yield identical VNH/VMAC assignments, so
        border-router tags stay valid across no-op recompilations."""
        from repro.core.vnh import VnhAllocator
        server, participants = self.make_scene()
        groups = compute_prefix_groups(participants, server)
        allocator = VnhAllocator()
        allocator.assign_groups(groups)
        first = {
            prefix: allocator.vmac_for_prefix(prefix)
            for group in groups for prefix in group.prefixes
        }
        allocator.assign_groups(compute_prefix_groups(participants, server))
        second = {
            prefix: allocator.vmac_for_prefix(prefix) for prefix in first
        }
        assert first == second

    def test_groups_for_context(self):
        server, participants = self.make_scene()
        groups = compute_prefix_groups(participants, server)
        via_b = groups_for_context(groups, ("A", "B"))
        assert set().union(*(g.prefixes for g in via_b)) == {
            IPv4Prefix("11.0.0.0/8"), IPv4Prefix("12.0.0.0/8"), IPv4Prefix("13.0.0.0/8")}
