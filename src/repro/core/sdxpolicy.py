"""The participant-facing SDX policy API.

A :class:`ParticipantHandle` is what an AS operator programs against:
install/remove inbound and outbound policies, inspect the BGP routes the
route server selected (``handle.rib``), group prefixes by AS-path regular
expressions, and originate/withdraw prefixes at the SDX.

Origination is gated by an RPKI-like :class:`OwnershipRegistry` —
Section 3.2: "the SDX would verify that AS D indeed owns the IP prefix".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.bgp.asn import AsPath
from repro.bgp.attributes import Origin, RouteAttributes
from repro.bgp.rib import PrefixTrie, RibView
from repro.exceptions import OwnershipError
from repro.net.addresses import IPv4Address, IPv4Prefix
from repro.policy.policies import Policy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.controller import SdxController
    from repro.core.participant import Participant


class OwnershipRegistry:
    """Which participant may originate which address space.

    Owning a prefix implies owning all of its subnets, mirroring how RPKI
    ROAs authorise up to a max length (we treat max length as /32 for
    simplicity).
    """

    def __init__(self) -> None:
        self._owners: PrefixTrie[str] = PrefixTrie()

    def register(self, prefix: IPv4Prefix, owner: str) -> None:
        """Record that ``owner`` holds ``prefix``."""
        existing = self._owners.exact(prefix)
        if existing is not None and existing != owner:
            raise OwnershipError(
                f"prefix {prefix} already registered to {existing!r}")
        self._owners.insert(prefix, owner)

    def owner_of(self, prefix: IPv4Prefix) -> Optional[str]:
        """The holder of the smallest registered prefix covering ``prefix``."""
        covering = self._owners.covering(prefix)
        return covering[0][1] if covering else None

    def entries(self) -> Tuple[Tuple[IPv4Prefix, str], ...]:
        """Every (prefix, owner) registration, sorted by prefix."""
        return tuple(sorted(self._owners.items()))

    def verify(self, participant: str, prefix: IPv4Prefix) -> None:
        """Raise :class:`OwnershipError` unless ``participant`` may
        originate ``prefix``."""
        owner = self.owner_of(prefix)
        if owner is None:
            raise OwnershipError(
                f"prefix {prefix} is not registered to any participant")
        if owner != participant:
            raise OwnershipError(
                f"participant {participant!r} cannot originate {prefix} "
                f"owned by {owner!r}")


class ParticipantHandle:
    """The programming interface one participant holds."""

    def __init__(self, participant: "Participant", controller: "SdxController"):
        self._participant = participant
        self._controller = controller

    @property
    def name(self) -> str:
        """The participant's name."""
        return self._participant.name

    @property
    def asn(self) -> int:
        """The participant's AS number."""
        return self._participant.asn

    @property
    def participant(self) -> "Participant":
        """The underlying participant record."""
        return self._participant

    def port(self, index: int = 0) -> int:
        """The switch-port number of physical interface ``index``."""
        return self._participant.port(index)

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------

    def _check_targets(self, policy: Policy) -> None:
        """Reject forwards to participants the exchange does not know."""
        from repro.exceptions import PolicyError

        known = set(self._controller.topology.names())
        unknown = sorted(policy.symbolic_ports() - known)
        if unknown:
            raise PolicyError(
                f"policy of {self.name!r} forwards to unknown "
                f"participant(s) {unknown}; known: {sorted(known)}")

    def add_outbound(self, policy: Policy) -> None:
        """Install an outbound policy and trigger recompilation."""
        self._check_targets(policy)
        self._participant.add_outbound(policy)
        self._controller.notify_policy_change(self.name)

    def add_inbound(self, policy: Policy) -> None:
        """Install an inbound policy and trigger recompilation."""
        self._check_targets(policy)
        self._participant.add_inbound(policy)
        self._controller.notify_policy_change(self.name)

    def remove_outbound(self, policy: Policy) -> None:
        """Remove an outbound policy and trigger recompilation."""
        self._participant.remove_outbound(policy)
        self._controller.notify_policy_change(self.name)

    def remove_inbound(self, policy: Policy) -> None:
        """Remove an inbound policy and trigger recompilation."""
        self._participant.remove_inbound(policy)
        self._controller.notify_policy_change(self.name)

    def clear_policies(self) -> None:
        """Remove every policy of this participant."""
        self._participant.clear_policies()
        self._controller.notify_policy_change(self.name)

    # ------------------------------------------------------------------
    # BGP interaction
    # ------------------------------------------------------------------

    @property
    def rib(self) -> RibView:
        """The participant's current Loc-RIB view at the route server."""
        return self._controller.route_server.view_for(self.name)

    def filter_rib(self, attribute: str, pattern: str) -> Tuple[IPv4Prefix, ...]:
        """Prefixes whose selected route matches a regex on an attribute.

        The paper's ``RIB.filter('as_path', '.*43515$')`` idiom.
        """
        return self.rib.filter(attribute, pattern)

    def announce(self, prefix: IPv4Prefix,
                 as_path: Optional[AsPath] = None) -> None:
        """Originate ``prefix`` at the SDX (ownership-checked).

        This is the remote-participant primitive behind wide-area load
        balancing: ``announce(74.125.1.0/24)`` pulls anycast traffic into
        the SDX where the participant's inbound policies take over.
        """
        self._controller.originate(self.name, prefix, as_path)

    def withdraw(self, prefix: IPv4Prefix) -> None:
        """Withdraw a previously originated prefix."""
        self._controller.withdraw_origination(self.name, prefix)

    def __repr__(self) -> str:
        return f"ParticipantHandle({self.name!r})"
