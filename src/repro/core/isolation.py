"""Transformation 1: isolate each policy to its owner's virtual switch.

"The SDX runtime automatically augments each participant policy with an
explicit match() on the participant's port; for an inbound policy [...]
the participant's virtual port; for an outbound policy [...] the
participant's physical ports" (Section 4.1).

Isolation is what makes participant policies disjoint by construction —
the property the composition optimisations of Section 4.3 rely on.
"""

from __future__ import annotations

from repro.core.participant import Participant
from repro.core.vswitch import VirtualTopology
from repro.exceptions import PolicyError
from repro.policy.policies import Policy, Sequential, match
from repro.policy.predicates import match_any_value


def ingress_guard(participant: Participant) -> Policy:
    """The predicate matching traffic entering from the participant's own
    border router (its physical ports)."""
    ports = participant.switch_ports
    if not ports:
        raise PolicyError(
            f"remote participant {participant.name!r} has no physical ports "
            f"to guard an outbound policy with")
    return match_any_value("port", ports)


def isolate_outbound(participant: Participant, policy: Policy) -> Policy:
    """Restrict an outbound policy to the owner's physical ingress ports."""
    return Sequential((ingress_guard(participant), policy))


def isolate_inbound(participant: Participant, policy: Policy,
                    topology: VirtualTopology) -> Policy:
    """Restrict an inbound policy to the owner's virtual port."""
    return Sequential((match(port=topology.vport(participant.name)), policy))
