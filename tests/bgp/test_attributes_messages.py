"""Tests for route attributes and UPDATE message modelling."""

import pytest

from repro.bgp.asn import AsPath
from repro.bgp.attributes import DEFAULT_LOCAL_PREF, Origin, RouteAttributes
from repro.bgp.messages import Announcement, Update, Withdrawal
from repro.exceptions import BgpError
from repro.net.addresses import IPv4Address, IPv4Prefix


def make_attributes(**overrides):
    base = dict(next_hop=IPv4Address("172.0.0.1"), as_path=AsPath([65001]))
    base.update(overrides)
    return RouteAttributes(**base)


class TestRouteAttributes:
    def test_defaults(self):
        attributes = make_attributes()
        assert attributes.local_pref == DEFAULT_LOCAL_PREF
        assert attributes.origin is Origin.IGP
        assert attributes.med == 0
        assert attributes.communities == frozenset()

    def test_coerces_next_hop_text(self):
        attributes = RouteAttributes(next_hop="172.0.0.1", as_path=AsPath([65001]))
        assert attributes.next_hop == IPv4Address("172.0.0.1")

    def test_rejects_negative_med_and_lp(self):
        with pytest.raises(BgpError):
            make_attributes(med=-1)
        with pytest.raises(BgpError):
            make_attributes(local_pref=-1)

    def test_with_next_hop_is_pure(self):
        original = make_attributes()
        rewritten = original.with_next_hop(IPv4Address("10.9.9.9"))
        assert rewritten.next_hop == IPv4Address("10.9.9.9")
        assert original.next_hop == IPv4Address("172.0.0.1")
        assert rewritten.as_path == original.as_path

    def test_with_prepended(self):
        attributes = make_attributes().with_prepended(64512, count=2)
        assert attributes.as_path.asns == (64512, 64512, 65001)

    def test_with_local_pref(self):
        assert make_attributes().with_local_pref(200).local_pref == 200

    def test_communities(self):
        attributes = make_attributes(communities=frozenset({(65001, 100)}))
        assert attributes.has_community((65001, 100))
        assert not attributes.has_community((65001, 200))
        updated = attributes.with_communities(frozenset({(65001, 300)}))
        assert updated.has_community((65001, 300))

    def test_origin_ordering(self):
        assert Origin.IGP < Origin.EGP < Origin.INCOMPLETE

    def test_hashable(self):
        assert len({make_attributes(), make_attributes()}) == 1


class TestUpdate:
    def test_announce_constructor(self):
        prefix = IPv4Prefix("10.0.0.0/8")
        update = Update.announce("A", prefix, make_attributes())
        assert update.sender == "A"
        assert update.announcements[0].prefix == prefix
        assert update.withdrawals == ()

    def test_withdraw_constructor(self):
        update = Update.withdraw("A", IPv4Prefix("10.0.0.0/8"))
        assert update.withdrawals == (Withdrawal(IPv4Prefix("10.0.0.0/8")),)

    def test_prefixes_lists_both(self):
        update = Update(
            sender="A",
            announcements=(Announcement(IPv4Prefix("10.0.0.0/8"), make_attributes()),),
            withdrawals=(Withdrawal(IPv4Prefix("20.0.0.0/8")),))
        assert set(update.prefixes) == {IPv4Prefix("10.0.0.0/8"), IPv4Prefix("20.0.0.0/8")}

    def test_repr_counts(self):
        update = Update.announce("A", IPv4Prefix("10.0.0.0/8"), make_attributes())
        assert "+1/-0" in repr(update)
