"""Diagnostic value types: severities, locations, reports, renderings."""

import json

from repro.net.packet import Packet
from repro.statics.diagnostics import (
    Diagnostic,
    RawPolicyDocument,
    Severity,
    SourceLocation,
    StaticsReport,
)


def diag(check_id="SDX001", severity=Severity.ERROR, participant="A",
         direction="out", clause_index=0, **kwargs):
    return Diagnostic(
        check_id=check_id, check_name="test-check", severity=severity,
        location=SourceLocation(participant, direction, clause_index),
        message=kwargs.pop("message", "something is wrong"), **kwargs)


class TestSeverity:
    def test_rank_orders_most_severe_first(self):
        assert Severity.ERROR.rank < Severity.WARNING.rank < Severity.INFO.rank

    def test_str_is_the_value(self):
        assert str(Severity.WARNING) == "warning"
        assert Severity("error") is Severity.ERROR


class TestSourceLocation:
    def test_describe_participant_only(self):
        assert SourceLocation("A").describe() == "A"

    def test_describe_with_direction_and_clause(self):
        assert SourceLocation("A", "out", 2).describe() == "A:out#2"

    def test_describe_with_document_index(self):
        location = SourceLocation("B", "in", document_index=3)
        assert location.describe() == "B:in@doc3"

    def test_to_dict_omits_none_fields(self):
        assert SourceLocation("A").to_dict() == {"participant": "A"}
        assert SourceLocation("A", "out", 1).to_dict() == {
            "participant": "A", "direction": "out", "clause_index": 1}

    def test_raw_document_location(self):
        document = RawPolicyDocument(
            participant="C", direction="out", clause={"match": {}}, index=4)
        assert document.location == SourceLocation(
            "C", "out", document_index=4)


class TestDiagnostic:
    def test_describe_mentions_severity_check_and_location(self):
        text = diag().describe()
        assert "ERROR" in text
        assert "SDX001" in text
        assert "[A:out#0]" in text
        assert "something is wrong" in text

    def test_describe_includes_witness(self):
        text = diag(witness=Packet(dstip="10.0.0.1", dstport=80)).describe()
        assert "e.g." in text

    def test_to_dict_encodes_witness_and_data(self):
        encoded = diag(witness=Packet(dstip="10.0.0.1", dstport=80),
                       data=(("covered_by", [0, 1]),)).to_dict()
        assert encoded["check_id"] == "SDX001"
        assert encoded["severity"] == "error"
        assert encoded["witness"]["dstip"] == "10.0.0.1"
        assert encoded["witness"]["dstport"] == "80"
        assert encoded["data"] == {"covered_by": [0, 1]}
        json.dumps(encoded)  # must be JSON-safe

    def test_to_dict_stringifies_exotic_data_values(self):
        encoded = diag(data=(("prefixes", (object(),)),)).to_dict()
        assert isinstance(encoded["data"]["prefixes"][0], str)


class TestStaticsReport:
    def report(self):
        report = StaticsReport(participants_analyzed=2, clauses_analyzed=5,
                               checks_run=("SDX001", "SDX002"))
        report.extend([
            diag(check_id="SDX007", severity=Severity.INFO, participant="B",
                 direction=None, clause_index=None),
            diag(check_id="SDX002", severity=Severity.WARNING, clause_index=1),
            diag(check_id="SDX001", severity=Severity.ERROR),
        ])
        return report

    def test_sorted_puts_errors_first(self):
        ordered = self.report().sorted()
        assert [d.severity for d in ordered] == [
            Severity.ERROR, Severity.WARNING, Severity.INFO]

    def test_error_and_warning_filters(self):
        report = self.report()
        assert [d.check_id for d in report.errors] == ["SDX001"]
        assert [d.check_id for d in report.warnings] == ["SDX002"]
        assert report.has_errors

    def test_by_check(self):
        assert len(self.report().by_check("SDX002")) == 1
        assert self.report().by_check("SDX999") == []

    def test_counts_and_summary(self):
        report = self.report()
        assert report.counts() == {"error": 1, "warning": 1, "info": 1}
        summary = report.summary()
        assert "2 participant(s)" in summary
        assert "5 clause(s)" in summary
        assert "1 error(s), 1 warning(s), 1 info" in summary

    def test_render_has_summary_plus_one_line_per_finding(self):
        lines = self.report().render().splitlines()
        assert len(lines) == 4
        assert "ERROR" in lines[1]

    def test_to_dict_summary_block(self):
        encoded = self.report().to_dict()
        assert encoded["summary"]["ok"] is False
        assert encoded["summary"]["checks_run"] == ["SDX001", "SDX002"]
        assert len(encoded["diagnostics"]) == 3

    def test_to_json_round_trips(self):
        decoded = json.loads(self.report().to_json())
        assert decoded["summary"]["counts"]["error"] == 1

    def test_empty_report_is_ok(self):
        report = StaticsReport()
        assert not report.has_errors
        assert report.to_dict()["summary"]["ok"] is True
