"""Runtime-vs-inline equivalence: canonical state and the oracle mode.

The acceptance story mirrors test_oracle.py: clean scenarios replay
through the deterministic runtime to an identical final state, and an
injected event loss (a lossy queue) is caught as a runtime-state
failure.
"""

import pytest

from repro.runtime import RuntimeConfig
from repro.runtime.queue import OfferOutcome, RuntimeQueue
from repro.verification.corpus import generate_corpus
from repro.verification.runtime import (
    CanonicalState,
    canonical_state,
    check_runtime_equivalence,
)
from repro.verification.scenario import generate_scenario

from tests.core.scenarios import figure1_controller


def small_check(scenario, **kwargs):
    kwargs.setdefault("corpus", generate_corpus(scenario, size=6))
    return check_runtime_equivalence(scenario, **kwargs)


class TestCanonicalState:
    def test_same_controller_diffs_empty(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        assert canonical_state(sdx).diff(canonical_state(sdx)) == []

    def test_independent_builds_are_equal(self):
        first, *_ = figure1_controller()
        second, *_ = figure1_controller()
        first.start()
        second.start()
        assert canonical_state(first).diff(canonical_state(second)) == []

    def test_route_difference_is_reported(self):
        from repro.bgp.asn import AsPath
        from repro.net.addresses import IPv4Prefix
        first, *_ = figure1_controller()
        second, *_ = figure1_controller()
        first.start()
        second.start()
        second.announce_route("C", IPv4Prefix("19.0.0.0/8"),
                              AsPath([65003, 999]))
        problems = canonical_state(first).diff(canonical_state(second))
        assert problems
        assert any("19.0.0.0/8" in problem for problem in problems)

    def test_policy_suspension_is_reported(self):
        first, *_ = figure1_controller()
        second, *_ = figure1_controller()
        first.start()
        second.start()
        second.suspend_policies()
        problems = canonical_state(first).diff(canonical_state(second))
        assert any("suspension" in problem for problem in problems)

    def test_is_frozen(self):
        sdx, *_ = figure1_controller()
        sdx.start()
        state = canonical_state(sdx)
        assert isinstance(state, CanonicalState)
        with pytest.raises(AttributeError):
            state.rule_count = 0


class TestCleanEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_no_false_positives(self, seed):
        scenario = generate_scenario(seed, steps=10)
        assert small_check(scenario) is None

    def test_no_coalescing_also_equivalent(self):
        scenario = generate_scenario(4, steps=10)
        assert small_check(
            scenario, config=RuntimeConfig(coalesce=False)) is None

    def test_small_batches_also_equivalent(self):
        scenario = generate_scenario(5, steps=10)
        assert small_check(
            scenario, drain_every=1,
            config=RuntimeConfig(batch_size=1)) is None


class TestInjectedLoss:
    def test_silent_event_loss_is_caught(self, monkeypatch):
        """A queue that silently drops every third admitted event must
        surface as a canonical-state divergence."""
        admitted = {"count": 0}
        real_offer = RuntimeQueue.offer

        def lossy_offer(self, event):
            admitted["count"] += 1
            if admitted["count"] % 3 == 0:
                return OfferOutcome.ENQUEUED  # lie: event vanishes
            return real_offer(self, event)

        monkeypatch.setattr(RuntimeQueue, "offer", lossy_offer)
        failure = None
        for seed in range(6):
            scenario = generate_scenario(seed, steps=12)
            failure = small_check(scenario)
            if failure is not None:
                break
        assert failure is not None
        assert failure.kind == "runtime-state"
        assert failure.detail
