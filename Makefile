# Convenience targets for the SDX reproduction.

PYTHON ?= python

.PHONY: install test lint bench bench-results examples docs clean

install:
	$(PYTHON) -m pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Runs ruff when available (config in pyproject.toml); falls back to a
# byte-compile pass so the target still catches syntax errors on
# machines without ruff.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src/ tests/ benchmarks/ tools/ examples/; \
	else \
		echo "ruff not installed; falling back to compileall"; \
		$(PYTHON) -m compileall -q src/ tests/ benchmarks/ tools/ examples/; \
	fi

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-results: bench
	@cat benchmarks/results/*.txt

examples:
	@for script in examples/*.py; do \
		echo "=== $$script ==="; \
		$(PYTHON) $$script; \
		echo; \
	done

docs:
	$(PYTHON) tools/gen_api_docs.py

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
