"""BGP peering sessions between participant routers and the route server.

A deliberately small finite-state machine: the evaluation (Table 1) needs
session *resets* — RIPE collector traces are cleaned of reset-induced
churn, and our synthetic trace generator injects and then discards resets
the same way — but not keepalive timers or TCP emulation. States follow
RFC 4271 naming with the connect-phase states collapsed, plus one
extension the chaos suite needs: a ``DOWN`` state for *failed* (as
opposed to administratively reset) sessions.

The legal transitions::

    IDLE ──open──> OPEN_SENT ──establish──> ESTABLISHED
    OPEN_SENT / ESTABLISHED ──reset──> IDLE      (administrative)
    OPEN_SENT / ESTABLISHED ──fail───> DOWN      (failure)
    DOWN ──open──> OPEN_SENT                      (recovery)

Everything else raises :class:`~repro.exceptions.SessionStateError` —
the guard the churn suite's property tests pin down. Both teardown
transitions clear the sent/received logs and synthesize the *implied
withdrawal* of every prefix the peer had announced (RFC 4271 §6.7
semantics: routes learned over a session do not survive it), which the
route server applies through its normal decision/notify pipeline.
"""

from __future__ import annotations

import enum
from typing import Callable, FrozenSet, List, Optional

from repro.bgp.messages import Update, Withdrawal
from repro.exceptions import SessionStateError
from repro.net.addresses import IPv4Prefix


class SessionState(enum.Enum):
    """Collapsed RFC 4271 session states (plus the failed ``DOWN``)."""

    IDLE = "idle"
    OPEN_SENT = "open_sent"
    ESTABLISHED = "established"
    DOWN = "down"


#: States a session may be torn down from (reset or fail).
_UP_STATES = (SessionState.OPEN_SENT, SessionState.ESTABLISHED)

#: Hook invoked with (implied withdrawal, reason) on every teardown.
#: The route server wires this to its RIB-flush pipeline so a session
#: death is indistinguishable from the peer withdrawing everything.
DownHandler = Callable[[Update, str], None]


class BgpSession:
    """One peering session, counting traffic and enforcing state rules.

    ``on_update`` is invoked for every update received while ESTABLISHED —
    the route server wires this to its RIB processing. ``on_down`` is
    invoked with the implied-withdrawal update whenever the session is
    reset or fails (see :meth:`reset` / :meth:`fail`).
    """

    def __init__(self, peer: str, asn: int,
                 on_update: Optional[Callable[[Update], None]] = None,
                 on_down: Optional[DownHandler] = None):
        self.peer = peer
        self.asn = asn
        self.state = SessionState.IDLE
        self.updates_received = 0
        self.updates_sent = 0
        self.resets = 0
        self.failures = 0
        self._on_update = on_update
        self._on_down = on_down
        self._sent_log: List[Update] = []
        self._received_log: List[Update] = []
        self._announced: set = set()

    def open(self) -> None:
        """Begin session establishment (IDLE or DOWN -> OPEN_SENT)."""
        if self.state not in (SessionState.IDLE, SessionState.DOWN):
            raise SessionStateError(f"cannot open session to {self.peer} in {self.state}")
        self.state = SessionState.OPEN_SENT

    def establish(self) -> None:
        """Complete establishment (OPEN_SENT -> ESTABLISHED)."""
        if self.state is not SessionState.OPEN_SENT:
            raise SessionStateError(
                f"cannot establish session to {self.peer} in {self.state}")
        self.state = SessionState.ESTABLISHED

    def connect(self) -> None:
        """Convenience: open and establish in one call."""
        self.open()
        self.establish()

    @property
    def is_established(self) -> bool:
        """True when updates may flow."""
        return self.state is SessionState.ESTABLISHED

    @property
    def is_down(self) -> bool:
        """True after a failure, until the session re-opens."""
        return self.state is SessionState.DOWN

    def note_update(self, update: Update) -> None:
        """Record an inbound update in the session's bookkeeping.

        Counts it, logs it, and tracks the announced-prefix set that the
        implied withdrawal on teardown is synthesized from. Called from
        :meth:`receive` and from the route server's bulk-load path (which
        bypasses per-update session delivery by design).
        """
        self.updates_received += 1
        self._received_log.append(update)
        for announcement in update.announcements:
            self._announced.add(announcement.prefix)
        for withdrawal in update.withdrawals:
            self._announced.discard(withdrawal.prefix)

    def receive(self, update: Update) -> None:
        """Process an update arriving from the peer."""
        if not self.is_established:
            raise SessionStateError(
                f"update from {self.peer} while session {self.state.value}")
        if update.sender != self.peer:
            raise SessionStateError(
                f"session with {self.peer} received update from {update.sender}")
        self.note_update(update)
        if self._on_update is not None:
            self._on_update(update)

    def send(self, update: Update) -> None:
        """Record an update sent to the peer (kept for inspection)."""
        if not self.is_established:
            raise SessionStateError(
                f"cannot send to {self.peer} while session {self.state.value}")
        self.updates_sent += 1
        self._sent_log.append(update)

    @property
    def sent_log(self) -> List[Update]:
        """Updates sent on this session, oldest first."""
        return list(self._sent_log)

    @property
    def received_log(self) -> List[Update]:
        """Updates received on this session, oldest first."""
        return list(self._received_log)

    @property
    def announced(self) -> FrozenSet[IPv4Prefix]:
        """Prefixes the peer currently has announced on this session."""
        return frozenset(self._announced)

    def _tear_down(self, to_state: SessionState, verb: str) -> Update:
        """Shared teardown: guard, clear logs, synthesize the withdrawal."""
        if self.state not in _UP_STATES:
            raise SessionStateError(
                f"cannot {verb} session to {self.peer} in {self.state}")
        implied = Update(sender=self.peer, withdrawals=tuple(
            Withdrawal(prefix) for prefix in sorted(self._announced)))
        self.state = to_state
        self._announced.clear()
        self._sent_log.clear()
        self._received_log.clear()
        if self._on_down is not None:
            self._on_down(implied, verb)
        return implied

    def reset(self) -> Update:
        """Tear the session down administratively (-> IDLE).

        Only legal from OPEN_SENT or ESTABLISHED; counts the reset,
        clears both logs, and returns the implied withdrawal of every
        prefix the peer had announced (also delivered to ``on_down``).
        """
        update = self._tear_down(SessionState.IDLE, "reset")
        self.resets += 1
        return update

    def fail(self) -> Update:
        """Tear the session down on failure (-> DOWN).

        Same teardown semantics as :meth:`reset`, but the session lands
        in DOWN — re-advertisements are skipped until :meth:`open`
        recovers it — and the failure counter increments instead.
        """
        update = self._tear_down(SessionState.DOWN, "fail")
        self.failures += 1
        return update

    def __repr__(self) -> str:
        return (f"BgpSession(peer={self.peer!r}, asn={self.asn}, "
                f"state={self.state.value})")
