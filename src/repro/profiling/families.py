"""Benchmark families: the named workloads behind ``repro bench``.

A *family* is a self-contained measurement the perf gate can re-run:
a callable that drives one paper workload (figure 8 compilation,
figure 10 update latency, runtime throughput, the monitoring loop) and
returns a flat ``{metric: value}`` dict, plus a
:class:`~repro.profiling.baselines.MetricSpec` per metric saying how
the value is gated. Each family runs in two modes:

- ``quick`` — a minutes-of-CI-budget subset sized for the perf gate
  (and for committed baselines);
- ``full`` — the paper-scale sweep, run by the scheduled full-bench CI
  job to build the long-term trajectory.

Timing metrics are noise-aware at the source: :func:`run_family` runs
the workload ``samples`` times and reports the per-metric **median**,
so one GC pause or scheduler hiccup can't fail the gate on its own.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Tuple

from repro.profiling.baselines import MetricSpec

#: Gate modes a family understands.
MODES = ("quick", "full")


@dataclass(frozen=True)
class BenchFamily:
    """One named benchmark workload and its gated metrics."""

    name: str
    description: str
    specs: Mapping[str, MetricSpec]
    runner: Callable[[str], Dict[str, float]]

    def run(self, mode: str) -> Dict[str, float]:
        """Run the workload once; returns ``{metric: value}``."""
        if mode not in MODES:
            raise ValueError(f"unknown bench mode {mode!r}")
        return self.runner(mode)


# ----------------------------------------------------------------------
# Family runners
# ----------------------------------------------------------------------


def _run_fig8(mode: str) -> Dict[str, float]:
    """Figure 8: full-pipeline compilation across a sweep grid."""
    from repro.experiments.harness import run_compilation_sweep

    if mode == "quick":
        points = run_compilation_sweep(
            participant_counts=(60,), prefix_counts=(400, 800))
    else:
        points = run_compilation_sweep(
            participant_counts=(100, 200, 300),
            prefix_counts=(2_000, 5_000, 10_000, 15_000))
    return {
        "compile_seconds_sum": sum(p.seconds for p in points),
        "compile_seconds_max": max(p.seconds for p in points),
        "prefix_groups_total": float(sum(p.prefix_groups for p in points)),
        "flow_rules_total": float(sum(p.flow_rules for p in points)),
    }


_FIG8_SPECS = {
    "compile_seconds_sum": MetricSpec(tolerance=0.6, direction="lower"),
    "compile_seconds_max": MetricSpec(tolerance=0.75, direction="lower"),
    "prefix_groups_total": MetricSpec(tolerance=0.02, direction="near",
                                      timing=False),
    "flow_rules_total": MetricSpec(tolerance=0.02, direction="near",
                                   timing=False),
}


def _run_fig10(mode: str) -> Dict[str, float]:
    """Figure 10: per-update fast-path latency distribution."""
    from repro.experiments.harness import run_fig10

    if mode == "quick":
        cdfs = run_fig10(updates=40, participant_counts=(40,), prefixes=400)
        cdf = cdfs[40]
    else:
        cdfs = run_fig10(updates=150, participant_counts=(100, 200, 300),
                         prefixes=2_000)
        cdf = cdfs[300]
    return {
        "update_p50_ms": cdf.median * 1000,
        "update_p90_ms": cdf.quantile(0.9) * 1000,
        "update_p99_ms": cdf.quantile(0.99) * 1000,
        "fraction_below_100ms": cdf.fraction_below(0.1),
    }


_FIG10_SPECS = {
    "update_p50_ms": MetricSpec(tolerance=0.6, direction="lower"),
    "update_p90_ms": MetricSpec(tolerance=0.6, direction="lower"),
    "update_p99_ms": MetricSpec(tolerance=0.75, direction="lower"),
    "fraction_below_100ms": MetricSpec(tolerance=0.15, direction="higher"),
}


def _run_runtime_throughput(mode: str) -> Dict[str, float]:
    """Runtime throughput: coalescing event loop under burst load."""
    from repro.runtime import RuntimeConfig
    from repro.workloads.policies import (
        generate_policies,
        install_assignments,
    )
    from repro.workloads.topology import generate_ixp
    from repro.workloads.updates import generate_burst_trace

    seed = 7
    if mode == "quick":
        participants, prefixes, updates = 12, 100, 600
        burst_size, hot_prefixes, batch_size = 100, 12, 64
    else:
        participants, prefixes, updates = 20, 200, 5_000
        burst_size, hot_prefixes, batch_size = 250, 24, 64

    ixp = generate_ixp(participants, prefixes, seed=seed)
    controller = ixp.build_controller()
    install_assignments(controller, generate_policies(ixp, seed=seed + 1))
    controller.start()
    events = generate_burst_trace(
        ixp, bursts=max(1, updates // burst_size), burst_size=burst_size,
        hot_prefixes=hot_prefixes, seed=seed + 2)
    runtime = controller.build_runtime(RuntimeConfig(batch_size=batch_size))

    started = time.perf_counter()
    for index, event in enumerate(events):
        runtime.submit_update(event.update)
        if (index + 1) % batch_size == 0:
            runtime.step()
    runtime.settle()
    elapsed = time.perf_counter() - started

    stats = runtime.stats()
    ingest = stats["ingest_seconds"]
    return {
        "updates_per_second": len(events) / elapsed,
        "ingest_p50_ms": ingest["p50"] * 1000,
        "ingest_p99_ms": ingest["p99"] * 1000,
        "coalescing_ratio": stats["coalescing_ratio"],
        "rs_submissions": float(
            controller.route_server.updates_processed),
    }


_RUNTIME_SPECS = {
    "updates_per_second": MetricSpec(tolerance=0.5, direction="higher"),
    "ingest_p50_ms": MetricSpec(tolerance=0.75, direction="lower"),
    "ingest_p99_ms": MetricSpec(tolerance=0.75, direction="lower"),
    "coalescing_ratio": MetricSpec(tolerance=0.3, direction="higher",
                                   timing=False),
    "rs_submissions": MetricSpec(tolerance=0.15, direction="near",
                                 timing=False),
}


def _run_monitoring_loop(mode: str) -> Dict[str, float]:
    """Closed monitoring loop: reaction latency and estimate accuracy.

    Runs on the manual clock, so the "timings" are simulated seconds —
    deterministic for a seed, and gated tightly as non-timing metrics.
    """
    from repro.experiments.monitoring import (
        LoopConfig,
        run_shifting_loop,
        run_skewed_loop,
    )

    duration = 30.0 if mode == "quick" else 40.0
    config = LoopConfig(duration=duration, shift_time=10.0,
                        cadence_seconds=1.0, statics_mode="strict")
    shifting = run_shifting_loop(config)
    skewed = run_skewed_loop(config)
    return {
        "shifting_reaction_seconds": float(shifting.reaction_seconds or 0.0),
        "skewed_reaction_seconds": float(skewed.reaction_seconds or 0.0),
        "port_rate_error_pct": float(shifting.port_rate_error_pct or 0.0),
        "fec_rate_error_pct": float(skewed.fec_rate_error_pct or 0.0),
        "rebalances": float(shifting.rebalances),
    }


_MONITORING_SPECS = {
    "shifting_reaction_seconds": MetricSpec(tolerance=0.25,
                                            direction="lower",
                                            timing=False),
    "skewed_reaction_seconds": MetricSpec(tolerance=0.25, direction="lower",
                                          timing=False),
    "port_rate_error_pct": MetricSpec(tolerance=0.5, direction="lower",
                                      timing=False),
    "fec_rate_error_pct": MetricSpec(tolerance=0.5, direction="lower",
                                     timing=False),
    "rebalances": MetricSpec(tolerance=0.0, direction="near", timing=False),
}


def _run_churn_convergence(mode: str) -> Dict[str, float]:
    """Churn convergence: per-fault-class cost of the chaos soak.

    Runs a seeded chaos soak (all six fault classes) and reports the
    runtime events spent converging after each class — deterministic
    for a seed, so they gate as tight non-timing metrics — plus the
    wall-clock cost of the whole session and the assertion-failure
    count, which must stay at exactly zero.
    """
    from repro.chaos import ChaosSoakConfig, run_chaos_soak
    from repro.workloads.churn import FAULT_KINDS

    if mode == "quick":
        config = ChaosSoakConfig(seed=3, scenarios=2, steps=16)
    else:
        config = ChaosSoakConfig(seed=3, scenarios=5, steps=24, faults=8)
    report = run_chaos_soak(config)
    out = {
        "faults_applied": float(report.faults_applied),
        "assertion_failures": float(len(report.findings)),
        "chaos_wall_seconds": report.elapsed_seconds,
    }
    for kind in FAULT_KINDS:
        stats = report.convergence.get(kind)
        out[f"{kind}_events"] = stats["events"] if stats else 0.0
    return out


_CHURN_SPECS = {
    "faults_applied": MetricSpec(tolerance=0.0, direction="near",
                                 timing=False),
    "assertion_failures": MetricSpec(tolerance=0.0, direction="near",
                                     timing=False),
    "chaos_wall_seconds": MetricSpec(tolerance=0.75, direction="lower"),
    "peer_down_events": MetricSpec(tolerance=0.25, direction="near",
                                   timing=False),
    "peer_up_events": MetricSpec(tolerance=0.25, direction="near",
                                 timing=False),
    "flap_events": MetricSpec(tolerance=0.25, direction="near",
                              timing=False),
    "correlated_failure_events": MetricSpec(tolerance=0.25,
                                            direction="near", timing=False),
    "stuck_route_events": MetricSpec(tolerance=0.25, direction="near",
                                     timing=False),
    "midswap_reset_events": MetricSpec(tolerance=0.25, direction="near",
                                       timing=False),
}


def _run_federation_compile(mode: str) -> Dict[str, float]:
    """Federation build + cross-exchange statics + federated walk cost.

    Sweeps exchange counts: each point generates a seeded federated
    scenario, compiles every member fabric through the federated change
    surface, runs the full cross-exchange analysis (per-exchange battery
    plus SDX008/SDX009), then walks a probe corpus through the real
    cross-fabric driver from every ``(exchange, sender)`` state. The
    structural counts are deterministic for the seed, so they gate as
    tight non-timing metrics; the three wall-clock phases gate loosely.
    """
    from repro.federation import (
        analyze_federation,
        generate_federated_corpus,
        generate_federated_scenario,
    )

    if mode == "quick":
        grid = ((2, 6),)
        corpus_size = 8
    else:
        grid = ((2, 10), (3, 14), (4, 18))
        corpus_size = 12

    build_seconds = 0.0
    statics_seconds = 0.0
    walk_seconds = 0.0
    diagnostics = 0.0
    clauses = 0.0
    walks = 0.0
    for exchanges, participants in grid:
        scenario = generate_federated_scenario(
            11, exchanges=exchanges, participants=participants,
            prefixes=6, policies=8, steps=0)
        started = time.perf_counter()
        federation = scenario.build_controller(with_dataplane=True)
        build_seconds += time.perf_counter() - started

        started = time.perf_counter()
        report = analyze_federation(federation)
        statics_seconds += time.perf_counter() - started
        diagnostics += len(report.diagnostics)
        clauses += report.clauses_analyzed

        corpus = generate_federated_corpus(scenario, size=corpus_size)
        started = time.perf_counter()
        for exchange in scenario.exchanges:
            for spec in scenario.participants_at(exchange):
                for packet in corpus:
                    federation.forward(exchange, spec.name, packet)
                    walks += 1
        walk_seconds += time.perf_counter() - started
    return {
        "federation_build_seconds": build_seconds,
        "federation_statics_seconds": statics_seconds,
        "federated_walk_seconds": walk_seconds,
        "federation_diagnostics_total": diagnostics,
        "federation_clauses_total": clauses,
        "federated_walks_total": walks,
    }


_FEDERATION_SPECS = {
    "federation_build_seconds": MetricSpec(tolerance=0.6, direction="lower"),
    "federation_statics_seconds": MetricSpec(tolerance=0.6,
                                             direction="lower"),
    "federated_walk_seconds": MetricSpec(tolerance=0.75, direction="lower"),
    "federation_diagnostics_total": MetricSpec(tolerance=0.0,
                                               direction="near",
                                               timing=False),
    "federation_clauses_total": MetricSpec(tolerance=0.0, direction="near",
                                           timing=False),
    "federated_walks_total": MetricSpec(tolerance=0.0, direction="near",
                                        timing=False),
}


def _run_dataplane_verify(mode: str) -> Dict[str, float]:
    """Dataplane verifier: per-delta incremental cost vs full re-analysis.

    Compiles a seeded workload with the dataplane verifier attached,
    times one whole-table analysis, then flips a spread of installed
    rules (modify to drop and back) and times ``verify_delta`` for each
    single-mod batch. The headline metric is the incremental speedup —
    the whole point of equivalence-class partitioning is that a FlowMod
    delta re-verifies orders of magnitude less than the full table. The
    table ends byte-identical to where it started, so the structural
    counts are deterministic for the seed.
    """
    from repro.policy.classifier import Action
    from repro.policy.flowrules import FlowRule
    from repro.southbound.diff import FlowMod
    from repro.statics import analyze_controller_dataplane
    from repro.workloads.policies import (
        generate_policies,
        install_assignments,
    )
    from repro.workloads.topology import generate_ixp

    seed = 5
    if mode == "quick":
        participants, prefixes, deltas = 24, 160, 12
    else:
        participants, prefixes, deltas = 60, 400, 30

    ixp = generate_ixp(participants, prefixes, seed=seed)
    controller = ixp.build_controller(dataplane_statics_mode="warn")
    install_assignments(controller, generate_policies(ixp, seed=seed + 1))
    controller.start()
    verifier = controller.dataplane_verifier

    started = time.perf_counter()
    report = analyze_controller_dataplane(controller)
    full_seconds = time.perf_counter() - started

    rules = list(controller.table.rules)
    timings: List[float] = []
    for index in range(deltas):
        target = rules[(index * len(rules)) // deltas]
        flipped = FlowRule(
            priority=target.priority, match=target.match,
            actions=(() if target.actions else (Action(port=1),)))
        for replacement in (flipped, target):
            mods = [FlowMod.modify(replacement)]
            controller.table.apply_delta(mods)
            started = time.perf_counter()
            verifier.verify_delta(mods)
            timings.append(time.perf_counter() - started)
    delta_seconds = statistics.median(timings)
    return {
        "full_analysis_seconds": full_seconds,
        "delta_verify_seconds": delta_seconds,
        "incremental_speedup": full_seconds / max(delta_seconds, 1e-9),
        "rules_analyzed": float(len(rules)),
        "diagnostics_total": float(len(report.diagnostics)),
    }


_DATAPLANE_VERIFY_SPECS = {
    "full_analysis_seconds": MetricSpec(tolerance=0.6, direction="lower"),
    "delta_verify_seconds": MetricSpec(tolerance=0.75, direction="lower"),
    "incremental_speedup": MetricSpec(tolerance=0.6, direction="higher"),
    "rules_analyzed": MetricSpec(tolerance=0.02, direction="near",
                                 timing=False),
    "diagnostics_total": MetricSpec(tolerance=0.0, direction="near",
                                    timing=False),
}


#: Every registered family, in gate order. The perf gate runs all of
#: these in quick mode; ``repro bench --family`` selects a subset.
FAMILIES: Dict[str, BenchFamily] = {
    family.name: family
    for family in (
        BenchFamily(
            name="fig8",
            description="Figure 8 compilation-time sweep",
            specs=_FIG8_SPECS,
            runner=_run_fig8),
        BenchFamily(
            name="fig10",
            description="Figure 10 per-update fast-path latency",
            specs=_FIG10_SPECS,
            runner=_run_fig10),
        BenchFamily(
            name="runtime_throughput",
            description="Control-plane runtime burst throughput",
            specs=_RUNTIME_SPECS,
            runner=_run_runtime_throughput),
        BenchFamily(
            name="monitoring_loop",
            description="Closed-loop monitoring reaction and accuracy",
            specs=_MONITORING_SPECS,
            runner=_run_monitoring_loop),
        BenchFamily(
            name="churn_convergence",
            description="Per-fault-class chaos convergence cost",
            specs=_CHURN_SPECS,
            runner=_run_churn_convergence),
        BenchFamily(
            name="federation_compile",
            description="Federated build, cross-exchange statics, and "
                        "cross-fabric walk cost",
            specs=_FEDERATION_SPECS,
            runner=_run_federation_compile),
        BenchFamily(
            name="dataplane_verify",
            description="Incremental dataplane verification vs full "
                        "re-analysis",
            specs=_DATAPLANE_VERIFY_SPECS,
            runner=_run_dataplane_verify),
    )
}


def run_family(name: str, mode: str = "quick",
               samples: int = 3) -> Tuple[Dict[str, float],
                                          List[Dict[str, float]]]:
    """Run a family ``samples`` times; return (medians, raw samples).

    The median-of-N is the noise control for wall-clock metrics: it is
    what ``repro bench`` records into baselines and diffs against them.
    """
    family = FAMILIES[name]
    if samples < 1:
        raise ValueError("samples must be positive")
    runs = [family.run(mode) for _ in range(samples)]
    medians = {
        metric: statistics.median(run[metric] for run in runs)
        for metric in runs[0]
    }
    return medians, runs
