"""Typed observations the detectors emit onto the runtime queue.

Every event is a frozen dataclass carrying the measurements that
justified it, stamped with the (simulation) clock time of the sample it
was derived from. Events are *edge-triggered*: detectors emit one event
when a condition raises and one when it clears (``raised`` flag), never
a stream of "still true" repeats — which is what lets the runtime treat
monitoring as its cheapest-to-shed event class without losing level
information (the latest edge always states the current level).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class MonitoringEvent:
    """Base class for data-plane observations.

    ``sampled_at`` is the runtime-clock time of the sample the
    observation was derived from, so reaction latency is measurable in
    simulation time even when events sit queued behind routing work.
    """

    sampled_at: float

    def describe(self) -> str:
        """A one-line human-readable rendering."""
        return f"{type(self).__name__}@{self.sampled_at:g}"


@dataclass(frozen=True)
class HeavyHitter(MonitoringEvent):
    """A forwarding equivalence class crossed the heavy-hitter bar.

    ``fec`` is the FEC label (its representative prefix); ``share`` is
    the FEC's fraction of the total monitored rate at the sample.
    ``raised`` is True on the raising edge and False when the FEC drops
    back below the clear threshold.
    """

    fec: str
    rate_mbps: float
    share: float
    raised: bool

    def describe(self) -> str:
        edge = "raise" if self.raised else "clear"
        return (f"heavy-hitter {edge} fec={self.fec} "
                f"rate={self.rate_mbps:.1f}Mbps share={self.share:.0%}")


@dataclass(frozen=True)
class UtilizationAlarm(MonitoringEvent):
    """An egress port crossed its utilization watermark."""

    port: int
    participant: str
    rate_mbps: float
    capacity_mbps: float
    utilization: float
    raised: bool

    def describe(self) -> str:
        edge = "raise" if self.raised else "clear"
        return (f"utilization {edge} port={self.port} ({self.participant}) "
                f"{self.utilization:.0%} of {self.capacity_mbps:g}Mbps")


@dataclass(frozen=True)
class EgressImbalance(MonitoringEvent):
    """One participant's ports carry visibly unequal traffic.

    ``imbalance`` is the max-to-mean ratio over the watched ports'
    smoothed rates (1.0 = perfectly balanced); ``port_rates`` the
    per-port rates the ratio was computed from. The reactive inbound
    balancer treats a raising edge as its trigger to re-split.
    """

    participant: str
    port_rates: Tuple[Tuple[int, float], ...]
    imbalance: float
    raised: bool

    def describe(self) -> str:
        edge = "raise" if self.raised else "clear"
        rates = " ".join(f"{port}:{rate:.1f}" for port, rate in self.port_rates)
        return (f"imbalance {edge} {self.participant} "
                f"ratio={self.imbalance:.2f} [{rates}]")
