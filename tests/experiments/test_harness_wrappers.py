"""Tests for the figure-series wrappers and composition reporting."""

from repro.experiments.harness import run_fig7, run_fig8

from tests.core.scenarios import figure1_controller


class TestSweepSeriesWrappers:
    def test_run_fig7_series_shape(self):
        series_list = run_fig7(participant_counts=(20,),
                               prefix_counts=(200, 600))
        assert len(series_list) == 1
        series = series_list[0]
        assert series.label == "20 participants"
        assert len(series.points) == 2
        # x = prefix groups sorted ascending, y = flow rules.
        assert series.xs() == sorted(series.xs())
        assert all(y > 0 for y in series.ys())

    def test_run_fig8_series_shape(self):
        series_list = run_fig8(participant_counts=(20,),
                               prefix_counts=(200, 600))
        assert all(y > 0 for y in series_list[0].ys())


class TestCompositionReport:
    def test_report_populated_by_compiler(self):
        sdx, *_ = figure1_controller()
        result = sdx.start()
        report = result.report
        assert report.stage1_rules > 0
        assert report.stage2_rules > 0
        assert report.final_rules > 0
        assert report.stats.sequential_ops > 0
        assert report.stats.rule_pairs_examined > 0

    def test_timings_sum_close_to_total(self):
        sdx, *_ = figure1_controller()
        result = sdx.start()
        partial = sum(seconds for stage, seconds in result.timings.items()
                      if stage != "total")
        assert partial <= result.timings["total"]
        assert result.timings["total"] < 5.0
